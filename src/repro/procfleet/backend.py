"""``table-shm``: the shared-memory process backend behind the one
:class:`~repro.exec.ExecutionBackend` protocol.

The parent side of the split brain.  A :class:`ShmTableBackend` compiles
the bound machine's tables (pure-Python kernel — the segment format is
kernel-agnostic), publishes them through its
:class:`~repro.procfleet.session.WorkerSession`, and serves
``run_batch`` by one synchronous pipe round-trip.  Everything the
in-process :class:`~repro.exec.TableBackend` promises holds here too:

* committed runs fast-forward the parent's canonical datapath through
  ``commit_engine_run`` — the worker never owns architectural state;
* a miss (unconfigured entry, epoch skew that a republish cannot cure,
  a crashed worker) raises :class:`~repro.exec.TableMiss` *before* the
  hardware is touched, so the caller replays cycle-accurately from the
  identical state;
* staleness is the same ``table_version`` contract — ``is_stale``
  answers from the compiled snapshot, and the dispatcher reacts by
  building a fresh backend, which here means *publish a new segment and
  bump the epoch*: the in-process invalidation generalised across the
  process boundary.

Epoch-skew self-healing: when several backends share one worker slot
(the registry's standalone session does), a serve may find the slot
epoch moved past the backend's publication.  The worker refuses to
serve the stale expectation (miss), and the backend republishes its own
tables once and retries — convergence toward the newest tables, never
silent service from old ones.

The module also owns the registry leg: :func:`shm_available` /
:func:`shm_unavailable_reason` (``REPRO_DISABLE_SHM`` mirrors the numpy
kill-switch) and :func:`standalone_backend`, the ``build`` hook that
lazily shares one single-worker session process-wide.
"""

from __future__ import annotations

import atexit
import threading
from typing import Optional, Sequence

from ..core.fsm import FSM, Input, Output, State
from ..engine.compiled import CompiledFSM, WordRun
from ..exec import killswitch as _killswitch
from ..exec.protocol import (
    Capabilities,
    ExecSnapshot,
    StaleSnapshot,
    TableMiss,
)
from ..hw.machine import HardwareFSM
from ..obs import context as _context
from ..obs import journal as _journal
from ..obs import tracing as _tracing
from ..obs.tracing import span as _span
from .segments import ControlBlock
from .session import WorkerSession

__all__ = [
    "ShmTableBackend",
    "shm_available",
    "shm_unavailable_reason",
    "standalone_backend",
]

#: Kill-switch mirroring ``REPRO_DISABLE_NUMPY``: forces the backend
#: unavailable (exit 2 on a forced pick) without uninstalling anything.
#: Registered in :mod:`repro.exec.killswitch`; kept as a module constant
#: because tests and docs name it here.
ENV_DISABLE = _killswitch.SHM.env


def shm_available() -> bool:
    """Whether the shared-memory process backend can run here."""
    if _killswitch.SHM.disabled():
        return False
    try:
        from multiprocessing import shared_memory  # noqa: F401
    except ImportError:  # pragma: no cover - platform without shm
        return False
    return True


def shm_unavailable_reason() -> Optional[str]:
    if shm_available():
        return None
    return _killswitch.SHM.reason() or (
        "multiprocessing.shared_memory is not available on this platform"
    )


class ShmTableBackend:
    """Dense tables in shared memory, served by a worker process."""

    name = "table-shm"
    capabilities = Capabilities(
        batchable=True,
        cycle_accurate=False,
        serves_mid_migration=False,
        needs_numpy=False,
        # Streams batch into one `serve_streams` pipe round-trip; the
        # worker itself serves them on the pure-Python kernel (the
        # segment format carries no packed stream plane), so there is
        # no dtype ceiling to report.
        batchable_streams=True,
    )

    def __init__(self, machine, session: WorkerSession):
        if isinstance(machine, HardwareFSM):
            self.hardware: Optional[HardwareFSM] = machine
            self.compiled = CompiledFSM.from_hardware(
                machine, backend="python"
            )
        elif isinstance(machine, FSM):
            self.hardware = None
            self.compiled = CompiledFSM.from_fsm(machine, backend="python")
        else:
            raise TypeError(
                f"ShmTableBackend expects an FSM or HardwareFSM, not "
                f"{type(machine).__name__}"
            )
        self.session = session
        session.start()
        self.epoch = session.publish(self.compiled)

    # -- protocol ------------------------------------------------------
    def step(self, symbol: Input) -> Optional[Output]:
        return self.run_batch([symbol]).outputs[0]

    def run_batch(
        self,
        symbols: Sequence[Input],
        start: Optional[State] = None,
        commit: bool = True,
    ) -> WordRun:
        hw = self.hardware
        if start is None:
            start = (
                hw.state if hw is not None else self.compiled.reset_state
            )
        carrier: Optional[dict] = _context.inject({}) or None
        want_journal = _journal.JOURNAL.enabled
        want_spans = _tracing.TRACER.enabled
        with _span(
            "engine.run_batch", backend=self.name, symbols=len(symbols)
        ):
            reply = None
            for attempt in (0, 1):
                reply = self.session.request((
                    "serve",
                    self.epoch,
                    start,
                    tuple(symbols),
                    carrier,
                    want_journal,
                    want_spans,
                ))
                if reply[0] != "miss":
                    break
                self._absorb(reply[2], reply[3])
                if attempt == 0 and "epoch" in reply[1]:
                    # Another backend moved the shared slot on: republish
                    # our tables past it and retry once.
                    self.epoch = self.session.publish(self.compiled)
                    continue
                raise TableMiss(f"shm worker miss: {reply[1]}")
            if reply[0] == "err":
                raise TableMiss(f"shm worker failed: {reply[1]}")
            _, outputs, final_state, visits, _epoch, events, spans, _pid = (
                reply
            )
            self._absorb(events, spans)
            run = WordRun(
                outputs=list(outputs),
                final_state=final_state,
                visits=dict(visits),
            )
            if commit and hw is not None:
                hw.commit_engine_run(run.final_state, len(run), run.visits)
            return run

    def run_streams(
        self,
        words: Sequence[Sequence[Input]],
        starts: Optional[Sequence[Optional[State]]] = None,
    ) -> Sequence[WordRun]:
        """Serve many independent streams in one pipe round-trip.

        The parent resolves ``None`` start entries to the compiled
        reset state before the frame crosses the boundary (the worker
        never guesses), then ships every ``(start, word)`` lane in a
        single ``serve_streams`` frame.  Same contract as the
        in-process backends: submission order, never commits, and any
        unserveable lane is a :class:`TableMiss` for the whole call —
        epoch skew gets the same one-republish retry as ``run_batch``.
        """
        reset = self.compiled.reset_state
        if starts is None:
            resolved: tuple = (reset,) * len(words)
        else:
            if len(starts) != len(words):
                raise ValueError(
                    f"{len(starts)} start states for {len(words)} streams"
                )
            resolved = tuple(
                reset if start is None else start for start in starts
            )
        carrier: Optional[dict] = _context.inject({}) or None
        want_journal = _journal.JOURNAL.enabled
        want_spans = _tracing.TRACER.enabled
        with _span(
            "engine.run_streams", backend=self.name, streams=len(words)
        ):
            reply = None
            for attempt in (0, 1):
                reply = self.session.request((
                    "serve_streams",
                    self.epoch,
                    resolved,
                    tuple(tuple(word) for word in words),
                    carrier,
                    want_journal,
                    want_spans,
                ))
                if reply[0] != "miss":
                    break
                self._absorb(reply[2], reply[3])
                if attempt == 0 and "epoch" in reply[1]:
                    self.epoch = self.session.publish(self.compiled)
                    continue
                raise TableMiss(f"shm worker miss: {reply[1]}")
            if reply[0] == "err":
                raise TableMiss(f"shm worker failed: {reply[1]}")
            _, results, _epoch, events, spans, _pid = reply
            self._absorb(events, spans)
            return [
                WordRun(
                    outputs=list(outputs),
                    final_state=final_state,
                    visits=dict(visits),
                )
                for outputs, final_state, visits in results
            ]

    def _absorb(self, events, spans) -> None:
        """Merge the worker-side observability records into the
        parent's recorders (worker spans re-root locally)."""
        if events:
            _journal.JOURNAL.absorb(events)
        if spans:
            _tracing.TRACER.absorb(spans)

    def snapshot(self) -> ExecSnapshot:
        hw = self.hardware
        return ExecSnapshot(
            state=hw.state if hw is not None else self.compiled.reset_state,
            table_version=(
                hw.table_version if hw is not None
                else self.compiled.source_version
            ),
        )

    def restore(self, snap: ExecSnapshot) -> None:
        hw = self.hardware
        if hw is None:
            return
        if (
            snap.table_version is not None
            and snap.table_version != hw.table_version
        ):
            _journal.JOURNAL.record(
                _journal.EXEC_STALE_SNAPSHOT,
                snapshot_version=snap.table_version,
                live_version=hw.table_version,
            )
            raise StaleSnapshot(
                f"snapshot of {hw.name} at table version "
                f"{snap.table_version} cannot be restored at version "
                f"{hw.table_version}: the tables changed underneath it"
            )
        hw.restore_state(snap.state)

    def invalidate(self, reason: str = "explicit") -> None:
        """Drop the compiled view; the published segment is retired so
        no late-attaching worker can serve the dead tables."""
        self.compiled.invalidate(reason=reason)
        if self.session.segment is not None:
            self.session.retire()

    def is_stale(self, hw: Optional[HardwareFSM] = None) -> bool:
        return self.compiled.is_stale(
            hw if hw is not None else self.hardware
        )

    def __repr__(self) -> str:
        return (
            f"ShmTableBackend(epoch={self.epoch}, "
            f"session={self.session!r})"
        )


# -- the registry's standalone session ---------------------------------
#: One lazily created single-worker session shared by every
#: registry-built ``table-shm`` backend in this process (the fleet
#: builds one session per shard instead; see ``procfleet.pool``).
_STANDALONE_LOCK = threading.Lock()
_STANDALONE: Optional[WorkerSession] = None
_STANDALONE_CTL: Optional[ControlBlock] = None


def standalone_session() -> WorkerSession:
    """The process-wide shared session (created on first use)."""
    global _STANDALONE, _STANDALONE_CTL
    with _STANDALONE_LOCK:
        if _STANDALONE is None:
            ctl = ControlBlock.create(1)
            session = WorkerSession(ctl, slot=0, label="shm")
            session.start()
            _STANDALONE_CTL = ctl
            _STANDALONE = session
            atexit.register(_close_standalone)
        return _STANDALONE


def _close_standalone() -> None:
    global _STANDALONE, _STANDALONE_CTL
    with _STANDALONE_LOCK:
        session, _STANDALONE = _STANDALONE, None
        ctl, _STANDALONE_CTL = _STANDALONE_CTL, None
    if session is not None:
        session.close()
    if ctl is not None:
        ctl.close()


def standalone_backend(machine) -> ShmTableBackend:
    """The registry ``build`` hook: bind ``machine`` to the shared
    single-worker session."""
    return ShmTableBackend(machine, standalone_session())
