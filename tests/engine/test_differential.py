"""Differential suite: the batch engine vs the cycle-accurate datapath.

Property-based evidence for the engine's core claim — `CompiledFSM`
is trace-equivalent to clocking the netlist symbol by symbol:

* chained engine runs (state carried across batches, committed back via
  ``commit_engine_run``) produce the same outputs, the same architectural
  state and the same probe counters as a per-cycle reference datapath;
* a mid-stream RAM mutation (a stored program replayed by the
  Reconfigurator, a fault injection) invalidates the compiled view, and
  the recompiled view is again trace-equivalent — the invalidate /
  recompile lifecycle never serves stale words;
* both backends, via the ``backend`` parametrization (the numpy leg
  skips when numpy is absent, e.g. under ``REPRO_DISABLE_NUMPY=1``).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.jsr import jsr_program
from repro.engine import CompiledFSM, numpy_available
from repro.hw.faults import erase_entry
from repro.hw.machine import HardwareFSM
from repro.hw.reconfigurator import Reconfigurator
from repro.workloads.library import fig6_m, fig6_m_prime
from repro.workloads.mutate import mutate_target
from repro.workloads.random_fsm import random_fsm
from repro.workloads.suite import traffic_words

BACKENDS_HERE = [
    b for b in ("python", "numpy") if b == "python" or numpy_available()
]


@st.composite
def machines(draw):
    return random_fsm(
        n_states=draw(st.integers(2, 6)),
        n_inputs=draw(st.integers(1, 3)),
        n_outputs=draw(st.integers(2, 3)),
        seed=draw(st.integers(0, 10_000)),
    )


@pytest.mark.parametrize("backend", BACKENDS_HERE)
class TestTraceEquivalence:
    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(machines(), st.integers(0, 10_000))
    def test_chained_engine_runs_match_per_cycle_serving(
        self, backend, fsm, traffic_seed
    ):
        ref = HardwareFSM(fsm)
        hw = HardwareFSM(fsm)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        for word in traffic_words(fsm, 6, 9, seed=traffic_seed):
            expect = ref.run(word)
            assert not compiled.is_stale(hw)
            run = compiled.run_word(word, start=hw.state)
            hw.commit_engine_run(run.final_state, len(word), run.visits)
            assert run.outputs == expect
            assert hw.state == ref.state
        assert hw.cycles == ref.cycles
        assert hw.state_visits == ref.state_visits

    @settings(max_examples=25, deadline=None, derandomize=True)
    @given(machines(), st.integers(0, 10_000), st.integers(1, 6))
    def test_run_words_matches_fsm_reference(
        self, backend, fsm, traffic_seed, n_deltas
    ):
        # compile the *migrated* hardware: synthesise, replay, snapshot
        capacity = len(fsm.inputs) * len(fsm.states)
        target = mutate_target(
            fsm, min(n_deltas, capacity), seed=traffic_seed
        )
        hw = HardwareFSM.for_migration(fsm, target)
        hw.run_program(jsr_program(fsm, target))
        assert hw.realises(target)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        words = traffic_words(target, 8, 7, seed=traffic_seed)
        runs = compiled.run_words(words, start=target.reset_state)
        for run, word in zip(runs, words):
            assert run.outputs == target.run(word)

    @settings(max_examples=20, deadline=None, derandomize=True)
    @given(machines(), st.integers(0, 10_000))
    def test_fault_invalidates_and_recompile_matches(
        self, backend, fsm, seed
    ):
        hw = HardwareFSM(fsm)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        assert not compiled.is_stale(hw)
        erase_entry(hw, seed=seed)
        assert compiled.is_stale(hw)
        # heal (re-download) and recompile: equivalence is restored
        hw2 = HardwareFSM(fsm)
        fresh = CompiledFSM.from_hardware(hw2, backend=backend)
        for word in traffic_words(fsm, 4, 6, seed=seed):
            assert fresh.run_word(word).outputs == fsm.run(word)


@pytest.mark.parametrize("backend", BACKENDS_HERE)
class TestInvalidationMidStream:
    def test_store_invalidates_and_recompiled_view_serves_target(
        self, backend
    ):
        source, target = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(source, target)
        recon = Reconfigurator()
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        compiled.watch(recon)

        # serve a stream of traffic through the compiled view ...
        for word in traffic_words(source, 3, 8, seed=6):
            run = compiled.run_word(word, start=hw.state)
            hw.commit_engine_run(run.final_state, len(word), run.visits)
        assert not compiled.is_stale(hw)

        # ... then a reconfiguration program lands in the sequence ROM:
        # the view dies immediately, before a single RAM word changes.
        program = jsr_program(source, target)
        recon.store("upgrade", program)
        assert compiled.is_stale()
        assert compiled.is_stale(hw)

        # replay the migration and recompile: the new view serves the
        # target, trace-equivalent to the migrated datapath.
        hw.run_program(program)
        fresh = CompiledFSM.from_hardware(hw, backend=backend)
        assert fresh.realises(target)
        ref = HardwareFSM.for_migration(source, target)
        ref.run_program(program)
        for word in traffic_words(target, 6, 9, seed=13):
            expect = ref.run(word)
            run = fresh.run_word(word, start=hw.state)
            hw.commit_engine_run(run.final_state, len(word), run.visits)
            assert run.outputs == expect
            assert hw.state == ref.state

    def test_mid_stream_version_bump_detected_between_batches(self, backend):
        fsm = fig6_m()
        hw = HardwareFSM(fsm)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        words = traffic_words(fsm, 4, 6, seed=3)
        run = compiled.run_word(words[0], start=hw.state)
        hw.commit_engine_run(run.final_state, len(words[0]), run.visits)
        assert not compiled.is_stale(hw)
        erase_entry(hw, seed=1)  # the mutation lands between batches
        assert compiled.is_stale(hw)
