"""Unit tests for repro.core.passes (optimization pass pipeline)."""

import pytest

from repro.core.incremental import chunks_to_program, incremental_chunks, is_blend
from repro.core.jsr import jsr_program
from repro.core.passes import (
    OPT_LEVELS,
    CoalesceRepairs,
    CollapseResets,
    EliminateDeadWrites,
    Pass,
    PassPipeline,
    ShortenTraverses,
    normalise_level,
    optimise_chunks,
    optimise_program,
    passes_for_level,
)
from repro.core.program import (
    Program,
    StepKind,
    reset_step,
    traverse_step,
    write_step,
)
from repro.fleet.plancache import order_chunks
from repro.workloads.library import fig6_m, fig6_m_prime, sequence_detector
from repro.workloads.suite import migration_suite

GROW = ("ctrl/pattern-grow", "paper/fig6", "paper/table1", "proto/policy-flip")


def _pair(name):
    return migration_suite()[name]()


class TestLevels:
    @pytest.mark.parametrize(
        "spelling,expected",
        [
            ("O2", "O2"), ("-O2", "O2"), ("o1", "O1"), (0, "O0"),
            ("2", "O2"), (None, "O0"), ("-o0", "O0"),
        ],
    )
    def test_normalise_spellings(self, spelling, expected):
        assert normalise_level(spelling) == expected

    @pytest.mark.parametrize("bad", ["O3", "fast", "", "-O9", 7])
    def test_bad_levels_raise(self, bad):
        with pytest.raises(ValueError):
            normalise_level(bad)

    def test_level_pass_sets(self):
        assert passes_for_level("O0") == []
        names1 = [p.name for p in passes_for_level("O1")]
        names2 = [p.name for p in passes_for_level("O2")]
        assert "dead-writes" in names1 and "collapse-resets" in names1
        assert set(names1) < set(names2)
        assert "coalesce-repairs" in names2 and "shorten-traverses" in names2

    def test_o0_is_identity(self):
        source, target = fig6_m(), fig6_m_prime()
        program = jsr_program(source, target)
        optimized, report = optimise_program(program, "O0")
        assert optimized is program
        assert report.steps_before == report.steps_after == len(program)


class TestPassesPreserveValidity:
    @pytest.mark.parametrize("workload", GROW)
    @pytest.mark.parametrize("level", OPT_LEVELS)
    def test_jsr_optimized_stays_valid(self, workload, level):
        source, target = _pair(workload)
        program = jsr_program(source, target)
        optimized, _report = optimise_program(program, level)
        assert optimized.is_valid()
        assert len(optimized) <= len(program)
        assert optimized.write_count <= program.write_count

    @pytest.mark.parametrize("workload", GROW)
    def test_incremental_monolith_shrinks(self, workload):
        source, target = _pair(workload)
        program = chunks_to_program(
            incremental_chunks(source, target), source, target
        )
        optimized, _report = optimise_program(program, "O2")
        assert optimized.is_valid()
        # the chunked form is deliberately redundant; -O2 must reclaim
        # a substantial share of it
        assert len(optimized) < len(program)

    def test_collapse_resets_drops_noop_reset(self):
        source, target = fig6_m(), fig6_m_prime()
        program = jsr_program(source, target)
        steps = list(program.steps)
        # a doubled reset is a guaranteed no-op
        steps.insert(1, reset_step())
        doubled = program.with_steps(steps)
        assert doubled.is_valid()
        collapsed = CollapseResets().run(doubled)
        assert len(collapsed) <= len(program)
        assert collapsed.is_valid()

    def test_leading_reset_is_never_dropped(self):
        source, target = fig6_m(), fig6_m_prime()
        program = jsr_program(source, target)
        assert program.steps[0].kind is StepKind.RESET
        optimized, _ = optimise_program(program, "O2")
        # position independence: a trigger can fire from any state, so
        # the program must keep stepping into the reset state first
        assert optimized.steps[0].kind is StepKind.RESET

    def test_opt_meta_annotation(self):
        source, target = fig6_m(), fig6_m_prime()
        optimized, report = optimise_program(
            jsr_program(source, target), "O2"
        )
        opt = optimized.meta["opt"]
        assert opt["level"] == "O2"
        assert opt["steps_after"] == len(optimized)
        assert opt["steps_before"] == report.steps_before
        assert all("name" in entry for entry in opt["passes"])

    def test_report_renders(self):
        source, target = fig6_m(), fig6_m_prime()
        _optimized, report = optimise_program(jsr_program(source, target), "O2")
        text = report.render()
        assert "-O2" in text and "|Z|" in text
        for result in report.results:
            assert result.name in text


class _LyingPass(Pass):
    """Deliberately broken: drops the final write, corrupting the table."""

    name = "lying"

    def run(self, program: Program) -> Program:
        steps = list(program.steps)
        for idx in range(len(steps) - 1, -1, -1):
            if steps[idx].kind.writes:
                del steps[idx]
                break
        return program.with_steps(steps)


class _CrashingPass(Pass):
    name = "crashing"

    def run(self, program: Program) -> Program:
        raise RuntimeError("optimizer bug")


class _PaddingPass(Pass):
    """Deliberately broken the other way: lengthens the program."""

    name = "padding"

    def run(self, program: Program) -> Program:
        return program.with_steps(list(program.steps) + [reset_step()])


class TestPipelineGate:
    """A buggy pass must degrade to a no-op, never ship a broken program."""

    def _program(self):
        source, target = fig6_m(), fig6_m_prime()
        return jsr_program(source, target)

    def test_invalid_output_is_rejected(self):
        program = self._program()
        pipeline = PassPipeline([_LyingPass()], level="test")
        optimized, report = pipeline.run(program)
        assert optimized == program
        assert optimized.is_valid()
        [result] = report.results
        assert not result.accepted
        assert "replay validation failed" in result.reason

    def test_raising_pass_is_contained(self):
        program = self._program()
        pipeline = PassPipeline([_CrashingPass()], level="test")
        optimized, report = pipeline.run(program)
        assert optimized == program
        [result] = report.results
        assert not result.accepted
        assert "optimizer bug" in result.reason

    def test_lengthening_pass_is_rejected(self):
        program = self._program()
        pipeline = PassPipeline([_PaddingPass()], level="test")
        optimized, report = pipeline.run(program)
        assert optimized == program
        [result] = report.results
        assert not result.accepted
        assert "lengthened" in result.reason

    def test_good_passes_still_run_after_a_bad_one(self):
        program = self._program()
        pipeline = PassPipeline(
            [_CrashingPass(), EliminateDeadWrites(), CollapseResets()],
            level="test",
        )
        optimized, report = pipeline.run(program)
        assert optimized.is_valid()
        assert len(optimized) <= len(program)
        assert report.rejected and report.rejected[0].name == "crashing"


class TestIndividualPasses:
    def test_dead_write_removed(self):
        source, target = fig6_m(), fig6_m_prime()
        program = jsr_program(source, target)
        # plant a dead self-loop write: it rewrites an entry that the
        # very next step overwrites, and it does not move the machine
        states = [step for step in program.steps]
        first_write = next(
            i for i, s in enumerate(states) if s.kind.writes
        )
        victim_entry = states[first_write].transition
        from repro.core.passes.base import pre_states

        pre = pre_states(program)[first_write]
        from repro.core.fsm import Transition

        planted = write_step(
            Transition(
                victim_entry.input, pre, pre, victim_entry.output
            ),
            StepKind.WRITE_TEMPORARY,
        )
        padded = program.with_steps(
            states[:first_write] + [planted] + states[first_write:]
        )
        assert padded.is_valid()
        cleaned = EliminateDeadWrites().run(padded)
        assert len(cleaned) == len(program)
        assert cleaned.is_valid()

    def test_coalesce_only_touches_repair_and_temporary(self):
        source, target = _pair("ctrl/pattern-grow")
        program = chunks_to_program(
            incremental_chunks(source, target), source, target
        )
        coalesced = CoalesceRepairs().run(program)
        assert coalesced.is_valid()
        deltas = [
            s.transition for s in program.steps
            if s.kind is StepKind.WRITE_DELTA
        ]
        kept = [
            s.transition for s in coalesced.steps
            if s.kind is StepKind.WRITE_DELTA
        ]
        assert deltas == kept  # delta writes are the migration: untouchable

    def test_shorten_traverses_never_lengthens(self):
        for name in GROW:
            source, target = _pair(name)
            program = jsr_program(source, target)
            shortened = ShortenTraverses().run(program)
            assert len(shortened) <= len(program)
            assert shortened.is_valid()


class TestChunkOptimiser:
    def _chunks(self, name="ctrl/pattern-grow"):
        source, target = _pair(name)
        ordered = order_chunks(
            incremental_chunks(source, target), source, target
        )
        return ordered, source, target

    def test_optimised_chunks_still_migrate(self):
        ordered, source, target = self._chunks()
        optimised = optimise_chunks(ordered, source, target)
        assert chunks_to_program(optimised, source, target).is_valid()

    def test_optimised_chunks_cost_less(self):
        ordered, source, target = self._chunks()
        optimised = optimise_chunks(ordered, source, target)
        writes = lambda cs: sum(  # noqa: E731
            1 for c in cs for s in c.steps if s.kind.writes
        )
        cycles = lambda cs: sum(len(c.steps) for c in cs)  # noqa: E731
        assert cycles(optimised) < cycles(ordered)
        assert writes(optimised) < writes(ordered)

    def test_every_prefix_is_a_blend(self):
        ordered, source, target = self._chunks()
        optimised = optimise_chunks(ordered, source, target)
        from repro.core.program import ReplayMachine

        machine = ReplayMachine.for_migration(source, target)
        for chunk in optimised:
            for step in chunk.steps:
                machine.apply(step)
            assert is_blend(machine.table, source, target)
            # parked at the target reset state between chunks, so live
            # traffic resumes from a well-defined place
            assert machine.state == target.reset_state

    def test_chunk_contract_leading_reset_kept(self):
        ordered, source, target = self._chunks()
        for chunk in optimise_chunks(ordered, source, target):
            assert chunk.steps[0].kind is StepKind.RESET

    def test_o0_returns_chunks_unchanged(self):
        ordered, source, target = self._chunks()
        assert optimise_chunks(ordered, source, target, level="O0") == ordered

    def test_gate_falls_back_on_unexpected_shapes(self):
        # chunks from a *different* pair must fail the gate, not crash
        ordered, source, target = self._chunks()
        other_s = sequence_detector("1011")
        other_t = sequence_detector("0110")
        result = optimise_chunks(ordered, other_s, other_t)
        assert result == list(ordered)
