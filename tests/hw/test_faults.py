"""Unit tests for SEU injection and reconfiguration-based scrubbing."""

import pytest

from repro.core.jsr import jsr_program
from repro.core.verify import verify_hardware
from repro.hw.faults import (
    Upset,
    corrupted_entries,
    inject_upset,
    scrub,
    scrub_program,
)
from repro.hw.machine import HardwareFSM
from repro.hw.memory import UninitialisedRead
from repro.workloads.library import fig6_m, fig6_m_prime, ones_detector
from repro.workloads.random_fsm import random_fsm


class TestInjectUpset:
    def test_flips_exactly_one_entry(self, detector):
        hw = HardwareFSM(detector)
        upset = inject_upset(hw, seed=1)
        wrong = corrupted_entries(hw, detector)
        assert len(wrong) == 1
        assert wrong[0].entry == upset.entry

    def test_deterministic_per_seed(self, detector):
        hw1, hw2 = HardwareFSM(detector), HardwareFSM(detector)
        assert inject_upset(hw1, seed=9) == inject_upset(hw2, seed=9)

    def test_directed_injection(self, detector):
        hw = HardwareFSM(detector)
        upset = inject_upset(hw, seed=0, ram="G", entry=("1", "S1"))
        assert upset.ram == "G"
        assert upset.entry == ("1", "S1")
        # a G-RAM flip corrupts only the output
        entry = hw.table_entry("1", "S1")
        assert entry[0] == "S1"  # next state intact
        assert entry[1] != "1"

    def test_f_ram_flip_corrupts_next_state(self, detector):
        hw = HardwareFSM(detector)
        inject_upset(hw, seed=0, ram="F", entry=("1", "S0"))
        entry = hw.table_entry("1", "S0")
        assert entry[0] != "S1"

    def test_no_matching_words_rejected(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        with pytest.raises(ValueError, match="no written RAM words"):
            inject_upset(hw, entry=("0", "S3"))  # unconfigured row

    def test_str(self, detector):
        hw = HardwareFSM(detector)
        text = str(inject_upset(hw, seed=2))
        assert "RAM[" in text and "bit" in text


class TestDetection:
    def test_conformance_testing_detects_upsets(self, detector):
        for seed in range(6):
            hw = HardwareFSM(detector)
            inject_upset(hw, seed=seed)
            try:
                detected = not verify_hardware(hw, detector).passed
            except (UninitialisedRead, ValueError):
                detected = True  # garbage code read — also a detection
            assert detected


class TestScrub:
    def test_repairs_single_upset(self, detector):
        hw = HardwareFSM(detector)
        inject_upset(hw, seed=3)
        program = scrub(hw, detector)
        assert hw.realises(detector)
        assert program.method == "scrub"
        assert len(program) >= 1

    def test_repairs_multiple_upsets(self, detector):
        hw = HardwareFSM(detector)
        for seed in range(3):
            inject_upset(hw, seed=seed)
        scrub(hw, detector)
        assert hw.realises(detector)
        assert verify_hardware(hw, detector).passed

    def test_scrub_on_migrated_machine(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        hw.run_program(jsr_program(m, mp))
        inject_upset(hw, seed=7)
        scrub(hw, mp)
        assert hw.realises(mp)

    def test_scrub_cost_scales_with_corruption(self):
        machine = random_fsm(n_states=8, seed=11)
        hw_one = HardwareFSM(machine)
        inject_upset(hw_one, seed=0)
        cost_one = len(scrub_program(hw_one, machine))

        hw_many = HardwareFSM(machine)
        seeds = 0
        while len(corrupted_entries(hw_many, machine)) < 5:
            inject_upset(hw_many, seed=seeds)
            seeds += 1
        cost_many = len(scrub_program(hw_many, machine))
        assert cost_many > cost_one

    def test_clean_machine_scrub_is_cheap(self, detector):
        hw = HardwareFSM(detector)
        program = scrub(hw, detector)
        assert hw.realises(detector)
        assert len(program) <= 1  # nothing to repair

    def test_scrub_never_stops_the_clock(self, detector):
        """Every scrub cycle is an ordinary datapath cycle."""
        hw = HardwareFSM(detector)
        inject_upset(hw, seed=4)
        before = hw.cycles
        program = scrub(hw, detector)
        assert hw.cycles == before + len(program)


class TestEraseEntry:
    def test_erased_entry_raises_on_traversal(self, detector):
        from repro.hw.faults import erase_entry

        machine = ones_detector()
        hw = HardwareFSM(machine)
        entry = (machine.inputs[0], machine.reset_state)
        upset = erase_entry(hw, entry=entry)
        assert upset.ram == "F"
        assert upset.bit == -1  # the whole word is gone
        assert upset.entry == entry
        with pytest.raises(UninitialisedRead):
            hw.step(machine.inputs[0])

    def test_seeded_erase_is_deterministic(self):
        machine = ones_detector()
        from repro.hw.faults import erase_entry

        first = erase_entry(HardwareFSM(machine), seed=3)
        second = erase_entry(HardwareFSM(machine), seed=3)
        assert first == second

    def test_unwritten_entry_rejected(self):
        from repro.hw.faults import erase_entry

        m, mp = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(m, mp)
        new_state = next(s for s in mp.states if s not in m.states)
        with pytest.raises(ValueError, match="not written"):
            erase_entry(hw, entry=(m.inputs[0], new_state))

    def test_reconfiguration_repairs_erasure(self):
        from repro.hw.faults import erase_entry

        machine = ones_detector()
        hw = HardwareFSM(machine)
        upset = erase_entry(hw, seed=1)
        program = scrub_program(hw, machine)
        hw.run_program(program)
        assert hw.realises(machine)
        assert hw.f_ram.peek(upset.address) is not None
