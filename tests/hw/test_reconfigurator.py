"""Unit tests for the Reconfigurator block and self-reconfigurable hardware."""

import pytest

from repro.core.ea import EAConfig, ea_program
from repro.core.jsr import jsr_program
from repro.hw.machine import HardwareFSM
from repro.hw.reconfigurator import (
    Microinstruction,
    Reconfigurator,
    SelfReconfigurableHardware,
)
from repro.workloads.library import (
    fig6_m,
    fig6_m_prime,
    ones_detector,
    table1_target,
    zeros_detector,
)


class TestReconfigurator:
    def test_store_and_rom_size(self, fig6_pair):
        m, mp = fig6_pair
        recon = Reconfigurator()
        program = jsr_program(m, mp)
        recon.store("migrate", program)
        assert recon.stored() == ["migrate"]
        assert recon.rom_size("migrate") == len(program)

    def test_start_returns_retarget(self, fig6_pair):
        m, mp = fig6_pair
        recon = Reconfigurator()
        recon.store("migrate", jsr_program(m, mp))
        assert recon.start("migrate") == mp.reset_state
        assert recon.busy

    def test_tick_drains_rom(self, fig6_pair):
        m, mp = fig6_pair
        recon = Reconfigurator()
        program = jsr_program(m, mp)
        recon.store("migrate", program)
        recon.start("migrate")
        ticks = 0
        while recon.busy:
            instr = recon.tick()
            assert isinstance(instr, Microinstruction)
            ticks += 1
        assert ticks == len(program)

    def test_tick_idle_raises(self):
        with pytest.raises(RuntimeError, match="idle"):
            Reconfigurator().tick()

    def test_start_while_busy_raises(self, fig6_pair):
        m, mp = fig6_pair
        recon = Reconfigurator()
        recon.store("a", jsr_program(m, mp))
        recon.store("b", jsr_program(m, mp))
        recon.start("a")
        with pytest.raises(RuntimeError, match="already"):
            recon.start("b")

    def test_microinstruction_from_reset_row(self, fig6_pair):
        m, mp = fig6_pair
        rows = jsr_program(m, mp).to_sequence()
        instr = Microinstruction.from_row(rows[0])
        assert instr.reset and instr.ir is None


class TestSelfReconfigurableHardware:
    def _hardware(self, fast_ea=None):
        source, target = ones_detector(), table1_target()
        config = fast_ea or EAConfig(population_size=16, generations=12, seed=0)
        program = ea_program(source, target, config=config)
        hardware = SelfReconfigurableHardware.build(
            source,
            {"upgrade": program},
            rules=[lambda state, i: "upgrade" if (state, i) == ("S1", "0") else None],
        )
        return hardware, program, target

    def test_external_request(self):
        hardware, program, target = self._hardware()
        hardware.request("upgrade")
        drained = 0
        while hardware.reconfiguring:
            hardware.clock("0")
            drained += 1
        assert drained == len(program)
        assert hardware.datapath.realises(target)

    def test_trigger_rule_fires(self):
        hardware, program, target = self._hardware()
        word = list("110") + ["0"] * len(program)
        flags = [flag for _out, flag in hardware.run(word)]
        assert any(flags)
        assert hardware.datapath.realises(target)
        assert hardware.reconfigurator.started == ["upgrade"]

    def test_behaviour_after_autonomous_upgrade(self):
        hardware, program, target = self._hardware()
        hardware.run(list("110") + ["0"] * len(program))
        word = list("0011")
        outs = [hardware.clock(i)[0] for i in word]
        assert outs == target.run(word)

    def test_build_sizes_for_all_targets(self, fig6_pair):
        m, mp = fig6_pair
        program = jsr_program(m, mp)
        hardware = SelfReconfigurableHardware.build(m, {"grow": program})
        assert "S3" in hardware.datapath.state_enc.alphabet

    def test_rules_checked_only_when_idle(self):
        hardware, program, target = self._hardware()
        hardware.request("upgrade")
        # While busy, the rule must not re-arm the reconfigurator.
        for _ in range(len(program)):
            hardware.clock("0")
        assert hardware.reconfigurator.started == ["upgrade"]

    def test_multiple_programs_stored(self):
        source = ones_detector()
        p1 = jsr_program(source, table1_target())
        p2 = jsr_program(source, zeros_detector())
        hardware = SelfReconfigurableHardware.build(
            source, {"t1": p1, "mirror": p2}
        )
        assert hardware.reconfigurator.stored() == ["mirror", "t1"]
        hardware.request("mirror")
        while hardware.reconfiguring:
            hardware.clock("0")
        assert hardware.datapath.realises(zeros_detector())


class TestOptimizedStore:
    """store(..., opt_level=...) shrinks the sequence ROM, not behaviour."""

    def test_optimized_rom_is_no_larger(self, fig6_pair):
        source, target = fig6_pair
        program = jsr_program(source, target)
        plain = Reconfigurator()
        plain.store("up", program)
        optimized = Reconfigurator()
        optimized.store("up", program, opt_level="O2")
        assert optimized.rom_size("up") <= plain.rom_size("up")
        assert optimized.opt_reports["up"].level == "O2"
        assert "up" not in plain.opt_reports

    def test_optimized_replay_still_realises_target(self, fig6_pair):
        source, target = fig6_pair
        program = jsr_program(source, target)
        hardware = SelfReconfigurableHardware.build(
            source, {"up": program}, opt_level="O2"
        )
        hardware.request("up")
        while hardware.reconfiguring:
            hardware.clock(source.inputs[0])
        assert hardware.datapath.realises(target)

    def test_optimized_trigger_fires_from_any_state(self, fig6_pair):
        # position independence: the optimized program must keep its
        # leading reset so a trigger can fire from any runtime state
        source, target = fig6_pair
        program = jsr_program(source, target)
        for start_word in ([], ["1"], ["1", "1"]):
            hardware = SelfReconfigurableHardware.build(
                source, {"up": program}, opt_level="O2"
            )
            for symbol in start_word:
                hardware.clock(symbol)
            hardware.request("up")
            while hardware.reconfiguring:
                hardware.clock(source.inputs[0])
            assert hardware.datapath.realises(target)
