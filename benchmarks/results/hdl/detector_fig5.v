module detect_1011_reconf (
  input  wire [0:0] din,
  input  wire clk,
  input  wire rst,
  input  wire mode,  // 0 = normal, 1 = reconfiguration
  input  wire [0:0] ir,
  input  wire [2:0] hf,
  input  wire [0:0] hg,
  input  wire we,
  output wire [0:0] dout
);

  reg [2:0] f_ram [0:15];
  reg [0:0] g_ram [0:15];
  reg [2:0] state;

  // IN-MUX: external input in normal mode, ir while reconfiguring
  wire [0:0] i_int = mode ? ir : din;
  wire [3:0] addr = {i_int, state};

  // write-first forwarding: the written transition is taken
  // in the same cycle it is written
  wire [2:0] f_out = (we && mode) ? hf : f_ram[addr];
  assign dout = (we && mode) ? hg : g_ram[addr];

  integer k;
  initial begin
    state = 3'd0;
    for (k = 0; k < 16; k = k + 1) begin
      f_ram[k] = 0;
      g_ram[k] = 0;
    end
    f_ram[0] = 3'd0; g_ram[0] = 1'd0;
    f_ram[1] = 3'd2; g_ram[1] = 1'd0;
    f_ram[2] = 3'd0; g_ram[2] = 1'd0;
    f_ram[3] = 3'd2; g_ram[3] = 1'd0;
    f_ram[8] = 3'd1; g_ram[8] = 1'd0;
    f_ram[9] = 3'd1; g_ram[9] = 1'd0;
    f_ram[10] = 3'd3; g_ram[10] = 1'd0;
    f_ram[11] = 3'd1; g_ram[11] = 1'd1;
  end

  always @(posedge clk) begin
    if (we && mode) begin
      f_ram[addr] <= hf;
      g_ram[addr] <= hg;
    end
    // RST-MUX: reset wins over the F-RAM next state
    state <= rst ? 3'd0 : f_out;
  end

endmodule
