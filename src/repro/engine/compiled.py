"""Dense-table batch execution of FSMs: the serving fast path.

The paper's Fig. 5 datapath is a table-lookup machine — the encoded
input concatenated with the encoded state addresses F-RAM and G-RAM.
That shape vectorizes: :class:`CompiledFSM` lowers an :class:`~repro.core.fsm.FSM`
(or a live :class:`~repro.hw.machine.HardwareFSM` RAM snapshot) into two
flat integer arrays indexed by ``input_code * n_states + state_code``
and steps whole symbol batches through them, instead of paying one
Python ``cycle()`` call — trace record, BitVector allocations, probe
bookkeeping — per symbol.

Two backends share the same tables:

* **python** — a tight pure-Python loop over plain lists; always
  available, already an order of magnitude faster than the cycle-accurate
  netlist for sequential streams;
* **numpy** — gathers across many independent lanes at once
  (:meth:`CompiledFSM.step_batch` / :meth:`CompiledFSM.run_words`);
  optional (``pip install repro[fast]``), auto-detected, never required.

Staleness is impossible by construction: a compiled view remembers the
``table_version`` of the hardware it was lowered from (bumped by every
committed RAM write, bulk download, fault injection and RST-MUX
retarget) and callers recompile on mismatch; :meth:`CompiledFSM.watch`
additionally hooks ``Reconfigurator.store`` so a view dies the moment a
new program lands in the sequence ROM.  Encodings mirror the datapath's
semantics exactly: an unconfigured F-RAM word raises
:class:`UnconfiguredEntry` (the engine analogue of
``UninitialisedRead``), an unconfigured G-RAM word yields ``None``
output, and a garbage code that the datapath would refuse to decode
raises as well — so a caller can always fall back to the cycle-accurate
netlist and reproduce the exact failure.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.alphabet import Alphabet
from ..core.fsm import FSM, Input, Output, State
from ..hw.signals import SymbolEncoder
from ..obs import instruments as _instruments

__all__ = [
    "BACKENDS",
    "CompiledFSM",
    "EngineError",
    "UnconfiguredEntry",
    "WordRun",
    "numpy_available",
    "resolve_backend",
]

#: Valid backend preferences (``"off"`` is a fleet/CLI mode, not a backend).
BACKENDS = ("auto", "numpy", "python")

#: Sentinel for "no configured word at this address" (F- and G-table).
_UNSET = -1
#: Sentinel for "a committed word holds a garbage code the datapath's
#: decoder would refuse" (G-table only; in the F-table garbage and unset
#: both raise on traversal, so they share ``_UNSET``).
_GARBAGE = -2


class EngineError(RuntimeError):
    """Base class for batch-engine errors."""


class UnconfiguredEntry(EngineError):
    """A traversal hit a table entry the compiled view cannot serve.

    Either the F-RAM word was never written (the datapath would raise
    :class:`~repro.hw.memory.UninitialisedRead`) or a committed word
    holds a code outside its alphabet (the datapath's decoder would
    raise ``ValueError``).  Callers replay the batch on the
    cycle-accurate netlist to reproduce the exact hardware failure.
    """


_numpy_module: Any = None  # cache: None = not probed, False = absent


def _numpy():
    """The numpy module, or ``None`` when absent or explicitly disabled.

    ``REPRO_DISABLE_NUMPY`` is honoured at every call (not just import
    time) so tests and the CI "without numpy" leg can exercise the
    pure-Python path inside a process that has numpy installed.
    """
    if os.environ.get("REPRO_DISABLE_NUMPY"):
        return None
    global _numpy_module
    if _numpy_module is None:
        try:
            import numpy  # noqa: PLC0415 - optional fast path

            _numpy_module = numpy
        except ImportError:  # pragma: no cover - numpy present in CI dev env
            _numpy_module = False
    return _numpy_module or None


def numpy_available() -> bool:
    """True when the numpy fast path can be used right now."""
    return _numpy() is not None


def resolve_backend(preference: str = "auto") -> str:
    """Map a backend preference to the concrete kernel to use.

    Delegates to the shared resolver in :mod:`repro.exec.registry`
    (one resolution policy for compile time and dispatch time):
    ``"auto"`` honours ``REPRO_BACKEND`` (table spellings only — a
    forced ``cycle`` selects a serving substrate and cannot steer a
    table compilation) and then picks numpy when importable and not
    disabled via ``REPRO_DISABLE_NUMPY``, else pure Python.  Asking for
    ``"numpy"`` explicitly when it is unavailable raises
    :class:`EngineError` rather than silently degrading.
    """
    from ..exec.registry import resolve_tables  # deferred: import cycle

    return resolve_tables(preference)


@dataclass
class WordRun:
    """Result of one sequential engine run over an input word."""

    outputs: List[Optional[Output]]
    final_state: State
    #: Post-transition state occupancy, same semantics as the datapath's
    #: ``state_visits`` probe counter (one count per cycle, keyed by the
    #: state ST-REG latches).
    visits: Dict[State, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.outputs)


class CompiledFSM:
    """An FSM lowered to dense next-state/output tables.

    Flat layout, one integer per entry: address
    ``input_code * n_states + state_code`` — exactly the Fig. 5 RAM
    address split into its two fields.  Codes are the
    :class:`~repro.hw.signals.SymbolEncoder` codes (= alphabet indices),
    so a table compiled from live RAM words needs no per-entry decode.

    Build with :meth:`from_fsm` or :meth:`from_hardware`; execute with
    :meth:`step_batch` (one step across many lanes), :meth:`run_word`
    (one sequential stream) or :meth:`run_words` (many streams).
    """

    def __init__(
        self,
        inputs: Sequence[Input],
        states: Sequence[State],
        outputs: Sequence[Output],
        next_table: List[int],
        out_table: List[int],
        reset_state: State,
        backend: str = "auto",
        source: object = None,
        source_version: Optional[int] = None,
    ):
        self.inputs = tuple(inputs)
        self.states = tuple(states)
        self.outputs = tuple(outputs)
        self.n_inputs = len(self.inputs)
        self.n_states = len(self.states)
        if len(next_table) != self.n_inputs * self.n_states:
            raise ValueError("next_table size mismatch")
        if len(out_table) != self.n_inputs * self.n_states:
            raise ValueError("out_table size mismatch")
        self.next_table = next_table
        self.out_table = out_table
        self.reset_state = reset_state
        self.backend = resolve_backend(backend)
        self.source = source
        self.source_version = source_version
        self._invalidated = False
        self._input_code = {sym: i for i, sym in enumerate(self.inputs)}
        self._state_code = {sym: i for i, sym in enumerate(self.states)}
        self._np_next = None
        self._np_out = None
        self._stream_tables = None
        if self.backend == "numpy":
            np = _numpy()
            self._np_next = np.asarray(next_table, dtype=np.int64)
            self._np_out = np.asarray(out_table, dtype=np.int64)
        _instruments.ENGINE_COMPILES.inc(
            backend=self.backend,
            origin="hardware" if source_version is not None else "fsm",
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_fsm(cls, fsm: FSM, backend: str = "auto") -> "CompiledFSM":
        """Lower a behavioural machine's transition table directly."""
        input_enc = SymbolEncoder(Alphabet(fsm.inputs))
        state_enc = SymbolEncoder(Alphabet(fsm.states))
        output_enc = SymbolEncoder(Alphabet(fsm.outputs))
        n_states = len(fsm.states)
        size = len(fsm.inputs) * n_states
        next_table = [_UNSET] * size
        out_table = [_UNSET] * size
        for trans in fsm.transitions():
            addr = (
                input_enc.encode(trans.input).value * n_states
                + state_enc.encode(trans.source).value
            )
            next_table[addr] = state_enc.encode(trans.target).value
            out_table[addr] = output_enc.encode(trans.output).value
        return cls(
            fsm.inputs,
            fsm.states,
            fsm.outputs,
            next_table,
            out_table,
            fsm.reset_state,
            backend=backend,
            source=fsm,
        )

    @classmethod
    def from_hardware(cls, hw, backend: str = "auto") -> "CompiledFSM":
        """Snapshot a live datapath's committed RAM words into tables.

        The RAM word values *are* the superset-alphabet indices (the
        :class:`~repro.hw.signals.SymbolEncoder` encoding), so the
        snapshot is a straight copy plus range checks.  Remembers
        ``hw.table_version`` so :meth:`is_stale` detects any later RAM
        mutation — reconfiguration writes, fault injection, erasure —
        as well as RST-MUX retargets.
        """
        inputs = hw.input_enc.alphabet.symbols
        states = hw.state_enc.alphabet.symbols
        outputs = hw.output_enc.alphabet.symbols
        n_states = len(states)
        n_outputs = len(outputs)
        size = len(inputs) * n_states
        next_table = [_UNSET] * size
        out_table = [_UNSET] * size
        version = hw.table_version
        for i_code, i_sym in enumerate(inputs):
            for s_code in range(n_states):
                ram_addr = hw._address(i_sym, states[s_code]).value
                f_word = hw.f_ram.peek(ram_addr)
                g_word = hw.g_ram.peek(ram_addr)
                addr = i_code * n_states + s_code
                if f_word is not None and f_word < n_states:
                    next_table[addr] = f_word
                # f garbage (>= n_states) stays _UNSET: both unwritten and
                # undecodable words make the datapath raise on traversal.
                if g_word is not None:
                    out_table[addr] = g_word if g_word < n_outputs else _GARBAGE
        return cls(
            inputs,
            states,
            outputs,
            next_table,
            out_table,
            hw.reset_state,
            backend=backend,
            source=hw,
            source_version=version,
        )

    # ------------------------------------------------------------------
    # Invalidation lifecycle
    # ------------------------------------------------------------------
    def invalidate(self, reason: str = "explicit") -> None:
        """Mark the view stale; the next :meth:`is_stale` returns True."""
        if not self._invalidated:
            self._invalidated = True
            _instruments.ENGINE_INVALIDATIONS.inc(reason=reason)

    def is_stale(self, hw=None) -> bool:
        """Whether this view may no longer reflect its source.

        With ``hw`` given, also checks object identity (a quarantined
        fleet shard rebuilds its datapath wholesale) and the live
        ``table_version`` against the compile-time snapshot.
        """
        if self._invalidated:
            return True
        if hw is not None:
            if hw is not self.source:
                return True
            if self.source_version is not None:
                return hw.table_version != self.source_version
        return False

    def watch(self, reconfigurator) -> "CompiledFSM":
        """Self-invalidate when a program is stored in the sequence ROM."""
        reconfigurator.add_store_hook(
            lambda _name, _program: self.invalidate(reason="store")
        )
        return self

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _in_code(self, symbol: Input) -> int:
        try:
            return self._input_code[symbol]
        except KeyError:
            raise EngineError(
                f"input symbol {symbol!r} not in the compiled alphabet"
            ) from None

    def _st_code(self, state: State) -> int:
        try:
            return self._state_code[state]
        except KeyError:
            raise EngineError(
                f"state {state!r} not in the compiled state set"
            ) from None

    def step_batch(
        self,
        states: Sequence[State],
        symbols: Sequence[Input],
    ) -> Tuple[List[State], List[Optional[Output]]]:
        """One synchronous step across ``len(states)`` independent lanes.

        Lane ``j`` steps machine-in-state ``states[j]`` under input
        ``symbols[j]``; returns the per-lane next states and outputs.
        This is the population-evaluation kernel: every lane is one
        replica / candidate, and on the numpy backend the whole batch is
        two array gathers.
        """
        if len(states) != len(symbols):
            raise ValueError("states and symbols must have equal length")
        state_codes = [self._st_code(s) for s in states]
        sym_codes = [self._in_code(i) for i in symbols]
        next_codes, out_codes = self.step_batch_codes(sym_codes, state_codes)
        state_syms = self.states
        out_syms = self.outputs
        next_states = [state_syms[code] for code in next_codes]
        outputs: List[Optional[Output]] = [
            out_syms[code] if code >= 0 else None for code in out_codes
        ]
        return next_states, outputs

    def step_batch_codes(
        self,
        sym_codes: Sequence[int],
        state_codes: Sequence[int],
    ) -> Tuple[Sequence[int], Sequence[int]]:
        """Code-level :meth:`step_batch` (no symbol decode/encode)."""
        n_states = self.n_states
        if self.backend == "numpy":
            np = _numpy()
            if np is not None:
                syms = np.asarray(sym_codes, dtype=np.int64)
                states = np.asarray(state_codes, dtype=np.int64)
                addr = syms * n_states + states
                next_codes = self._np_next[addr]
                out_codes = self._np_out[addr]
                if (next_codes < 0).any() or (out_codes < _UNSET).any():
                    bad = int(np.argmax((next_codes < 0) | (out_codes < _UNSET)))
                    raise UnconfiguredEntry(
                        f"lane {bad}: entry ({self.inputs[sym_codes[bad]]!r}, "
                        f"{self.states[state_codes[bad]]!r}) is not "
                        "serveable by the compiled view"
                    )
                return next_codes.tolist(), out_codes.tolist()
        nxt = self.next_table
        out = self.out_table
        next_codes_l: List[int] = []
        out_codes_l: List[int] = []
        for lane, (i_code, s_code) in enumerate(zip(sym_codes, state_codes)):
            addr = i_code * n_states + s_code
            ns = nxt[addr]
            oc = out[addr]
            if ns < 0 or oc < _UNSET:
                raise UnconfiguredEntry(
                    f"lane {lane}: entry ({self.inputs[i_code]!r}, "
                    f"{self.states[s_code]!r}) is not serveable by the "
                    "compiled view"
                )
            next_codes_l.append(ns)
            out_codes_l.append(oc)
        return next_codes_l, out_codes_l

    def run_word(
        self, symbols: Sequence[Input], start: Optional[State] = None
    ) -> "WordRun":
        """Sequential run of one stream; the fleet serving hot loop.

        A single stateful stream cannot be lane-parallelised (each step
        needs the previous step's state), so both backends use the same
        tight Python loop here — already ~an order of magnitude faster
        than clocking the netlist symbol by symbol.
        """
        state_code = self._st_code(
            self.reset_state if start is None else start
        )
        nxt = self.next_table
        out = self.out_table
        n_states = self.n_states
        in_code = self._input_code
        out_syms = self.outputs
        outputs: List[Optional[Output]] = []
        append = outputs.append
        visit_counts = [0] * n_states
        for symbol in symbols:
            try:
                addr = in_code[symbol] * n_states + state_code
            except KeyError:
                raise EngineError(
                    f"input symbol {symbol!r} not in the compiled alphabet"
                ) from None
            ns = nxt[addr]
            oc = out[addr]
            if ns < 0 or oc < _UNSET:
                raise UnconfiguredEntry(
                    f"entry ({symbol!r}, {self.states[state_code]!r}) is "
                    "not serveable by the compiled view"
                )
            append(out_syms[oc] if oc >= 0 else None)
            state_code = ns
            visit_counts[ns] += 1
        visits = {
            self.states[code]: count
            for code, count in enumerate(visit_counts)
            if count
        }
        return WordRun(
            outputs=outputs,
            final_state=self.states[state_code],
            visits=visits,
        )

    def run_words(
        self,
        words: Sequence[Sequence[Input]],
        start: Optional[State] = None,
    ) -> List["WordRun"]:
        """Run many independent words, each from ``start`` (or reset).

        On the numpy backend the words become lanes of a time-major
        batch: one masked table gather per time step serves every word
        at once.  On the python backend this is a loop of
        :meth:`run_word` (same results, same errors).
        """
        if self.backend == "numpy":
            np = _numpy()
            if np is not None:
                return self._run_words_numpy(np, words, start)
        return [self.run_word(word, start=start) for word in words]

    def _run_words_numpy(self, np, words, start):
        n_words = len(words)
        if n_words == 0:
            return []
        lengths = [len(w) for w in words]
        horizon = max(lengths)
        in_code = self._input_code
        sym = np.zeros((horizon, n_words), dtype=np.int64)
        mask = np.zeros((horizon, n_words), dtype=bool)
        for lane, word in enumerate(words):
            for t, symbol in enumerate(word):
                try:
                    sym[t, lane] = in_code[symbol]
                except KeyError:
                    raise EngineError(
                        f"input symbol {symbol!r} not in the compiled "
                        "alphabet"
                    ) from None
                mask[t, lane] = True
        start_code = self._st_code(self.reset_state if start is None else start)
        states = np.full(n_words, start_code, dtype=np.int64)
        state_seq = np.full((horizon, n_words), -1, dtype=np.int64)
        out_seq = np.full((horizon, n_words), _UNSET, dtype=np.int64)
        nxt = self._np_next
        out = self._np_out
        n_states = self.n_states
        for t in range(horizon):
            live = mask[t]
            if not live.any():
                break
            addr = sym[t, live] * n_states + states[live]
            ns = nxt[addr]
            oc = out[addr]
            if (ns < 0).any() or (oc < _UNSET).any():
                raise UnconfiguredEntry(
                    f"step {t}: an entry is not serveable by the "
                    "compiled view"
                )
            states[live] = ns
            state_seq[t, live] = ns
            out_seq[t, live] = oc
        out_syms = self.outputs
        state_syms = self.states
        runs: List[WordRun] = []
        for lane, length in enumerate(lengths):
            codes = out_seq[:length, lane].tolist()
            outputs = [
                out_syms[code] if code >= 0 else None for code in codes
            ]
            lane_states = state_seq[:length, lane]
            uniq, counts = np.unique(lane_states, return_counts=True)
            visits = {
                state_syms[int(code)]: int(count)
                for code, count in zip(uniq, counts)
            }
            final = (
                state_syms[int(lane_states[length - 1])]
                if length
                else (self.reset_state if start is None else start)
            )
            runs.append(
                WordRun(outputs=outputs, final_state=final, visits=visits)
            )
        return runs

    # ------------------------------------------------------------------
    # Stream plane (see repro.engine.streams)
    # ------------------------------------------------------------------
    def stream_tables(self):
        """The packed stream-plane tables for this view (built lazily,
        cached — the pack cost is one Python sweep of the table)."""
        if self._stream_tables is None:
            from .streams import StreamTables  # deferred: import cycle

            self._stream_tables = StreamTables(self)
        return self._stream_tables

    def encode_streams(self, words: Sequence[Sequence[Input]]):
        """Encode many input words into a reusable :class:`StreamBatch`.

        Encoding is the per-symbol Python cost of the stream plane; a
        batch encodes once and replays against any compiled view that
        shares this view's input alphabet (EA candidates, new table
        epochs after migration).
        """
        from .streams import StreamBatch  # deferred: import cycle

        return StreamBatch.encode(self.inputs, words)

    def run_stream_batch(self, batch, starts=None):
        """Run a pre-encoded :class:`StreamBatch`; the multi-stream
        fast path.

        ``starts`` is ``None`` (every stream from reset), one state
        (every stream from it), or a per-stream sequence where ``None``
        entries mean reset.  Returns a lazy :class:`StreamRun`;
        per-stream results are bit-identical to :meth:`run_word`, and
        any stream that would make :meth:`run_word` raise makes this
        raise (replay per-stream to find which).
        """
        from .streams import run_stream_batch  # deferred: import cycle

        return run_stream_batch(self, batch, starts)

    def run_streams(self, words: Sequence[Sequence[Input]], starts=None):
        """Encode + run in one call (see :meth:`run_stream_batch`)."""
        return self.run_stream_batch(self.encode_streams(words), starts)

    # ------------------------------------------------------------------
    def realises(self, fsm: FSM) -> bool:
        """True when the tables hold ``fsm``'s behaviour on its domain."""
        for trans in fsm.transitions():
            if trans.input not in self._input_code:
                return False
            if trans.source not in self._state_code:
                return False
            addr = (
                self._input_code[trans.input] * self.n_states
                + self._state_code[trans.source]
            )
            ns = self.next_table[addr]
            oc = self.out_table[addr]
            if ns < 0 or oc < 0:
                return False
            if self.states[ns] != trans.target:
                return False
            if self.outputs[oc] != trans.output:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"CompiledFSM({self.n_inputs} inputs x {self.n_states} states, "
            f"backend={self.backend!r})"
        )
