"""Unit tests for the fleet pool: serving, ordering, backpressure, faults."""

import threading
import time

import pytest

from repro.fleet import (
    FleetClosed,
    FleetOverloaded,
    FSMFleet,
)
from repro.workloads.library import ones_detector, sequence_detector
from repro.workloads.suite import traffic_words


@pytest.fixture
def detector_fleet():
    fleet = FSMFleet(ones_detector(), n_workers=2, queue_depth=8)
    yield fleet
    fleet.close()


class TestServing:
    def test_outputs_match_reference_run(self, detector_fleet):
        # A shard is a long-lived machine: state carries across batches,
        # so the reference for each batch is the run over everything the
        # shard has served so far.
        machine = ones_detector()
        served = {index: [] for index in range(detector_fleet.n_workers)}
        for key, word in enumerate(traffic_words(machine, 12, 10, seed=3)):
            shard = detector_fleet.shard_for(key)
            got = detector_fleet.submit(key, word).result(timeout=10)
            served[shard].extend(word)
            assert got == machine.run(served[shard])[-len(word):]

    def test_per_key_fifo_ordering(self):
        # All batches with one key land on one shard in submission order:
        # the concatenated outputs equal one long reference run.
        machine = ones_detector()
        words = traffic_words(machine, 20, 5, seed=4)
        with FSMFleet(machine, n_workers=2, queue_depth=64) as fleet:
            futures = [fleet.submit("conn-1", w) for w in words]
            outputs = []
            for future in futures:
                outputs.extend(future.result(timeout=10))
        flat = [symbol for word in words for symbol in word]
        assert outputs == machine.run(flat)

    def test_same_key_same_shard(self, detector_fleet):
        assert detector_fleet.shard_for("k") == detector_fleet.shard_for("k")

    def test_keys_spread_over_shards(self):
        fleet = FSMFleet(ones_detector(), n_workers=4)
        try:
            shards = {fleet.shard_for(k) for k in range(64)}
            assert len(shards) == 4
        finally:
            fleet.close()

    def test_rejects_unknown_symbol(self, detector_fleet):
        with pytest.raises(ValueError, match="not serveable"):
            detector_fleet.submit("k", ["bogus"])

    def test_rejects_empty_batch(self, detector_fleet):
        with pytest.raises(ValueError, match="empty"):
            detector_fleet.submit("k", [])

    def test_totals_aggregate(self, detector_fleet):
        for key in range(6):
            detector_fleet.submit(key, ["1", "0"]).result(timeout=10)
        totals = detector_fleet.totals()
        assert totals.batches_ok == 6
        assert totals.symbols_served == 12


class TestBackpressure:
    def test_full_queue_rejects_immediately(self):
        fleet = FSMFleet(ones_detector(), n_workers=1, queue_depth=2)
        try:
            # Stall the single worker with a fault item that blocks, then
            # fill the bounded queue behind it.
            gate = threading.Event()
            entered = threading.Event()

            def blocker(_hw):
                entered.set()
                gate.wait(timeout=30)
                return None

            from repro.fleet.worker import _Fault
            from concurrent.futures import Future

            fleet.shards[0].queue.put(_Fault(inject=blocker, future=Future()))
            assert entered.wait(timeout=10)  # worker is now stalled
            accepted = 0
            with pytest.raises(FleetOverloaded) as excinfo:
                for _ in range(10):
                    fleet.submit("k", ["1"])
                    accepted += 1
            assert accepted == 2  # exactly the queue bound
            assert excinfo.value.shard == 0
            assert fleet.shards[0].stats.rejected >= 1
            gate.set()
        finally:
            fleet.close()

    def test_closed_fleet_rejects(self):
        fleet = FSMFleet(ones_detector(), n_workers=1)
        fleet.close()
        with pytest.raises(FleetClosed):
            fleet.submit("k", ["1"])


class TestFaultHandling:
    def test_erase_fault_quarantines_and_reseeds(self):
        fleet = FSMFleet(sequence_detector("1011"), n_workers=1,
                         queue_depth=64)
        try:
            assert fleet.submit("k", list("1011")).result(timeout=10)
            upset = fleet.inject_fault(0, kind="erase", seed=1).result(10)
            assert upset.ram == "F"
            # Drive traffic until the erased entry is hit; the failing
            # batch gets the exception, later batches are served by the
            # re-seeded shard.
            failed = 0
            for key in range(80):
                word = traffic_words(
                    fleet.machine, 1, 8, seed=100 + key
                )[0]
                try:
                    fleet.submit(key, word).result(timeout=10)
                except Exception:
                    failed += 1
            assert failed >= 1
            assert fleet.totals().incidents == failed
            assert fleet.shards[0].stats.last_error is not None
            # shard serves again after quarantine + re-seed
            assert fleet.submit("post", list("1011")).result(timeout=10)
            assert fleet.shards[0].is_alive()
        finally:
            fleet.close()

    def test_unaffected_shards_keep_serving(self):
        fleet = FSMFleet(sequence_detector("1011"), n_workers=2,
                         queue_depth=64)
        try:
            victim = 0
            other = next(
                key for key in range(100)
                if fleet.shard_for(key) != victim
            )
            fleet.inject_fault(victim, kind="erase", seed=1).result(10)
            outputs = fleet.submit(other, list("1011")).result(timeout=10)
            assert len(outputs) == 4
        finally:
            fleet.close()

    def test_unknown_fault_kind(self, detector_fleet):
        with pytest.raises(ValueError, match="unknown fault kind"):
            detector_fleet.inject_fault(0, kind="gamma-ray")


class TestLifecycle:
    def test_close_drains_queued_work(self):
        fleet = FSMFleet(ones_detector(), n_workers=2, queue_depth=64)
        futures = [
            fleet.submit(key, ["1", "1", "0"]) for key in range(20)
        ]
        fleet.close()  # graceful: everything queued is still served
        assert all(f.result(timeout=10) is not None for f in futures)

    def test_close_idempotent(self):
        fleet = FSMFleet(ones_detector(), n_workers=1)
        fleet.close()
        fleet.close()

    def test_context_manager(self):
        with FSMFleet(ones_detector(), n_workers=1) as fleet:
            fleet.submit("k", ["1"]).result(timeout=10)

    def test_validates_config(self):
        with pytest.raises(ValueError):
            FSMFleet(ones_detector(), n_workers=0)
        with pytest.raises(ValueError):
            FSMFleet(ones_detector(), n_workers=1, queue_depth=0)

    def test_link_latency_is_modelled(self):
        fleet = FSMFleet(ones_detector(), n_workers=1,
                         link_latency_s=0.02)
        try:
            started = time.perf_counter()
            fleet.submit("k", ["1"]).result(timeout=10)
            assert time.perf_counter() - started >= 0.02
        finally:
            fleet.close()
