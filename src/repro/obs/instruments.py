"""Domain metric handles shared by the instrumented layers.

One module owns the metric *names* so synthesisers, the datapath, the
verifier and the CLI all publish into the same families (the catalogue
is documented in ``docs/observability.md``).  Creation is idempotent and
all recording helpers are no-op cheap when the default registry is
disabled, so hot paths call them unconditionally.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

from .metrics import REGISTRY, SECONDS_BUCKETS

# -- synthesis ---------------------------------------------------------
SYNTH_PROGRAMS = REGISTRY.counter(
    "repro_synthesis_programs_total",
    "Reconfiguration programs synthesised, by method.",
)
SYNTH_SECONDS = REGISTRY.histogram(
    "repro_synthesis_seconds",
    "Wall time of one synthesiser call, by method.",
    buckets=SECONDS_BUCKETS,
)
SYNTH_LENGTH = REGISTRY.histogram(
    "repro_synthesis_program_length",
    "Program length |Z| of synthesised programs, by method.",
)
SYNTH_WRITES = REGISTRY.counter(
    "repro_synthesis_program_writes_total",
    "Table-write cycles across synthesised programs, by method.",
)

# -- evolutionary algorithm -------------------------------------------
EA_GENERATIONS = REGISTRY.counter(
    "repro_ea_generations_total",
    "EA generations executed.",
)
EA_EVALUATIONS = REGISTRY.counter(
    "repro_ea_evaluations_total",
    "Distinct fitness evaluations (decoder runs) across EA calls.",
)
EA_BEST_LENGTH = REGISTRY.gauge(
    "repro_ea_best_length",
    "Best program length of the most recent EA generation.",
)

# -- optimization passes ----------------------------------------------
PASS_RUNS = REGISTRY.counter(
    "repro_pass_runs_total",
    "Optimization pass executions, by pass and outcome "
    "(accepted / noop / rejected).",
)
PASS_STEPS_ELIMINATED = REGISTRY.counter(
    "repro_pass_steps_eliminated_total",
    "Program steps removed by accepted optimization passes, by pass.",
)
PASS_SECONDS = REGISTRY.histogram(
    "repro_pass_seconds",
    "Wall time of one optimization pass run (including the replay gate), "
    "by pass.",
    buckets=SECONDS_BUCKETS,
)
PIPELINE_PROGRAMS = REGISTRY.counter(
    "repro_pipeline_programs_total",
    "Programs run through the pass pipeline, by opt level.",
)

# -- exact search ------------------------------------------------------
OPTIMAL_EXPANSIONS = REGISTRY.counter(
    "repro_optimal_expansions_total",
    "A* node expansions across optimal_program calls.",
)

# -- conformance testing ----------------------------------------------
VERIFY_WORDS = REGISTRY.counter(
    "repro_verify_words_total",
    "Conformance-suite words executed against a device under test.",
)
VERIFY_SYMBOLS = REGISTRY.counter(
    "repro_verify_symbols_total",
    "Input symbols driven during conformance testing.",
)
VERIFY_FAILURES = REGISTRY.counter(
    "repro_verify_failures_total",
    "Conformance-suite words whose outputs mismatched the reference.",
)

# -- hardware datapath -------------------------------------------------
HW_CYCLES = REGISTRY.counter(
    "repro_hw_cycles_total",
    "Datapath clock cycles, by mode (normal / reconf / reset).",
)
HW_RAM_WRITES = REGISTRY.counter(
    "repro_hw_ram_writes_total",
    "Committed RAM writes, by memory (F-RAM / G-RAM).",
)
HW_UNINITIALISED_READS = REGISTRY.counter(
    "repro_hw_uninitialised_reads_total",
    "F-RAM reads of never-written words (simulation errors).",
)
HW_TRACE_DROPPED = REGISTRY.counter(
    "repro_hw_trace_dropped_total",
    "Trace entries evicted by bounded (ring-buffer) recorders.",
)

# -- fleet serving engine ---------------------------------------------
FLEET_BATCHES = REGISTRY.counter(
    "repro_fleet_batches_total",
    "Batches served by fleet shard workers, by outcome (ok / error).",
)
FLEET_SYMBOLS = REGISTRY.counter(
    "repro_fleet_symbols_total",
    "Input symbols stepped by fleet shard workers.",
)
FLEET_REJECTED = REGISTRY.counter(
    "repro_fleet_rejected_total",
    "Batch submissions rejected by backpressure (full shard queue).",
)
FLEET_INCIDENTS = REGISTRY.counter(
    "repro_fleet_incidents_total",
    "Shard faults that triggered quarantine and re-seed, by error type.",
)
FLEET_SHARD_MIGRATIONS = REGISTRY.counter(
    "repro_fleet_shard_migrations_total",
    "Per-shard gradual migrations completed, by hardware verification.",
)
FLEET_MIGRATION_CYCLES = REGISTRY.counter(
    "repro_fleet_migration_cycles_total",
    "Reconfiguration cycles spent inside rolling fleet migrations.",
)
FLEET_SERVICE_DOWNTIME = REGISTRY.counter(
    "repro_fleet_service_downtime_cycles_total",
    "Reconf/reset cycles observed while a batch was being served "
    "(zero for feasible migration plans).",
)
FLEET_BATCH_SECONDS = REGISTRY.histogram(
    "repro_fleet_batch_seconds",
    "Wall time from batch dequeue to future resolution.",
    buckets=SECONDS_BUCKETS,
)

# -- multi-process fleet (shared-memory tables) ------------------------
PROCFLEET_PUBLISHES = REGISTRY.counter(
    "repro_procfleet_publishes_total",
    "Table segments published to shared memory (epoch bumps), by shard.",
)
PROCFLEET_WORKER_SPAWNS = REGISTRY.counter(
    "repro_procfleet_worker_spawns_total",
    "Worker processes spawned (startup and crash reseed), by shard.",
)
PROCFLEET_WORKER_CRASHES = REGISTRY.counter(
    "repro_procfleet_worker_crashes_total",
    "Worker processes that died or wedged mid-request, by shard and "
    "error type.",
)

# -- replica groups (replicated shard logs) ----------------------------
REPLICA_LOG_APPENDS = REGISTRY.counter(
    "repro_replica_log_appends_total",
    "Command entries appended to replicated shard logs, by shard and "
    "kind (serve / ram_write / erase / retarget / membership).",
)
REPLICA_LOG_COMMITS = REGISTRY.counter(
    "repro_replica_log_commits_total",
    "Log entries committed (applied on a quorum of replicas), by shard.",
)
REPLICA_FAILOVERS = REGISTRY.counter(
    "repro_replica_failovers_total",
    "Serves rerouted from a dead replica to an in-sync peer, by shard.",
)
REPLICA_CATCH_UPS = REGISTRY.counter(
    "repro_replica_catch_ups_total",
    "Replicas caught up from the latest snapshot (fresh spawn, crash "
    "respawn or divergence heal), by shard.",
)
REPLICA_DIVERGENCE = REGISTRY.counter(
    "repro_replica_divergence_total",
    "Replica table fingerprints that disagreed with the group's, by "
    "shard and replica.",
)
REPLICA_MEMBERSHIP_CHANGES = REGISTRY.counter(
    "repro_replica_membership_changes_total",
    "Replica-group membership changes (add / remove / replace), by "
    "shard and kind.",
)
REPLICA_LAG = REGISTRY.gauge(
    "repro_replica_lag_entries",
    "Log entries between the group commit index and the slowest "
    "in-sync replica's applied index, by shard.",
)

# -- asyncio ingestion plane ------------------------------------------
FLEET_CANCELLED = REGISTRY.counter(
    "repro_fleet_cancelled_total",
    "Queued batches skipped because their future was cancelled before "
    "serving started (the queue slot is freed, no symbols step).",
)
AIO_SUBMITS = REGISTRY.counter(
    "repro_aio_submits_total",
    "Batches submitted through the asyncio bridge, by outcome "
    "(ok / error / cancelled).",
)
AIO_ADMISSION_WAITS = REGISTRY.counter(
    "repro_aio_admission_waits_total",
    "Saturation encounters where an async submitter awaited a queue "
    "slot instead of receiving FleetOverloaded.",
)
AIO_FRAMES = REGISTRY.counter(
    "repro_aio_frames_total",
    "Frames served by the asyncio ingestion server, by op.",
)
AIO_CONNECTIONS = REGISTRY.counter(
    "repro_aio_connections_total",
    "Client connections accepted by the asyncio ingestion server.",
)

# -- batch execution engine -------------------------------------------
ENGINE_COMPILES = REGISTRY.counter(
    "repro_engine_compiles_total",
    "CompiledFSM table compilations, by backend and origin "
    "(fsm / hardware).",
)
ENGINE_INVALIDATIONS = REGISTRY.counter(
    "repro_engine_invalidations_total",
    "Compiled-view invalidations, by reason "
    "(stale / replaced / store / explicit).",
)
ENGINE_FALLBACKS = REGISTRY.counter(
    "repro_engine_fallbacks_total",
    "Engine runs that fell back to the cycle-accurate datapath, by "
    "reason (migration / unconfigured / unavailable / error) and the "
    "backend that was displaced.",
)
ENGINE_SERVED = REGISTRY.counter(
    "repro_engine_symbols_total",
    "Input symbols executed, by path (compiled / cycle) and backend.",
)
ENGINE_BATCH_SIZE = REGISTRY.histogram(
    "repro_engine_batch_size",
    "Symbols per coalesced engine run on the fleet serving path, "
    "by backend.",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
)
ENGINE_NUMPY_AVAILABLE = REGISTRY.gauge(
    "repro_engine_numpy_available",
    "1 when the numpy fast path is importable and enabled, else 0.",
)

# -- execution-backend dispatch ---------------------------------------
EXEC_DECISIONS = REGISTRY.counter(
    "repro_exec_decisions_total",
    "Dispatcher backend decisions, by chosen backend and reason "
    "(policy / cached / compiled / migration / unconfigured / "
    "unavailable / compile-error).",
)
EXEC_BATCH_JOBS = REGISTRY.counter(
    "repro_exec_batch_jobs_total",
    "Independent jobs evaluated through exec-layer batch entry "
    "points, by site (e.g. ea.fitness).",
)
EXEC_STREAM_BATCHES = REGISTRY.counter(
    "repro_exec_stream_batches_total",
    "Multi-stream batches served through the exec stream plane, by "
    "backend and site (fleet.serve / ea.fitness / exec).",
)
EXEC_STREAM_LANES = REGISTRY.counter(
    "repro_exec_stream_lanes_total",
    "Independent streams served inside stream batches, by backend "
    "and site.",
)
EXEC_STREAM_SYMBOLS = REGISTRY.counter(
    "repro_exec_stream_symbols_total",
    "Input symbols served inside stream batches, by backend and site.",
)

# -- observability self-metrics ---------------------------------------
OBS_HTTP_REQUESTS = REGISTRY.counter(
    "repro_obs_http_requests_total",
    "Requests served by the observability HTTP endpoint, by route.",
)
OBS_HEALTH_CHECKS = REGISTRY.counter(
    "repro_obs_health_checks_total",
    "Health assessments computed, by resulting status.",
)

# -- plan cache --------------------------------------------------------
PLAN_CACHE_REQUESTS = REGISTRY.counter(
    "repro_plan_cache_requests_total",
    "Plan-cache lookups, by kind (program / chunks) and result "
    "(hit / miss).",
)

# -- suite and campaigns ----------------------------------------------
SUITE_WORKLOADS = REGISTRY.counter(
    "repro_suite_workloads_total",
    "Suite workloads run, by method and validity.",
)
CAMPAIGN_CELLS = REGISTRY.counter(
    "repro_campaign_cells_total",
    "Campaign design-point measurements executed.",
)
CAMPAIGN_CELL_SECONDS = REGISTRY.histogram(
    "repro_campaign_cell_seconds",
    "Wall time of one campaign measurement cell.",
    buckets=SECONDS_BUCKETS,
)


#: Per-method pre-bound handles for :func:`record_synthesis` — the
#: label set is validated and canonicalised once per method name, not
#: once per synthesised program.
_SYNTH_HANDLES: Dict[str, Tuple[Any, Any, Any, Any]] = {}


#: Per-(method, validity) pre-bound handles for :func:`record_workload`.
_WORKLOAD_HANDLES: Dict[Tuple[str, bool], Any] = {}


def record_workload(method: str, valid: bool) -> None:
    """Count one suite workload, with the label set bound once."""
    if not REGISTRY.enabled:
        return
    key = (method, valid)
    handle = _WORKLOAD_HANDLES.get(key)
    if handle is None:
        handle = _WORKLOAD_HANDLES[key] = SUITE_WORKLOADS.bind(
            method=method, valid=str(valid).lower()
        )
    handle.inc()


def record_synthesis(method: str, program: Any, seconds: float) -> None:
    """Publish the standard per-synthesis metrics for one program."""
    if not REGISTRY.enabled:
        return
    handles = _SYNTH_HANDLES.get(method)
    if handles is None:
        handles = _SYNTH_HANDLES[method] = (
            SYNTH_PROGRAMS.bind(method=method),
            SYNTH_SECONDS.bind(method=method),
            SYNTH_LENGTH.bind(method=method),
            SYNTH_WRITES.bind(method=method),
        )
    programs, seconds_h, length_h, writes = handles
    programs.inc()
    seconds_h.observe(seconds)
    length_h.observe(len(program))
    writes.inc(program.write_count)
