"""Unit tests for lock-step checking and observability latency."""

import pytest

from repro.hw.checker import (
    Divergence,
    LockstepChecker,
    latency_distribution,
    observability_latency,
)
from repro.hw.faults import inject_upset
from repro.hw.machine import HardwareFSM
from repro.workloads.library import ones_detector
from repro.workloads.random_fsm import random_fsm


class TestLockstepChecker:
    def test_healthy_dut_never_diverges(self, detector):
        checker = LockstepChecker(HardwareFSM(detector), detector)
        assert checker.run(list("110110101")) is None
        assert checker.cycles == 9

    def test_output_upset_detected_when_addressed(self, detector):
        dut = HardwareFSM(detector)
        inject_upset(dut, seed=0, ram="G", entry=("1", "S1"))
        checker = LockstepChecker(dut, detector)
        divergence = checker.run(list("11"))
        assert divergence is not None
        assert divergence.cycle == 1  # the corrupted entry fires then
        assert divergence.kind == "output"
        assert divergence.expected != divergence.actual

    def test_silent_until_addressed(self, detector):
        dut = HardwareFSM(detector)
        inject_upset(dut, seed=0, ram="G", entry=("1", "S1"))
        checker = LockstepChecker(dut, detector)
        assert checker.run(list("000000")) is None  # entry never used

    def test_garbage_read_is_immediate_divergence(self):
        machine = random_fsm(n_states=6, seed=1)  # 6 states, 3 code bits
        dut = HardwareFSM(machine)
        # flip bits until some F entry decodes to a garbage state code
        seed = 0
        divergence = None
        while divergence is None and seed < 60:
            dut = HardwareFSM(machine)
            inject_upset(dut, seed=seed, ram="F")
            checker = LockstepChecker(dut, machine)
            import random as _r

            rng = _r.Random(0)
            divergence = checker.run(
                [rng.choice(machine.inputs) for _ in range(500)]
            )
            if divergence is not None and divergence.kind == "garbage":
                break
            seed += 1
        # at least the loop must have found some divergence at some seed
        assert divergence is not None

    def test_divergence_latches(self, detector):
        dut = HardwareFSM(detector)
        inject_upset(dut, seed=0, ram="G", entry=("1", "S1"))
        checker = LockstepChecker(dut, detector)
        first = checker.run(list("11"))
        again = checker.step("0")
        assert again is first

    def test_reset_both_sides(self, detector):
        checker = LockstepChecker(HardwareFSM(detector), detector)
        checker.run(list("11"))
        checker.reset()
        assert checker.golden_state == detector.reset_state
        assert checker.dut.state == detector.reset_state


class TestObservabilityLatency:
    def test_latency_is_finite_for_reachable_upsets(self):
        machine = random_fsm(n_states=6, seed=4)
        latency = observability_latency(machine, upset_seed=0,
                                        max_cycles=5000)
        assert latency is None or latency >= 0

    def test_distribution_counts_add_up(self):
        machine = random_fsm(n_states=8, seed=3)
        latencies, silent = latency_distribution(
            machine, n_upsets=12, max_cycles=2000
        )
        assert len(latencies) + silent == 12
        assert all(lat >= 0 for lat in latencies)

    def test_deterministic(self):
        machine = random_fsm(n_states=6, seed=9)
        a = observability_latency(machine, upset_seed=2, traffic_seed=5,
                                  max_cycles=1000)
        b = observability_latency(machine, upset_seed=2, traffic_seed=5,
                                  max_cycles=1000)
        assert a == b
