"""Unit tests for the FPGA resource/timing model (repro.hw.fpga)."""

import pytest

from repro.core.jsr import jsr_program
from repro.hw.fpga import (
    XCV300,
    FPGADevice,
    ReconfigurationCostModel,
    estimate_resources,
)
from repro.workloads.library import fig6_m, fig6_m_prime, ones_detector
from repro.workloads.random_fsm import random_fsm


class TestDevice:
    def test_xcv300_constants(self):
        assert XCV300.block_rams == 16
        assert XCV300.total_bram_bits == 16 * 4096

    def test_full_swap_milliseconds(self):
        # The paper: "reconfiguration times in the order of milliseconds".
        t = XCV300.full_swap_seconds()
        assert 1e-3 < t < 10e-3

    def test_partial_swap_scales(self):
        full = XCV300.full_swap_seconds()
        half = XCV300.partial_swap_seconds(0.5)
        assert 0 < half <= full
        assert XCV300.partial_swap_seconds(1.0) == pytest.approx(full)

    def test_partial_swap_frame_quantised(self):
        tiny = XCV300.partial_swap_seconds(1e-9)
        assert tiny == pytest.approx(full_frame := XCV300.full_swap_seconds()
                                     / XCV300.frames)
        assert full_frame > 0

    def test_partial_swap_validates_fraction(self):
        with pytest.raises(ValueError):
            XCV300.partial_swap_seconds(0)
        with pytest.raises(ValueError):
            XCV300.partial_swap_seconds(1.5)


class TestResourceEstimate:
    def test_small_machine_fits_xcv300(self, detector):
        estimate = estimate_resources(detector)
        assert estimate.fits(XCV300)
        assert estimate.block_rams == 2  # one each for F-RAM and G-RAM

    def test_ram_bits_geometry(self, detector):
        # 1 input bit + 1 state bit -> 4 words; F data 1 bit, G data 1 bit.
        estimate = estimate_resources(detector)
        assert estimate.f_ram_bits == 4
        assert estimate.g_ram_bits == 4
        assert estimate.total_ram_bits == 8

    def test_superset_headroom_grows_rams(self, detector):
        base = estimate_resources(detector)
        grown = estimate_resources(detector, extra_states=6)
        assert grown.f_ram_bits > base.f_ram_bits

    def test_rom_cycles_grow_reconfigurator(self, fig6_pair):
        m, mp = fig6_pair
        short = estimate_resources(mp, rom_cycles=5)
        long = estimate_resources(mp, rom_cycles=500)
        assert long.reconfigurator_luts > short.reconfigurator_luts

    def test_huge_machine_does_not_fit(self):
        machine = random_fsm(n_states=16, n_inputs=8, seed=0)
        # 3 input bits + 4 state bits = 128 words is fine; blow it up via
        # headroom until the BRAM budget is exceeded.
        estimate = estimate_resources(machine, extra_states=2**14)
        assert not estimate.fits(XCV300)


class TestLutEstimate:
    def test_small_machine_few_luts(self, detector):
        from repro.hw.fpga import estimate_lut_implementation

        lut = estimate_lut_implementation(detector)
        assert lut.luts >= 2  # one per next-state/output bit minimum
        assert lut.flip_flops == 1
        assert lut.fits(XCV300)

    def test_grows_with_machine_size(self):
        from repro.hw.fpga import estimate_lut_implementation

        small = estimate_lut_implementation(random_fsm(n_states=4, seed=0))
        large = estimate_lut_implementation(
            random_fsm(n_states=64, n_inputs=8, seed=0)
        )
        assert large.luts > small.luts

    def test_validates_lut_inputs(self, detector):
        from repro.hw.fpga import estimate_lut_implementation

        with pytest.raises(ValueError):
            estimate_lut_implementation(detector, lut_inputs=1)


class TestCostModel:
    def test_gradual_is_microseconds(self, fig6_pair):
        m, mp = fig6_pair
        model = ReconfigurationCostModel()
        t = model.gradual_seconds(jsr_program(m, mp))
        assert t < 1e-6  # 15 cycles at 50 MHz = 300 ns

    def test_accepts_plain_cycle_counts(self):
        model = ReconfigurationCostModel()
        assert model.gradual_seconds(50) == pytest.approx(1e-6)

    def test_speedup_orders_of_magnitude(self, fig6_pair):
        m, mp = fig6_pair
        model = ReconfigurationCostModel()
        assert model.speedup_vs_full_swap(jsr_program(m, mp)) > 1000

    def test_partial_swap_still_slower(self, fig6_pair):
        m, mp = fig6_pair
        model = ReconfigurationCostModel()
        program = jsr_program(m, mp)
        assert model.speedup_vs_partial_swap(program) > 1

    def test_crossover_point_full(self):
        model = ReconfigurationCostModel()
        cycles = model.crossover_cycles_full()
        # Gradual reconfiguration wins until |Z| exceeds ~10^5 cycles.
        assert cycles > 10_000

    def test_crossover_partial_below_full(self, fig6_pair):
        _, mp = fig6_pair
        model = ReconfigurationCostModel()
        assert (
            model.crossover_cycles_partial(mp) <= model.crossover_cycles_full()
        )

    def test_custom_device(self):
        device = FPGADevice(
            name="tiny",
            luts=100,
            flip_flops=100,
            block_rams=2,
            block_ram_bits=1024,
            bitstream_bits=10_000,
        )
        model = ReconfigurationCostModel(device=device, clock_hz=1e6)
        assert model.full_swap_seconds() == pytest.approx(
            10_000 / (8 * 50e6)
        )
