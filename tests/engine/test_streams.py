"""The multi-stream plane: packing, encoding, kernels, scoring.

Unit coverage for ``repro.engine.streams`` — the dtype packer, the
state-major pre-scaled ``StreamTables``, encode-once ``StreamBatch``,
ragged length-sorted execution, sentinel propagation, per-lane starts,
and the vectorised ``ExpectedOutputs`` / ``match_counts`` scoring path.
Bitwise py-vs-numpy equivalence over random machines lives here too;
the cross-backend differential suite (dispatcher-selected, mid-stream
invalidation) is ``tests/exec/test_streams_differential.py``.
"""

import pytest

from repro.engine import (
    CompiledFSM,
    EngineError,
    ExpectedOutputs,
    StreamBatch,
    StreamRun,
    StreamTables,
    UnconfiguredEntry,
    numpy_available,
    stream_dtype_name,
)
from repro.hw.machine import HardwareFSM
from repro.workloads.library import fig6_m, fig6_m_prime, ones_detector
from repro.workloads.random_fsm import random_fsm
from repro.workloads.suite import traffic_words

BACKENDS_HERE = [
    b for b in ("python", "numpy") if b == "python" or numpy_available()
]

needs_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy unavailable: packed stream tables"
)


def ragged_words(machine, seed=0):
    """A deliberately ragged batch: lengths 0..9, shuffled."""
    words = traffic_words(machine, 10, 9, seed=seed)
    return [word[:n] for n, word in enumerate(words)]


class TestDtypePacking:
    def test_small_geometry_packs_uint8(self):
        # size + n_inputs = 2*4 + 2 = 10 <= 255
        assert stream_dtype_name(2, 4, 2) == "uint8"

    def test_address_space_drives_the_width(self):
        # 2 inputs x 200 states: 400 + 2 > 255 -> uint16
        assert stream_dtype_name(2, 200, 2) == "uint16"
        # 4 inputs x 20_000 states: 80_004 > 65_535 -> int32
        assert stream_dtype_name(4, 20_000, 2) == "int32"

    def test_output_sentinels_drive_the_width_too(self):
        # tiny table, but out_garbage = n_outputs + 1 must fit
        assert stream_dtype_name(1, 2, 255) == "uint16"

    def test_beyond_int32_raises(self):
        with pytest.raises(EngineError, match="int32"):
            stream_dtype_name(1 << 16, 1 << 16, 2)

    @needs_numpy
    def test_tables_report_the_same_dtype_they_pack(self):
        compiled = CompiledFSM.from_fsm(ones_detector(), backend="numpy")
        tables = StreamTables(compiled)
        assert tables.dtype_name == stream_dtype_name(
            compiled.n_inputs, compiled.n_states, len(compiled.outputs)
        )
        assert tables.next_padded.dtype == tables.dtype
        assert tables.out_padded.dtype == tables.dtype


@needs_numpy
class TestStreamTables:
    def test_next_entries_are_prescaled_state_major(self):
        fsm = ones_detector()
        compiled = CompiledFSM.from_fsm(fsm, backend="numpy")
        tables = StreamTables(compiled)
        n_i = compiled.n_inputs
        for trans in fsm.transitions():
            addr = (
                compiled._state_code[trans.source] * n_i
                + compiled._input_code[trans.input]
            )
            want = compiled._state_code[trans.target] * n_i
            assert int(tables.next_padded[addr]) == want

    def test_complete_machine_has_no_holes(self):
        tables = StreamTables(
            CompiledFSM.from_fsm(ones_detector(), backend="numpy")
        )
        assert tables.complete and not tables.has_garbage

    def test_holes_self_trap(self):
        # An un-programmed migration datapath leaves the new state's
        # rows unset; the packed table parks those lanes at hole_base.
        hw = HardwareFSM.for_migration(fig6_m(), fig6_m_prime())
        tables = StreamTables(CompiledFSM.from_hardware(hw, backend="numpy"))
        assert not tables.complete
        base = tables.hole_base
        # Every pad row under hole_base loops back to hole_base.
        for offset in range(tables.n_inputs):
            assert int(tables.next_padded[base + offset]) == base
            assert int(tables.out_padded[base + offset]) == tables.out_none


class TestStreamBatch:
    def test_encode_once_counts_and_horizon(self):
        machine = ones_detector()
        words = ragged_words(machine)
        batch = StreamBatch.encode(machine.inputs, words)
        assert batch.n == len(batch) == len(words)
        assert batch.n_symbols == sum(len(w) for w in words)
        assert batch.horizon == max(len(w) for w in words)

    def test_order_is_stable_length_descending(self):
        batch = StreamBatch.encode("01", [["0"], ["1", "1"], ["0"], []])
        lengths = [len(batch.code_words[i]) for i in batch.order]
        assert lengths == sorted(lengths, reverse=True)
        # Equal-length streams keep submission order (stable sort).
        assert batch.order == [1, 0, 2, 3]

    def test_foreign_symbol_raises(self):
        with pytest.raises(EngineError, match="not in the compiled"):
            StreamBatch.encode("01", [["0", "2"]])

    def test_alphabet_mismatch_refused_at_run_time(self):
        compiled = CompiledFSM.from_fsm(ones_detector(), backend="python")
        foreign = StreamBatch.encode(("a", "b"), [["a"]])
        with pytest.raises(EngineError, match="different input"):
            compiled.run_stream_batch(foreign)


@pytest.mark.parametrize("backend", BACKENDS_HERE)
class TestKernelEquivalence:
    def test_matches_run_word_per_stream(self, backend):
        machine = ones_detector()
        compiled = CompiledFSM.from_fsm(machine, backend=backend)
        words = ragged_words(machine, seed=3)
        runs = compiled.run_streams(words).word_runs()
        assert len(runs) == len(words)
        for word, run in zip(words, runs):
            ref = compiled.run_word(word)
            assert run.outputs == ref.outputs
            assert run.final_state == ref.final_state
            assert run.visits == ref.visits

    def test_per_lane_starts_with_none_entries(self, backend):
        machine = ones_detector()
        compiled = CompiledFSM.from_fsm(machine, backend=backend)
        words = traffic_words(machine, 4, 6, seed=5)
        starts = [machine.states[-1], None, machine.states[0], None]
        runs = compiled.run_streams(words, starts=starts).word_runs()
        for word, start, run in zip(words, starts, runs):
            ref = compiled.run_word(
                word, start=machine.reset_state if start is None else start
            )
            assert (run.outputs, run.final_state) == (
                ref.outputs,
                ref.final_state,
            )

    def test_wrong_starts_length_raises(self, backend):
        compiled = CompiledFSM.from_fsm(ones_detector(), backend=backend)
        with pytest.raises(ValueError, match="start states"):
            compiled.run_streams([["0"], ["1"]], starts=["off"])

    def test_random_ragged_py_numpy_bitwise_identical(self, backend):
        if backend == "python":
            pytest.skip("the cross-kernel property needs both kernels")
        for seed in range(8):
            fsm = random_fsm(
                n_states=3 + seed % 4,
                n_inputs=1 + seed % 3,
                n_outputs=2,
                seed=seed,
            )
            words = ragged_words(fsm, seed=seed)
            py = CompiledFSM.from_fsm(fsm, backend="python")
            np_ = CompiledFSM.from_fsm(fsm, backend="numpy")
            batch = StreamBatch.encode(fsm.inputs, words)
            runs_py = py.run_stream_batch(batch).word_runs()
            runs_np = np_.run_stream_batch(batch).word_runs()
            for a, b in zip(runs_py, runs_np):
                assert a.outputs == b.outputs
                assert a.final_state == b.final_state
                assert a.visits == b.visits

    def test_hole_raises_unconfigured(self, backend):
        source, target = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(source, target)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        extra = next(s for s in target.states if s not in source.states)
        words = [[source.inputs[0]], [source.inputs[0]]]
        with pytest.raises(UnconfiguredEntry):
            compiled.run_streams(
                words, starts=[source.reset_state, extra]
            ).word_runs()

    def test_empty_batch_and_empty_words(self, backend):
        machine = ones_detector()
        compiled = CompiledFSM.from_fsm(machine, backend=backend)
        empty = compiled.run_streams([])
        assert empty.final_states() == [] and empty.word_runs() == []
        run = compiled.run_streams([[]]).word_runs()[0]
        assert run.outputs == [] and run.final_state == machine.reset_state


@pytest.mark.parametrize("backend", BACKENDS_HERE)
class TestStreamRunScoring:
    def _scored(self, backend):
        machine = ones_detector()
        compiled = CompiledFSM.from_fsm(machine, backend=backend)
        words = ragged_words(machine, seed=7)
        expected_words = [machine.run(w) for w in words]
        # Corrupt a few expectations so counts are non-trivial.
        for word in expected_words[::2]:
            if word:
                word[0] = None
        batch = StreamBatch.encode(machine.inputs, words)
        run = compiled.run_stream_batch(batch)
        expected = ExpectedOutputs(compiled.outputs, expected_words)
        return run, expected, words, expected_words, compiled

    def test_match_counts_equals_scalar_zip(self, backend):
        run, expected, words, expected_words, compiled = self._scored(
            backend
        )
        counts = run.match_counts(expected)
        fresh = compiled.run_streams(words).word_runs()
        want = [
            sum(1 for got, w in zip(r.outputs, word) if got == w)
            for r, word in zip(fresh, expected_words)
        ]
        assert counts == want

    def test_final_states_match_word_runs(self, backend):
        run, _, _, _, _ = self._scored(backend)
        assert run.final_states() == [r.final_state for r in run.word_runs()]
        assert isinstance(run, StreamRun) and len(run) == run.n

    def test_lane_count_mismatch_raises(self, backend):
        run, _, _, _, compiled = self._scored(backend)
        short = ExpectedOutputs(compiled.outputs, [["1"]])
        with pytest.raises(EngineError):
            run.match_counts(short)
