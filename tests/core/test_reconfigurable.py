"""Unit tests for the Def. 2.2 model (ReconfigurableFSM / self-reconfiguration)."""

import pytest

from repro.core.ea import EAConfig, ea_program
from repro.core.fsm import FSMError
from repro.core.jsr import jsr_program
from repro.core.reconfigurable import (
    NORMAL,
    ReconfigurableFSM,
    ReconfiguratorEntry,
    SelfReconfigurableFSM,
    Trigger,
)
from repro.workloads.library import (
    fig6_m,
    fig6_m_prime,
    ones_detector,
    table1_target,
)


def table1_rows():
    """The four reconfiguration states r1..r4 of the paper's Table 1."""
    return {
        "r1": ReconfiguratorEntry(hi="1", hf="S1", hg="0"),
        "r2": ReconfiguratorEntry(hi="1", hf="S1", hg="0"),
        "r3": ReconfiguratorEntry(hi="0", hf="S0", hg="0"),
        "r4": ReconfiguratorEntry(hi="0", hf="S0", hg="1"),
    }


class TestReconfigurableFSM:
    def test_normal_mode_matches_base_machine(self, detector):
        machine = ReconfigurableFSM(detector)
        word = list("110110")
        outputs = [machine.step(i) for i in word]
        assert outputs == detector.run(word)

    def test_h_i_identity_in_normal_mode(self, detector):
        machine = ReconfigurableFSM(detector, table1_rows())
        assert machine.h_i("1", NORMAL) == "1"
        assert machine.h_i("0", "r1") == "1"  # forced during reconfiguration

    def test_h_f_h_g_accessors(self, detector):
        machine = ReconfigurableFSM(detector, table1_rows())
        assert machine.h_f("r4") == "S0"
        assert machine.h_g("r4") == "1"

    def test_reconf_states_include_normal(self, detector):
        machine = ReconfigurableFSM(detector, table1_rows())
        assert set(machine.reconf_states) == {NORMAL, "r1", "r2", "r3", "r4"}

    def test_normal_name_cannot_carry_entry(self, detector):
        with pytest.raises(FSMError):
            ReconfigurableFSM(
                detector, {NORMAL: ReconfiguratorEntry(hi="0", hf="S0", hg="0")}
            )

    def test_table1_sequence_reproduces_paper(self, detector):
        """Replaying r1..r4 from S0 yields exactly the paper's target."""
        machine = ReconfigurableFSM(detector, table1_rows())
        assert machine.state == "S0"
        for r in ("r1", "r2", "r3", "r4"):
            machine.step("0", r)  # external input is ignored
        assert machine.realises(table1_target())
        assert machine.writes == 4
        # the walk visited S0 -> S1 -> S1 -> S0 -> S0
        assert machine.state == "S0"

    def test_table1_outputs_during_reconfiguration(self, detector):
        machine = ReconfigurableFSM(detector, table1_rows())
        outputs = [machine.step("1", r) for r in ("r1", "r2", "r3", "r4")]
        assert outputs == ["0", "0", "0", "1"]  # the Hg column of Table 1

    def test_normal_operation_resumes_after_reconfiguration(self, detector):
        machine = ReconfigurableFSM(detector, table1_rows())
        for r in ("r1", "r2", "r3", "r4"):
            machine.step("0", r)
        word = list("0011")
        assert [machine.step(i) for i in word] == table1_target().run(word)

    def test_write_rewrites_f_and_g(self, detector):
        machine = ReconfigurableFSM(detector, table1_rows())
        machine.step("0", "r1")
        assert machine.f("1", "S0") == "S1"
        machine.step("0", "r2")
        assert machine.g("1", "S1") == "0"  # was "1" in the base machine

    def test_unconfigured_read_raises_in_normal_mode(self, detector):
        machine = ReconfigurableFSM(detector, extra_states=["S9"])
        machine.state = "S9"
        with pytest.raises(FSMError, match="unconfigured"):
            machine.step("0")

    def test_reset_forces_reset_state(self, detector):
        machine = ReconfigurableFSM(detector)
        machine.step("1")
        assert machine.state == "S1"
        machine.reset()
        assert machine.state == "S0"

    def test_retarget_reset_validates_state(self, detector):
        machine = ReconfigurableFSM(detector, extra_states=["S9"])
        machine.retarget_reset("S9")
        assert machine.reset_state == "S9"
        with pytest.raises(FSMError):
            machine.retarget_reset("nope")

    def test_non_writing_row_must_match_table(self, detector):
        machine = ReconfigurableFSM(detector)
        machine.define("t1", ReconfiguratorEntry(hi="1", hf="S1", hg="0", write=False))
        machine.step("0", "t1")  # traversal of the existing (1,S0) entry
        machine.define("t2", ReconfiguratorEntry(hi="1", hf="S0", hg="0", write=False))
        with pytest.raises(FSMError, match="disagrees"):
            machine.step("0", "t2")

    def test_snapshot_recovers_base_machine(self, detector):
        machine = ReconfigurableFSM(detector)
        snap = machine.snapshot()
        assert snap.behaviourally_equivalent(detector)

    def test_snapshot_after_migration(self, detector):
        machine = ReconfigurableFSM(detector, table1_rows())
        for r in ("r1", "r2", "r3", "r4"):
            machine.step("0", r)
        assert machine.snapshot().behaviourally_equivalent(table1_target())


class TestFromProgram:
    def test_schedule_replays_jsr_program(self, fig6_pair):
        m, mp = fig6_pair
        program = jsr_program(m, mp)
        machine, schedule = ReconfigurableFSM.from_program(program)
        assert len(schedule) == len(program)
        machine.run_schedule(schedule, retarget=mp.reset_state)
        assert machine.realises(mp)
        assert machine.state == mp.reset_state

    def test_schedule_replays_ea_program(self, fig6_pair, fast_ea):
        m, mp = fig6_pair
        program = ea_program(m, mp, config=fast_ea)
        machine, schedule = ReconfigurableFSM.from_program(program)
        machine.run_schedule(schedule, retarget=mp.reset_state)
        assert machine.realises(mp)

    def test_reconf_state_names(self, fig6_pair):
        m, mp = fig6_pair
        program = jsr_program(m, mp)
        machine, schedule = ReconfigurableFSM.from_program(program)
        assert schedule[0] == "r1"
        assert schedule[-1] == f"r{len(program)}"
        assert machine.normal == NORMAL


class TestSelfReconfigurableFSM:
    def _machine(self, fast_ea):
        program = ea_program(ones_detector(), table1_target(), config=fast_ea)
        trigger = Trigger(
            predicate=lambda state, i: state == "S1" and i == "0",
            program=program,
            name="on-zero-after-ones",
        )
        return SelfReconfigurableFSM(ones_detector(), [trigger]), program

    def test_trigger_fires_and_migrates(self, fast_ea):
        machine, program = self._machine(fast_ea)
        outputs = machine.run(list("11") + ["0"] * (len(program) + 2))
        assert machine.machine.realises(table1_target())
        assert any(flag for _o, flag in outputs)

    def test_trigger_fires_once(self, fast_ea):
        machine, program = self._machine(fast_ea)
        machine.run(list("110") + ["0"] * (len(program) + 5) + list("110"))
        assert machine.triggers[0].fired == 1

    def test_reconfiguring_flag_during_replay(self, fast_ea):
        machine, program = self._machine(fast_ea)
        machine.run(list("11"))
        assert not machine.reconfiguring
        machine.clock("0")  # trigger fires: first replay cycle runs
        if len(program) > 1:
            assert machine.reconfiguring

    def test_log_records_trigger(self, fast_ea):
        machine, _ = self._machine(fast_ea)
        machine.run(list("110000000000000000"))
        assert any("on-zero-after-ones" in line for line in machine.log)

    def test_add_trigger(self, fast_ea):
        machine, program = self._machine(fast_ea)
        machine.add_trigger(
            Trigger(lambda s, i: False, program, name="never-fires")
        )
        machine.run(list("10"))
        assert machine.triggers[1].fired == 0

    def test_normal_behaviour_before_trigger(self, fast_ea):
        machine, _ = self._machine(fast_ea)
        word = list("111")  # never reaches the (S1, '0') trigger condition
        got = [o for o, _f in machine.run(word)]
        assert got == ones_detector().run(word)
        assert not machine.reconfiguring
