"""Shortest paths over (possibly partially configured) transition tables.

Both the evolutionary heuristic's decoder (Sec. 4.6) and the exact
optimiser need to answer "how do I travel from my current state to the
source state of the next delta transition, using only transitions that
currently exist in the table?".  The table changes while a reconfiguration
program executes, so the functions here work on plain table mappings
``(i, s) -> (s', o) | None`` rather than on immutable :class:`~repro.core.fsm.FSM`
objects.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from .fsm import FSM, Input, State, Transition

Table = Mapping[Tuple[Input, State], Optional[Tuple[State, object]]]


def table_of(machine: FSM) -> Dict[Tuple[Input, State], Tuple[State, object]]:
    """Mutable copy of a machine's complete transition/output table."""
    return dict(machine.table)


def shortest_path(
    table: Table,
    inputs: Iterable[Input],
    start: State,
    goal: State,
) -> Optional[List[Transition]]:
    """BFS shortest transition sequence from ``start`` to ``goal``.

    Only configured entries (value not ``None``) are traversable.  Returns
    the list of transitions along one shortest path, ``[]`` when start and
    goal coincide, or ``None`` when the goal is unreachable.

    Ties are broken by the canonical order of ``inputs``, which makes the
    search fully deterministic — important for reproducible heuristics.
    """
    if start == goal:
        return []
    inputs = tuple(inputs)
    parent: Dict[State, Transition] = {}
    seen = {start}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        for i in inputs:
            entry = table.get((i, state))
            if entry is None:
                continue
            target, output = entry
            if target in seen:
                continue
            seen.add(target)
            parent[target] = Transition(i, state, target, output)
            if target == goal:
                path: List[Transition] = []
                node = goal
                while node != start:
                    trans = parent[node]
                    path.append(trans)
                    node = trans.source
                path.reverse()
                return path
            queue.append(target)
    return None


def distance(
    table: Table, inputs: Iterable[Input], start: State, goal: State
) -> Optional[int]:
    """Length of the shortest path, or ``None`` when unreachable."""
    path = shortest_path(table, inputs, start, goal)
    return None if path is None else len(path)


def all_pairs_distances(
    table: Table, inputs: Iterable[Input], states: Iterable[State]
) -> Dict[Tuple[State, State], int]:
    """All-pairs shortest-path distances between the given states.

    Runs one BFS per source state; unreachable pairs are omitted from the
    result.  Used by the ordering heuristics to build the travelling-
    salesman view of the delta-ordering problem (Sec. 4.6).
    """
    inputs = tuple(inputs)
    states = tuple(states)
    distances: Dict[Tuple[State, State], int] = {}
    for start in states:
        dist = {start: 0}
        queue = deque([start])
        while queue:
            state = queue.popleft()
            for i in inputs:
                entry = table.get((i, state))
                if entry is None:
                    continue
                target = entry[0]
                if target not in dist:
                    dist[target] = dist[state] + 1
                    queue.append(target)
        for goal in states:
            if goal in dist:
                distances[(start, goal)] = dist[goal]
    return distances


def reachable(table: Table, inputs: Iterable[Input], start: State) -> frozenset:
    """All states reachable from ``start`` through configured entries."""
    inputs = tuple(inputs)
    seen = {start}
    queue = deque([start])
    while queue:
        state = queue.popleft()
        for i in inputs:
            entry = table.get((i, state))
            if entry is None:
                continue
            target = entry[0]
            if target not in seen:
                seen.add(target)
                queue.append(target)
    return frozenset(seen)
