"""Unit tests for the trace-driven power model."""

import pytest

from repro.core.jsr import jsr_program
from repro.hw.machine import HardwareFSM
from repro.hw.power import (
    PowerParameters,
    estimate_power,
    reconfiguration_energy_pj,
)
from repro.workloads.library import fig6_m, fig6_m_prime, ones_detector


class TestEstimatePower:
    def test_empty_trace(self, detector):
        hw = HardwareFSM(detector)
        est = estimate_power(hw)
        assert est.cycles == 0
        assert est.energy_pj == 0.0
        assert est.average_power_mw() == 0.0

    def test_counts_cycles_and_reads(self, detector):
        hw = HardwareFSM(detector)
        hw.run(list("110110"))
        est = estimate_power(hw)
        assert est.cycles == 6
        assert est.ram_reads == 12  # F and G each cycle
        assert est.ram_writes == 0  # normal mode never writes

    def test_state_toggles_measured(self, detector):
        hw = HardwareFSM(detector)
        hw.run(list("10"))  # S0 -> S1 -> S0: two single-bit toggles
        assert estimate_power(hw).state_bit_toggles == 2

    def test_idle_traffic_cheaper_than_toggling(self, detector):
        busy = HardwareFSM(detector)
        busy.run(list("10101010"))
        idle = HardwareFSM(detector)
        idle.run(list("00000000"))
        assert (
            estimate_power(idle).energy_pj < estimate_power(busy).energy_pj
        )

    def test_writes_cost_more(self, detector):
        normal = HardwareFSM(detector)
        normal.run(list("1111"))
        migrating = HardwareFSM.for_migration(fig6_m(), fig6_m_prime())
        migrating.run_program(jsr_program(fig6_m(), fig6_m_prime()))
        est = estimate_power(migrating)
        assert est.ram_writes > 0
        assert est.energy_per_cycle_pj() > 0

    def test_custom_parameters(self, detector):
        hw = HardwareFSM(detector)
        hw.run(list("11"))
        cheap = estimate_power(hw, params=PowerParameters(ram_read_pj=0.0))
        rich = estimate_power(hw, params=PowerParameters(ram_read_pj=99.0))
        assert rich.energy_pj > cheap.energy_pj

    def test_average_power_scales_with_clock(self, detector):
        hw = HardwareFSM(detector)
        hw.run(list("1101"))
        est = estimate_power(hw)
        assert est.average_power_mw(100e6) == pytest.approx(
            2 * est.average_power_mw(50e6)
        )


class TestWindowedEnergy:
    def test_slice_energy(self):
        m, mp = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(m, mp)
        hw.run(list("110"))
        start = hw.cycles
        hw.run_program(jsr_program(m, mp))
        end = hw.cycles
        reconf = reconfiguration_energy_pj(hw, start, end)
        total = estimate_power(hw).energy_pj
        assert 0 < reconf < total
