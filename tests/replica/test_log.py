"""The replicated shard log: indexes, commits, retention, fingerprints.

The log is the paper's one-write-per-cycle discipline made explicit:
every mutation a shard performs is one ordered command, so replicating
the shard is replaying the command stream.  These tests pin the log's
contract — monotonic indexes, a closed command vocabulary, monotonic
quorum commits, bounded retention with a snapshot escape hatch — and
the table fingerprint that detects replica divergence.
"""

import pytest

from repro.engine.compiled import CompiledFSM
from repro.replica import (
    ENTRY_KINDS,
    LogEntry,
    ReplicaConfig,
    ReplicaGroupStatus,
    ReplicaStatus,
    ShardLog,
    fingerprint_tables,
    table_fingerprint,
)
from repro.workloads.library import ones_detector, sequence_detector


class TestReplicaConfig:
    def test_defaults_are_three_replicas_majority_quorum(self):
        config = ReplicaConfig()
        assert config.n == 3
        assert config.quorum is None
        assert config.majority == 2
        assert config.resolved_quorum() == 2

    def test_explicit_quorum_wins(self):
        assert ReplicaConfig(n=5, quorum=4).resolved_quorum() == 4

    @pytest.mark.parametrize("n", [0, -1])
    def test_replica_count_must_be_positive(self, n):
        with pytest.raises(ValueError):
            ReplicaConfig(n=n)

    @pytest.mark.parametrize("quorum", [0, 4])
    def test_quorum_must_fit_the_group(self, quorum):
        with pytest.raises(ValueError):
            ReplicaConfig(n=3, quorum=quorum)

    def test_effective_is_identity_without_the_killswitch(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_REPLICATION", raising=False)
        config = ReplicaConfig(n=3)
        assert config.effective() is config

    def test_killswitch_collapses_to_one_replica(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_REPLICATION", "1")
        collapsed = ReplicaConfig(n=5, quorum=4).effective()
        assert collapsed.n == 1
        assert collapsed.resolved_quorum() == 1


class TestShardLog:
    def test_indexes_are_monotonic_from_one(self):
        log = ShardLog("0")
        entries = [log.append("serve", cycles=i) for i in range(5)]
        assert [e.index for e in entries] == [1, 2, 3, 4, 5]
        assert log.last_index == 5
        assert log.next_index == 6

    def test_kind_vocabulary_is_closed(self):
        log = ShardLog("0")
        with pytest.raises(ValueError, match="unknown log entry kind"):
            log.append("reboot")
        assert ENTRY_KINDS == {
            "serve", "ram_write", "erase", "retarget", "membership",
        }

    def test_entries_are_immutable(self):
        entry = ShardLog("0").append("serve", cycles=4)
        with pytest.raises(AttributeError):
            entry.index = 99
        assert entry.to_dict() == {
            "index": 1, "kind": "serve", "payload": {"cycles": 4},
        }

    def test_commit_is_monotonic(self):
        log = ShardLog("0")
        for _ in range(3):
            log.append("serve")
        assert log.commit(2, "serve", quorum=2) == 2
        # A stale commit can never move the index backwards.
        assert log.commit(1, "serve", quorum=2) == 2
        assert log.commit_index == 2

    def test_entries_filter_by_index_and_kind(self):
        log = ShardLog("0")
        log.append("serve")
        log.append("ram_write")
        log.append("serve")
        assert [e.index for e in log.entries(since_index=1)] == [2, 3]
        assert [e.kind for e in log.entries(kind="serve")] == [
            "serve", "serve",
        ]

    def test_retention_bounds_the_ring(self):
        log = ShardLog("0", retention=3)
        for _ in range(5):
            log.append("serve")
        assert len(log) == 3
        assert log.dropped == 2
        assert log.oldest_index == 3

    def test_laggards_behind_retention_must_snapshot(self):
        log = ShardLog("0", retention=3)
        for _ in range(5):
            log.append("serve")
        # Oldest retained entry is index 3: a replica at 2 can replay
        # (it needs 3, 4, 5); a replica at 1 is missing entry 2.
        assert log.can_replay_from(2)
        assert not log.can_replay_from(1)
        assert log.can_replay_from(5)

    def test_empty_log_replays_only_from_the_tip(self):
        log = ShardLog("0")
        assert log.can_replay_from(0)
        assert log.oldest_index == 0


class TestGroupStatus:
    def _status(self, **over):
        replicas = over.pop("replicas", [
            ReplicaStatus("r0", applied_index=7, in_sync=True),
            ReplicaStatus("r1", applied_index=5, in_sync=True),
            ReplicaStatus("r2", applied_index=0, in_sync=False),
        ])
        return ReplicaGroupStatus(
            shard="0", n=3, quorum=2, commit_index=7, replicas=replicas,
            **over,
        )

    def test_in_sync_and_quorum(self):
        status = self._status()
        assert status.in_sync == 2
        assert status.quorum_ok

    def test_lag_ignores_out_of_sync_replicas(self):
        assert self._status().lag == 2  # commit 7 - slowest in-sync 5

    def test_quorum_lost_when_too_few_in_sync(self):
        status = self._status(replicas=[
            ReplicaStatus("r0", applied_index=7, in_sync=True),
            ReplicaStatus("r1", applied_index=0, in_sync=False),
            ReplicaStatus("r2", applied_index=0, in_sync=False),
        ])
        assert not status.quorum_ok

    def test_to_dict_round_trips_the_summary(self):
        as_dict = self._status().to_dict()
        assert as_dict["quorum_ok"] is True
        assert as_dict["lag"] == 2
        assert [r["name"] for r in as_dict["replicas"]] == [
            "r0", "r1", "r2",
        ]


class TestFingerprint:
    def test_identical_tables_agree(self):
        compiled = CompiledFSM.from_fsm(ones_detector(), backend="python")
        again = CompiledFSM.from_fsm(ones_detector(), backend="python")
        assert table_fingerprint(compiled) == table_fingerprint(again)

    def test_different_machines_differ(self):
        a = CompiledFSM.from_fsm(ones_detector(), backend="python")
        b = CompiledFSM.from_fsm(
            sequence_detector("1011"), backend="python"
        )
        assert table_fingerprint(a) != table_fingerprint(b)

    def test_single_entry_flip_changes_the_fingerprint(self):
        compiled = CompiledFSM.from_fsm(ones_detector(), backend="python")
        before = table_fingerprint(compiled)
        table = list(compiled.next_table)
        table[0] = (table[0] + 1) % compiled.n_states
        after = fingerprint_tables(
            compiled.n_inputs,
            compiled.n_states,
            table,
            compiled.out_table,
            compiled.reset_state,
            table_version=getattr(compiled, "source_version", None),
        )
        assert before != after

    def test_unconfigured_sentinels_are_hashable(self):
        # -1 marks unconfigured words mid-migration; the fingerprint
        # must accept them (signed packing), not wrap or raise.
        fp = fingerprint_tables(2, 2, [-1, 0, 1, -1], [0, 1, 0, 1], 0)
        assert isinstance(fp, int) and fp >= 0
