# Convenience targets for the reproduction repository.

PYTHON ?= python

.PHONY: install test bench bench-obs bench-engine bench-fleet bench-replica bench-aio bench-passes soak-fleet examples results clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-obs:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_obs_overhead.py

bench-engine:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_engine.py

bench-fleet:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_fleet.py

bench-replica:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_replica.py

bench-aio:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_aio.py

bench-passes:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_passes.py

soak-fleet:
	PYTHONPATH=src $(PYTHON) benchmarks/soak_fleet.py --seconds 30

examples:
	@for f in examples/*.py; do \
		echo "== $$f"; \
		$(PYTHON) $$f > /dev/null && echo OK || exit 1; \
	done

results:
	$(PYTHON) -m pytest tests/ 2>&1 | tee test_output.txt
	$(PYTHON) -m pytest benchmarks/ --benchmark-only 2>&1 | tee bench_output.txt

clean:
	rm -rf .pytest_cache .hypothesis benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
