"""Bit-level signal values and symbol encoders for the hardware model.

The Fig. 5 datapath works on binary words: the F-RAM/G-RAM address is the
concatenation of the encoded input and the encoded current state, and the
data words are encoded next-state/output values.  :class:`BitVector` is a
fixed-width two's-free unsigned word with slicing and concatenation, and
:class:`SymbolEncoder` binds the symbolic FSM view to the binary one via
:class:`~repro.core.alphabet.Alphabet` codes.
"""

from __future__ import annotations

from typing import Iterable, Tuple, Union

from ..core.alphabet import Alphabet, Symbol


class BitVector:
    """Immutable fixed-width unsigned binary word (MSB-first rendering).

    >>> BitVector(5, width=4)
    BitVector('0101')
    >>> (BitVector(2, 2) @ BitVector(1, 1)).value
    5
    >>> BitVector(6, 3)[0]
    1
    """

    __slots__ = ("_value", "_width")

    def __init__(self, value: int, width: int):
        if width < 1:
            raise ValueError("width must be positive")
        if not 0 <= value < (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value = value
        self._width = width

    @classmethod
    def from_bits(cls, bits: Iterable[int]) -> "BitVector":
        """Build from an MSB-first bit iterable."""
        bits = tuple(bits)
        value = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"non-binary bit {bit!r}")
            value = (value << 1) | bit
        return cls(value, len(bits))

    @property
    def value(self) -> int:
        """The word interpreted as an unsigned integer."""
        return self._value

    @property
    def width(self) -> int:
        """The word width in bits."""
        return self._width

    @property
    def bits(self) -> Tuple[int, ...]:
        """MSB-first tuple of bits."""
        return tuple(
            (self._value >> shift) & 1
            for shift in range(self._width - 1, -1, -1)
        )

    def __matmul__(self, other: "BitVector") -> "BitVector":
        """Concatenation: ``self`` becomes the high bits."""
        return BitVector(
            (self._value << other._width) | other._value,
            self._width + other._width,
        )

    def __getitem__(self, index: Union[int, slice]) -> Union[int, "BitVector"]:
        bits = self.bits
        if isinstance(index, slice):
            return BitVector.from_bits(bits[index])
        return bits[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return (self._value, self._width) == (other._value, other._width)

    def __hash__(self) -> int:
        return hash((self._value, self._width))

    def __str__(self) -> str:
        return format(self._value, f"0{self._width}b")

    def __repr__(self) -> str:
        return f"BitVector('{self}')"


class SymbolEncoder:
    """Bidirectional symbol ↔ :class:`BitVector` mapping for one alphabet."""

    def __init__(self, alphabet: Alphabet):
        self.alphabet = alphabet

    @property
    def width(self) -> int:
        """Code width in bits."""
        return self.alphabet.width

    def encode(self, symbol: Symbol) -> BitVector:
        """Encode a symbol as its canonical code word."""
        return BitVector(self.alphabet.index(symbol), self.alphabet.width)

    def decode(self, word: BitVector) -> Symbol:
        """Decode a code word; raises ``ValueError`` on garbage codes."""
        if word.width != self.alphabet.width:
            raise ValueError(
                f"word width {word.width} != alphabet width {self.alphabet.width}"
            )
        if word.value >= len(self.alphabet):
            raise ValueError(f"code {word.value} names no symbol")
        return self.alphabet.symbol(word.value)


def ram_address(input_word: BitVector, state_word: BitVector) -> BitVector:
    """The F-RAM/G-RAM address: encoded input concatenated with state.

    Matches Fig. 5, where "the address of the memory blocks F-RAM and
    G-RAM depend on the external input i and the current state s".
    """
    return input_word @ state_word
