"""The ``repro serve`` subcommand: bind, serve frames, exit codes."""

import asyncio
import os
import re
import socket
import subprocess
import sys

import pytest

from repro.cli import main


class TestServeCommand:
    def test_serves_for_duration_then_exits_zero(self, capsys):
        code = main([
            "serve", "--duration", "0.2", "--workers", "1",
            "--obs-port", "0",
        ])
        out = capsys.readouterr().out
        assert code == 0
        assert "ingest: listening on 127.0.0.1:" in out
        assert "obs: http://127.0.0.1:" in out

    def test_bind_failure_exits_two(self, capsys):
        blocker = socket.socket()
        blocker.bind(("127.0.0.1", 0))
        blocker.listen(1)
        try:
            port = blocker.getsockname()[1]
            code = main([
                "serve", "--port", str(port), "--duration", "0.2",
                "--workers", "1",
            ])
        finally:
            blocker.close()
        assert code == 2
        assert "error: cannot bind" in capsys.readouterr().err

    def test_unknown_workload_exits_two(self, capsys):
        code = main(["serve", "--workload", "no/such-pair",
                     "--duration", "0.1"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_end_to_end_over_the_socket(self):
        """Launch the real process, speak the frame protocol to it."""
        from repro.aio.frames import read_frame, write_frame

        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in ("src", env.get("PYTHONPATH", "")) if p
        )
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--duration", "20", "--workers", "1"],
            stdout=subprocess.PIPE, text=True, env=env,
        )
        try:
            banner = proc.stdout.readline()
            match = re.search(r"listening on ([\d.]+):(\d+)", banner)
            assert match, banner
            host, port = match.group(1), int(match.group(2))

            async def run():
                reader, writer = await asyncio.open_connection(host, port)
                await write_frame(writer, {
                    "op": "submit", "id": 1, "key": "c",
                    "symbols": ["1", "0", "1", "1"],
                })
                reply = await read_frame(reader)
                writer.close()
                return reply

            reply = asyncio.run(run())
            assert reply["ok"] is True
            assert reply["id"] == 1
            assert len(reply["outputs"]) == 4
        finally:
            proc.terminate()
            proc.wait(timeout=10)
