"""Async ingestion plane benchmark: connection scaling + ring vs pipe.

Measures two things and records them as the ``"aio"`` section of
``BENCH_fleet_throughput.json`` (merged into the existing document so
``make bench-fleet`` results survive):

* **connection scaling** — one :class:`repro.aio.IngestServer` on one
  event loop, serving 1 / 8 / 32 concurrent frame-protocol
  connections.  The plane's claim is that connections cost pending
  futures, not threads: frames/sec should hold (or grow with request
  overlap) as connections multiply, and the loop must never refuse a
  connection.
* **ring vs pipe round-trip latency** — the same worker session serving
  the same small ``serve`` frames through the shared-memory frame ring
  (the hot path) and through pipe+pickle (``REPRO_DISABLE_RING=1``,
  the fallback and the pre-ring baseline).  The gate asserts the ring
  at or below ``RING_GATE_RATIO`` of the pipe's median when the host
  has the CPUs for the ring's spin phase to make sense; on smaller
  hosts the JSON records the measurement and the reason the gate was
  skipped, exactly like the process-scaling gate next to it.

Run with ``make bench-aio``.
"""

from __future__ import annotations

import asyncio
import json
import os
import pathlib
import statistics
import sys
import time

from repro.aio import IngestServer
from repro.aio.frames import read_frame, write_frame
from repro.fleet import FSMFleet
from repro.procfleet import ControlBlock, ShmTableBackend
from repro.procfleet.session import WorkerSession
from repro.workloads.suite import suite_pair, traffic_words

WORKLOAD = "ctrl/pattern-1011-to-0110"
CONNECTION_COUNTS = (1, 8, 32)
FRAMES_PER_CONNECTION = 40
BATCH = 24
SEED = 0

#: Ring-vs-pipe measurement: per-request round-trips of one small
#: batch — the frame class the ring exists for.
LATENCY_REQUESTS = 400
LATENCY_BATCH = 16
RING_GATE_RATIO = 0.7
#: The ring's spin phase needs the parent and the worker on their own
#: cores; below this the measurement gates on the host, not the code.
RING_GATE_CPUS = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


# -- connection scaling ----------------------------------------------------

async def _drive_connection(address, key, words) -> None:
    reader, writer = await asyncio.open_connection(*address)
    try:
        for index, word in enumerate(words):
            await write_frame(writer, {
                "op": "submit", "id": index, "key": key,
                "symbols": list(word),
            })
            reply = await read_frame(reader)
            assert reply["ok"] and reply["id"] == index, reply
    finally:
        writer.close()


def _run_connections(n_connections: int) -> dict:
    source, _target = suite_pair(WORKLOAD)
    words = traffic_words(
        source, FRAMES_PER_CONNECTION, BATCH, seed=SEED
    )
    fleet = FSMFleet(
        source,
        n_workers=4,
        queue_depth=max(64, 2 * n_connections),
        name=f"bench-aio-{n_connections}c",
    )

    async def run() -> float:
        async with IngestServer(fleet) as server:
            started = time.perf_counter()
            await asyncio.gather(*[
                _drive_connection(server.address, f"conn-{i}", words)
                for i in range(n_connections)
            ])
            return time.perf_counter() - started

    elapsed = asyncio.run(run())
    totals = fleet.totals()
    fleet.close()
    frames = n_connections * FRAMES_PER_CONNECTION
    assert totals.batches_ok >= frames
    return {
        "connections": n_connections,
        "frames_per_connection": FRAMES_PER_CONNECTION,
        "batch": BATCH,
        "elapsed_s": round(elapsed, 4),
        "frames_per_sec": round(frames / elapsed, 1),
        "steps_per_sec": round(frames * BATCH / elapsed, 1),
    }


# -- ring vs pipe latency --------------------------------------------------

def _run_latency(disable_ring: bool) -> dict:
    source, _target = suite_pair(WORKLOAD)
    words = traffic_words(source, LATENCY_REQUESTS, LATENCY_BATCH, seed=SEED)
    if disable_ring:
        os.environ["REPRO_DISABLE_RING"] = "1"
    else:
        os.environ.pop("REPRO_DISABLE_RING", None)
    ctl = ControlBlock.create(1)
    session = WorkerSession(ctl, slot=0, label="bench")
    try:
        backend = ShmTableBackend(source, session)
        backend.run_batch(list(words[0]))  # warm: seed, attach, spawn
        samples = []
        for word in words:
            started = time.perf_counter()
            backend.run_batch(list(word))
            samples.append(time.perf_counter() - started)
        transport = "pipe" if disable_ring else "ring"
        expected = (0, LATENCY_REQUESTS + 1) if disable_ring else \
            (LATENCY_REQUESTS + 1, 0)
        assert (session.ring_requests, session.pipe_requests) == expected, (
            transport, session.ring_requests, session.pipe_requests
        )
    finally:
        session.close()
        ctl.close()
        os.environ.pop("REPRO_DISABLE_RING", None)
    return {
        "transport": transport,
        "requests": LATENCY_REQUESTS,
        "batch": LATENCY_BATCH,
        "p50_us": round(statistics.median(samples) * 1e6, 1),
        "p90_us": round(
            statistics.quantiles(samples, n=10)[-1] * 1e6, 1
        ),
        "mean_us": round(statistics.fmean(samples) * 1e6, 1),
    }


def main() -> int:
    connections = [_run_connections(n) for n in CONNECTION_COUNTS]
    ring = _run_latency(disable_ring=False)
    pipe = _run_latency(disable_ring=True)
    ratio = round(ring["p50_us"] / pipe["p50_us"], 3)

    cpus = _cpus()
    gated = cpus >= RING_GATE_CPUS
    section = {
        "note": (
            "asyncio ingestion plane: frame-protocol connections on one "
            "event loop in front of a thread fleet, and the procfleet "
            "request transport measured ring vs pipe on one session"
        ),
        "connection_scaling": connections,
        "ring_vs_pipe": {
            "ring": ring,
            "pipe": pipe,
            "ring_over_pipe_p50": ratio,
            "cpus": cpus,
            "gate": {
                "target": RING_GATE_RATIO,
                "asserted": gated,
                **(
                    {}
                    if gated
                    else {
                        "skip_reason": (
                            f"host exposes {cpus} CPU(s); the ring's "
                            "spin phase needs the parent and worker on "
                            f"their own cores (>= {RING_GATE_CPUS}) for "
                            "latency to be a property of the transport"
                        )
                    }
                ),
            },
        },
    }

    out = pathlib.Path(__file__).resolve().parent.parent / (
        "BENCH_fleet_throughput.json"
    )
    document = json.loads(out.read_text()) if out.exists() else {}
    document["aio"] = section
    out.write_text(json.dumps(document, indent=2) + "\n")
    print(json.dumps(section, indent=2))

    slowest = min(row["frames_per_sec"] for row in connections)
    ok = slowest > 0 and all(
        row["frames_per_sec"] > 0 for row in connections
    )
    if gated:
        ok = ok and ratio <= RING_GATE_RATIO
        ring_verdict = f"{ratio}x pipe p50 (target <= {RING_GATE_RATIO})"
    else:
        ring_verdict = (
            f"{ratio}x pipe p50 (gate skipped: {cpus} CPU(s) < "
            f"{RING_GATE_CPUS})"
        )
    print(
        f"\nconnection scaling {CONNECTION_COUNTS[0]}->"
        f"{CONNECTION_COUNTS[-1]}: "
        f"{connections[0]['frames_per_sec']} -> "
        f"{connections[-1]['frames_per_sec']} frames/sec; "
        f"ring latency {ring_verdict}: {'OK' if ok else 'FAILED'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
