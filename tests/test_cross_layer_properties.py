"""Cross-layer property tests: model ↔ hardware ↔ formats agree.

These properties tie independent subsystems together on random inputs:

* the Def. 2.2 model machine and the bit-level datapath execute any
  reconfiguration schedule identically;
* KISS2 serialisation round-trips behaviour for any bit-symbol machine;
* scrubbing repairs any random corruption, certified by conformance
  testing;
* the self-reconfigurable model and hardware agree on triggered runs.
"""

import random as _random

from hypothesis import given, settings, strategies as st

from repro.core.jsr import jsr_program
from repro.core.minimize import minimize
from repro.core.reconfigurable import SelfReconfigurableFSM, Trigger
from repro.core.verify import verify_hardware
from repro.hw.faults import corrupted_entries, inject_upset, scrub
from repro.hw.machine import HardwareFSM
from repro.hw.reconfigurator import SelfReconfigurableHardware
from repro.io.kiss import dumps, loads
from repro.workloads.mutate import mutate_target
from repro.workloads.random_fsm import random_fsm


@st.composite
def bit_machines(draw, max_state_bits=3):
    """Random machines whose symbols are bit strings (KISS-compatible)."""
    n_states = draw(st.integers(2, 2 ** max_state_bits))
    machine = random_fsm(
        n_states=n_states,
        n_inputs=draw(st.sampled_from([2, 4])),
        n_outputs=draw(st.sampled_from([2, 4])),
        seed=draw(st.integers(0, 3000)),
    )
    in_width = max(1, (len(machine.inputs) - 1).bit_length())
    out_width = max(1, (len(machine.outputs) - 1).bit_length())
    in_map = {
        a: format(idx, f"0{in_width}b")
        for idx, a in enumerate(machine.inputs)
    }
    out_map = {
        o: format(idx, f"0{out_width}b")
        for idx, o in enumerate(machine.outputs)
    }
    from repro.core.fsm import FSM, Transition

    return FSM(
        [in_map[a] for a in machine.inputs],
        [out_map[o] for o in machine.outputs],
        machine.states,
        machine.reset_state,
        [
            Transition(in_map[t.input], t.source, t.target, out_map[t.output])
            for t in machine.transitions()
        ],
        name=machine.name,
    )


@settings(max_examples=30, deadline=None)
@given(bit_machines())
def test_kiss_roundtrip_preserves_behaviour(machine):
    again = loads(dumps(machine))
    assert again.behaviourally_equivalent(machine)
    # and a second roundtrip is textually stable
    assert dumps(loads(dumps(machine))) == dumps(again)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2000), st.integers(1, 4), st.integers(0, 500))
def test_scrubbing_repairs_any_corruption(seed, n_upsets, upset_seed):
    machine = random_fsm(n_states=6, seed=seed)
    hw = HardwareFSM(machine)
    for k in range(n_upsets):
        inject_upset(hw, seed=upset_seed + 31 * k)
    scrub(hw, machine)
    assert hw.realises(machine)
    assert not corrupted_entries(hw, machine)
    assert verify_hardware(hw, machine).passed


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2000), st.integers(0, 2000),
       st.lists(st.integers(0, 3), min_size=1, max_size=15))
def test_self_reconf_model_and_hardware_agree(seed, mut_seed, raw_word):
    source = random_fsm(n_states=5, seed=seed)
    target = mutate_target(source, 3, seed=mut_seed, name="tgt")
    program = jsr_program(source, target)
    trigger_state = source.states[1]
    trigger_input = source.inputs[0]

    def predicate(state, i):
        return state == trigger_state and i == trigger_input

    model = SelfReconfigurableFSM(
        source, [Trigger(predicate, program, name="t")]
    )
    fired = []

    def one_shot_rule(s, i):
        # the model's Trigger is once-only; mirror that statefully here
        if not fired and predicate(s, i):
            fired.append(True)
            return "t"
        return None

    hardware = SelfReconfigurableHardware.build(
        source, {"t": program}, rules=[one_shot_rule]
    )
    word = [source.inputs[v % len(source.inputs)] for v in raw_word]
    # pad so any armed replay completes
    word += [source.inputs[0]] * (len(program) + 2)
    model_out = model.run(word)
    hw_out = hardware.run(word)
    assert [flag for _o, flag in model_out] == [f for _o, f in hw_out]
    # compare outputs only on normal-mode cycles (reconf outputs are
    # don't-cares, but our two implementations emit the same anyway for
    # non-reset rows; reset rows differ by convention)
    for (mo, mf), (ho, hf) in zip(model_out, hw_out):
        if not mf:
            assert mo == ho
    # afterwards both realise the same machine
    assert model.machine.realises(target) == hardware.datapath.realises(target)


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2000))
def test_minimize_then_verify_on_hardware(seed):
    machine = random_fsm(n_states=7, n_outputs=2, seed=seed)
    minimal = minimize(machine)
    hw = HardwareFSM(minimal)
    # the minimal machine's hardware passes the ORIGINAL machine's suite
    assert verify_hardware(hw, machine).passed


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 6), st.integers(0, 500))
def test_held_karp_matches_brute_force(n_cities, seed):
    """The DP solution equals the exhaustive permutation minimum."""
    import itertools

    from repro.analysis.tsp import held_karp_path

    rng = _random.Random(seed)
    matrix = [
        [0 if i == j else rng.randint(0, 9) for j in range(n_cities)]
        for i in range(n_cities)
    ]
    start_costs = [rng.randint(0, 9) for _ in range(n_cities)]
    dp_cost, dp_order = held_karp_path(matrix, start_costs)
    best = min(
        start_costs[perm[0]]
        + sum(matrix[a][b] for a, b in zip(perm, perm[1:]))
        for perm in itertools.permutations(range(n_cities))
    )
    assert dp_cost == best
    walked = start_costs[dp_order[0]] + sum(
        matrix[a][b] for a, b in zip(dp_order, dp_order[1:])
    )
    assert walked == dp_cost


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2000), st.integers(0, 6), st.integers(0, 2000))
def test_program_serialisation_roundtrip(seed, n_deltas, mut_seed):
    from repro.io import program_io

    source = random_fsm(n_states=5, seed=seed)
    capacity = len(source.inputs) * len(source.states)
    target = mutate_target(source, min(n_deltas, capacity), seed=mut_seed)
    program = jsr_program(source, target)
    again = program_io.loads(program_io.dumps(program))
    assert [str(s) for s in again] == [str(s) for s in program]
    assert again.is_valid()
