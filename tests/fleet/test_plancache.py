"""PlanCache: fingerprint-keyed memoisation, concurrency, chunk order."""

import threading

from repro.core.fsm import FSM
from repro.core.incremental import chunks_to_program, incremental_chunks
from repro.core.jsr import jsr_program
from repro.fleet import PlanCache, order_chunks
from repro.workloads.library import ones_detector, zeros_detector
from repro.workloads.mutate import grow_target
from repro.workloads.random_fsm import random_fsm


def renamed(machine, suffix="_v2"):
    """A structurally-identical machine under a different name."""
    return FSM(
        machine.inputs,
        machine.outputs,
        machine.states,
        machine.reset_state,
        machine.table,
        name=machine.name + suffix,
    )


class CountingSynthesiser:
    def __init__(self):
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, source, target):
        with self._lock:
            self.calls += 1
        return jsr_program(source, target)


class TestProgramCache:
    def test_concurrent_misses_synthesise_once(self):
        synth = CountingSynthesiser()
        cache = PlanCache(synthesiser=synth)
        source, target = ones_detector(), zeros_detector()
        results = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait(timeout=10)
            results.append(cache.program(source, target))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert synth.calls == 1
        assert len(results) == 8
        assert all(p is results[0] for p in results)
        info = cache.cache_info()["programs"]
        assert info["misses"] == 1
        assert info["hits"] == 7

    def test_renamed_machine_shares_entry(self):
        synth = CountingSynthesiser()
        cache = PlanCache(synthesiser=synth)
        source, target = ones_detector(), zeros_detector()
        first = cache.program(source, target)
        second = cache.program(renamed(source), renamed(target))
        assert first is second
        assert synth.calls == 1

    def test_failure_not_cached(self):
        calls = []

        def flaky(source, target):
            calls.append(1)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return jsr_program(source, target)

        cache = PlanCache(synthesiser=flaky)
        source, target = ones_detector(), zeros_detector()
        try:
            cache.program(source, target)
        except RuntimeError:
            pass
        assert cache.program(source, target).is_valid()
        assert len(calls) == 2


class TestChunkCache:
    def test_chunks_memoised(self):
        cache = PlanCache(synthesiser="jsr")
        source, target = ones_detector(), zeros_detector()
        first = cache.chunks(source, target)
        second = cache.chunks(source, target)
        assert first is second
        info = cache.cache_info()["chunks"]
        assert info == {"entries": 1, "hits": 1, "misses": 1}

    def test_concurrent_chunk_requests_compute_once(self):
        cache = PlanCache(synthesiser="jsr")
        source, target = ones_detector(), zeros_detector()
        results = []
        barrier = threading.Barrier(6)

        def worker():
            barrier.wait(timeout=10)
            results.append(cache.chunks(source, target))

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert all(c is results[0] for c in results)
        assert cache.cache_info()["chunks"]["misses"] == 1

    def test_distinct_i0_distinct_entries(self):
        cache = PlanCache(synthesiser="jsr")
        source, target = ones_detector(), zeros_detector()
        cache.chunks(source, target, i0=target.inputs[0])
        cache.chunks(source, target, i0=target.inputs[1])
        assert cache.cache_info()["chunks"]["entries"] == 2


class TestOrderChunks:
    def test_ordering_preserves_validity(self):
        source = random_fsm(n_states=5, seed=3)
        target = grow_target(source, 2, seed=3)
        ordered = order_chunks(
            incremental_chunks(source, target), source, target
        )
        assert chunks_to_program(ordered, source, target).is_valid()

    def test_new_state_rows_come_first(self):
        source = random_fsm(n_states=5, seed=3)
        target = grow_target(source, 2, seed=3)
        new_states = set(target.states) - set(source.states)
        ordered = order_chunks(
            incremental_chunks(source, target), source, target
        )
        phases = [
            0 if (c.delta is not None and c.delta.source in new_states)
            else 1
            for c in ordered
        ]
        assert phases == sorted(phases)

    def test_no_growth_keeps_order(self):
        source, target = ones_detector(), zeros_detector()
        chunks = incremental_chunks(source, target)
        assert order_chunks(chunks, source, target) == list(chunks)


class TestOptLevelKeying:
    def _pair(self):
        from repro.workloads.library import sequence_detector

        return sequence_detector("101"), sequence_detector("10101")

    def test_levels_are_separate_entries(self):
        source, target = self._pair()
        o0 = PlanCache(synthesiser="jsr", opt_level="O0")
        o2 = PlanCache(synthesiser="jsr", opt_level="O2")
        p0 = o0.program(source, target)
        p2 = o2.program(source, target)
        assert len(p2) <= len(p0)
        assert "opt" not in p0.meta
        assert p2.meta["opt"]["level"] == "O2"

    def test_same_level_hits(self):
        source, target = self._pair()
        cache = PlanCache(synthesiser="jsr", opt_level="O2")
        first = cache.program(source, target)
        second = cache.program(source, target)
        assert first is second
        assert cache.cache_info()["programs"]["hits"] == 1

    def test_chunks_keyed_by_level(self):
        source, target = self._pair()
        o0 = PlanCache(synthesiser="jsr", opt_level="O0")
        o2 = PlanCache(synthesiser="jsr", opt_level="O2")
        c0 = o0.chunks(source, target)
        c2 = o2.chunks(source, target)
        writes = lambda cs: sum(  # noqa: E731
            1 for c in cs for s in c.steps if s.kind.writes
        )
        assert writes(c2) < writes(c0)
        # both plans still migrate
        assert chunks_to_program(c0, source, target).is_valid()
        assert chunks_to_program(c2, source, target).is_valid()

    def test_optimized_chunks_memoised(self):
        source, target = self._pair()
        cache = PlanCache(synthesiser="jsr", opt_level="O2")
        first = cache.chunks(source, target)
        second = cache.chunks(source, target)
        assert first is second
        assert cache.cache_info()["chunks"]["hits"] == 1

    def test_spelled_levels_normalised(self):
        cache = PlanCache(synthesiser="jsr", opt_level="-o2")
        assert cache.opt_level == "O2"
