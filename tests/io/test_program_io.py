"""Unit tests for JSON program serialisation."""

import io
import json

import pytest

from repro.core.ea import EAConfig, ea_program
from repro.core.jsr import jsr_program
from repro.core.program import StepKind
from repro.io.program_io import dump, dumps, load, loads, program_to_json
from repro.workloads.library import fig6_m, fig6_m_prime
from repro.workloads.mutate import workload_pair


def sample_program():
    return jsr_program(fig6_m(), fig6_m_prime())


class TestRoundtrip:
    def test_steps_bit_exact(self):
        program = sample_program()
        again = loads(dumps(program))
        assert [str(s) for s in again] == [str(s) for s in program]
        assert again.method == "jsr"

    def test_machines_roundtrip(self):
        again = loads(dumps(sample_program()))
        assert again.source == fig6_m()
        assert again.target == fig6_m_prime()

    def test_loaded_program_replays(self):
        assert loads(dumps(sample_program())).is_valid()

    def test_ea_program_roundtrip(self):
        src, tgt = workload_pair(7, 4, seed=3)
        program = ea_program(
            src, tgt, config=EAConfig(population_size=16, generations=10,
                                      seed=0)
        )
        again = loads(dumps(program))
        assert len(again) == len(program)
        assert again.is_valid()

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "prog.json")
        dump(sample_program(), path)
        assert load(path).is_valid()

    def test_stream_roundtrip(self):
        buffer = io.StringIO()
        dump(sample_program(), buffer)
        buffer.seek(0)
        assert load(buffer).is_valid()


class TestValidation:
    def test_corrupted_steps_rejected(self):
        data = program_to_json(sample_program())
        # sabotage: drop the final repair + reset
        data["steps"] = data["steps"][:-2]
        with pytest.raises(ValueError, match="failed replay"):
            loads(json.dumps(data))

    def test_validation_can_be_skipped(self):
        data = program_to_json(sample_program())
        data["steps"] = data["steps"][:-2]
        program = loads(json.dumps(data), validate=False)
        assert not program.is_valid()

    def test_unknown_format_version(self):
        data = program_to_json(sample_program())
        data["format"] = 99
        with pytest.raises(ValueError, match="unsupported"):
            loads(json.dumps(data))

    def test_step_kinds_preserved(self):
        again = loads(dumps(sample_program()))
        kinds = {s.kind for s in again}
        assert StepKind.WRITE_TEMPORARY in kinds
        assert StepKind.WRITE_REPAIR in kinds
        assert StepKind.RESET in kinds


class TestOptMetadata:
    """v2 files round-trip the pass-pipeline provenance; v1 still loads."""

    def _optimized(self):
        from repro.core.passes import optimise_program

        program, _report = optimise_program(sample_program(), "O2")
        return program

    def test_opt_block_roundtrips(self):
        program = self._optimized()
        again = loads(dumps(program))
        assert again.meta["opt"] == program.meta["opt"]
        assert again.meta["opt"]["level"] == "O2"
        assert again == program

    def test_format_version_is_2(self):
        data = program_to_json(self._optimized())
        assert data["format"] == 2
        assert data["opt"]["level"] == "O2"

    def test_unoptimized_program_has_no_opt_block(self):
        data = program_to_json(sample_program())
        assert "opt" not in data

    def test_v1_files_still_load(self):
        # a pre-optimization file: no "opt" block, format 1
        data = program_to_json(sample_program())
        data["format"] = 1
        data.pop("opt", None)
        from repro.io.program_io import program_from_json

        program = program_from_json(data)
        assert program.is_valid()
        assert "opt" not in program.meta

    def test_v1_text_fixture_loads(self):
        # belt and braces: a literal v1 JSON document, as written by the
        # previous release, parsed from text
        text = dumps(sample_program())
        data = json.loads(text)
        data["format"] = 1
        program = loads(json.dumps(data))
        assert program.is_valid()
