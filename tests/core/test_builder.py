"""Unit tests for repro.core.builder (the ProgramBuilder IR)."""

import pytest

from repro.core.builder import BuildError, ProgramBuilder
from repro.core.delta import delta_transitions, table_realises
from repro.core.fsm import Transition
from repro.core.program import StepKind
from repro.workloads.library import (
    fig6_m,
    fig6_m_prime,
    ones_detector,
    sequence_detector,
    zeros_detector,
)


class TestBuilderBasics:
    def test_starts_in_source_reset_state(self):
        builder = ProgramBuilder(fig6_m(), fig6_m_prime())
        assert builder.state == fig6_m().reset_state
        assert builder.steps == ()
        assert builder.write_count == 0

    def test_reset_moves_to_target_reset(self):
        source, target = fig6_m(), fig6_m_prime()
        builder = ProgramBuilder(source, target)
        builder.reset()
        assert builder.state == target.reset_state
        assert builder.steps[-1].kind is StepKind.RESET

    def test_traverse_follows_live_table(self):
        source, target = ones_detector(), zeros_detector()
        builder = ProgramBuilder(source, target)
        i = source.inputs[0]
        state = builder.state
        builder.traverse(
            Transition(
                i, state, source.next_state(i, state), source.output(i, state)
            )
        )
        assert builder.state == source.next_state(i, state)

    def test_write_moves_and_writes(self):
        source, target = fig6_m(), fig6_m_prime()
        delta = delta_transitions(source, target)[0]
        builder = ProgramBuilder(source, target)
        builder.reset()
        jump = Transition(
            target.inputs[0],
            builder.state,
            delta.source,
            target.output(target.inputs[0], builder.state),
        )
        builder.write_temporary(jump)
        assert builder.state == delta.source
        assert builder.table[jump.entry] == (jump.target, jump.output)
        assert builder.write_count == 1

    def test_build_produces_valid_program(self):
        source, target = fig6_m(), fig6_m_prime()
        builder = ProgramBuilder(source, target, method="by-hand")
        builder.reset()
        for delta in _jsr_order(builder, source, target):
            pass
        program = builder.build()
        assert program.method == "by-hand"
        assert program.is_valid()

    def test_build_meta_is_attached(self):
        source, target = fig6_m(), fig6_m_prime()
        builder = ProgramBuilder(source, target)
        builder.reset()
        for delta in _jsr_order(builder, source, target):
            pass
        program = builder.build(meta={"origin": "test"})
        assert program.meta["origin"] == "test"


def _jsr_order(builder, source, target):
    """Drive a builder through a simple jump-and-repair loop."""
    i0 = target.inputs[0]
    s0 = target.reset_state
    home = Transition(i0, s0, target.next_state(i0, s0), target.output(i0, s0))
    for delta in delta_transitions(source, target):
        if builder.state != s0:
            builder.reset()
        if delta.source == s0:
            builder.write_delta(delta)
        else:
            builder.write_temporary(
                Transition(i0, s0, delta.source, home.output)
            )
            builder.write_delta(delta)
        yield delta
    realised, _mismatches = table_realises(builder.table, target)
    if not realised:
        if builder.state != s0:
            builder.reset()
        builder.write_repair(home)
    if builder.state != s0:
        builder.reset()


class TestBuilderPhysics:
    def test_illegal_write_raises_builderror(self):
        source, target = fig6_m(), fig6_m_prime()
        builder = ProgramBuilder(source, target)
        builder.reset()
        other = next(
            s for s in target.states if s != builder.state
        )
        bad = Transition(target.inputs[0], other, other, target.outputs[0])
        with pytest.raises(BuildError):
            builder.write_delta(bad)

    def test_traverse_on_unwritten_entry_raises(self):
        source = sequence_detector("101")
        target = sequence_detector("10101")
        builder = ProgramBuilder(source, target)
        new_state = next(
            s for s in target.states if s not in set(source.states)
        )
        with pytest.raises(BuildError):
            builder.walk(
                [
                    Transition(
                        source.inputs[0],
                        builder.state,
                        new_state,
                        source.outputs[0],
                    )
                ]
            )

    def test_path_to_uses_live_table(self):
        source, target = fig6_m(), fig6_m_prime()
        builder = ProgramBuilder(source, target)
        for state in source.states:
            path = builder.path_to(state)
            assert path is not None
            builder2 = ProgramBuilder(source, target)
            builder2.walk(path)
            assert builder2.state == state

    def test_incomplete_build_is_invalid_but_builder_stays_usable(self):
        source, target = fig6_m(), fig6_m_prime()
        builder = ProgramBuilder(source, target)
        builder.reset()
        # build() freezes whatever has been emitted; completing the
        # migration is the caller's obligation, checked by replay.
        assert not builder.build().is_valid()
        for _ in _jsr_order(builder, source, target):
            pass
        assert builder.build().is_valid()


class TestSynthesisersUseBuilder:
    """All five synthesisers emit through the builder and stay valid."""

    @pytest.mark.parametrize("method", ["jsr", "ea", "greedy", "tsp", "optimal"])
    def test_methods_valid_on_fig6(self, method):
        from repro import api

        source, target = fig6_m(), fig6_m_prime()
        program = api.synthesise(
            source, target, options=api.Options(method=method)
        )
        assert program.is_valid()
