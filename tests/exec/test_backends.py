"""The built-in backends against the ExecutionBackend contract.

Commit semantics (a committed run fast-forwards the datapath, an
uncommitted one is a pure query), snapshot/restore with version-skew
detection, and — the staleness-invalidation paths the dispatcher relies
on — table views dying on ``SyncRAM.erase``, ``faults.erase_entry`` and
``faults.inject_upset``.
"""

import pytest

from repro.engine import CompiledFSM, EngineError, numpy_available
from repro.exec import (
    CycleBackend,
    ExecSnapshot,
    ExecutionBackend,
    StaleSnapshot,
    TableBackend,
    TableMiss,
    compile_tables,
)
from repro.hw.faults import erase_entry, inject_upset
from repro.hw.machine import HardwareFSM
from repro.hw.memory import UninitialisedRead
from repro.workloads.library import fig6_m, fig6_m_prime, ones_detector
from repro.workloads.suite import traffic_words

TABLE_BACKENDS = ["table-py"] + (
    ["table-numpy"] if numpy_available() else []
)


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_DISABLE_NUMPY", raising=False)


def _all_backends(hw):
    backends = [CycleBackend(hw)]
    backends += [
        TableBackend.from_hardware(hw, backend=name)
        for name in TABLE_BACKENDS
    ]
    return backends


class TestProtocolConformance:
    def test_builtins_satisfy_the_protocol(self):
        hw = HardwareFSM(ones_detector())
        for backend in _all_backends(hw):
            assert isinstance(backend, ExecutionBackend)


class TestCycleBackend:
    def test_step_clocks_the_netlist(self):
        fsm = ones_detector()
        backend = CycleBackend(HardwareFSM(fsm))
        word = ["1", "1", "0", "1"]
        assert [backend.step(s) for s in word] == fsm.run(word)
        assert backend.hardware.cycles == len(word)

    def test_committed_batch_advances_architectural_state(self):
        fsm = ones_detector()
        hw, ref = HardwareFSM(fsm), HardwareFSM(fsm)
        backend = CycleBackend(hw)
        word = ["1", "0", "1", "1"]
        run = backend.run_batch(word)
        assert run.outputs == ref.run(word)
        assert hw.state == ref.state
        assert hw.cycles == ref.cycles
        assert hw.state_visits == ref.state_visits

    def test_uncommitted_batch_is_a_pure_query(self):
        fsm = ones_detector()
        hw = HardwareFSM(fsm)
        backend = CycleBackend(hw)
        before = hw.state
        run = backend.run_batch(["1", "1"], commit=False)
        assert run.outputs == fsm.run(["1", "1"])
        assert hw.state == before  # architectural state untouched

    def test_uncommitted_batch_restores_even_when_a_symbol_raises(self):
        fsm = ones_detector()
        hw = HardwareFSM(fsm)
        erase_entry(hw, entry=("1", "S1"))
        backend = CycleBackend(hw)
        before = hw.state
        with pytest.raises(UninitialisedRead):
            backend.run_batch(["1", "1", "1"], commit=False)
        assert hw.state == before

    def test_explicit_start_state(self):
        fsm = ones_detector()
        backend = CycleBackend(HardwareFSM(fsm))
        run = backend.run_batch(["1"], start="S1", commit=False)
        assert run.outputs == [fsm.output("1", "S1")]

    def test_snapshot_restore_round_trip(self):
        fsm = ones_detector()
        hw = HardwareFSM(fsm)
        backend = CycleBackend(hw)
        snap = backend.snapshot()
        backend.run_batch(["1", "1"])
        assert hw.state != snap.state
        backend.restore(snap)
        assert hw.state == snap.state

    def test_restore_rejects_stale_snapshot(self):
        hw = HardwareFSM(ones_detector())
        backend = CycleBackend(hw)
        snap = backend.snapshot()
        erase_entry(hw, seed=0)  # bumps the table version
        with pytest.raises(StaleSnapshot, match="tables changed"):
            backend.restore(snap)

    def test_faults_raise_out_unwrapped(self):
        # The quarantine path needs the *hardware* error, not a wrapped
        # exec-layer one.
        hw = HardwareFSM(ones_detector())
        erase_entry(hw, entry=("1", "S0"))
        backend = CycleBackend(hw)
        with pytest.raises(UninitialisedRead):
            backend.step("1")

    def test_never_stale_against_its_own_hardware(self):
        hw = HardwareFSM(ones_detector())
        backend = CycleBackend(hw)
        erase_entry(hw, seed=0)
        assert not backend.is_stale(hw)        # reads the live tables
        assert backend.is_stale(HardwareFSM(ones_detector()))


@pytest.mark.parametrize("name", TABLE_BACKENDS)
class TestTableBackend:
    def test_name_and_capabilities_derived_from_kernel(self, name):
        hw = HardwareFSM(ones_detector())
        backend = TableBackend.from_hardware(hw, backend=name)
        assert backend.name == name
        assert backend.capabilities.batchable
        assert not backend.capabilities.cycle_accurate
        assert backend.capabilities.needs_numpy == (name == "table-numpy")

    def test_committed_batch_fast_forwards_the_datapath(self, name):
        fsm = ones_detector()
        hw, ref = HardwareFSM(fsm), HardwareFSM(fsm)
        backend = TableBackend.from_hardware(hw, backend=name)
        for word in traffic_words(fsm, 4, 6, seed=2):
            assert backend.run_batch(word).outputs == ref.run(word)
            assert hw.state == ref.state
        assert hw.cycles == ref.cycles
        assert hw.state_visits == ref.state_visits

    def test_uncommitted_batch_leaves_the_datapath_alone(self, name):
        fsm = ones_detector()
        hw = HardwareFSM(fsm)
        backend = TableBackend.from_hardware(hw, backend=name)
        before = (hw.state, hw.cycles)
        run = backend.run_batch(["1", "1", "0"], commit=False)
        assert run.outputs == fsm.run(["1", "1", "0"])
        assert (hw.state, hw.cycles) == before

    def test_miss_raised_before_the_hardware_is_touched(self, name):
        fsm = ones_detector()
        hw = HardwareFSM(fsm)
        backend = TableBackend.from_hardware(hw, backend=name)
        before = (hw.state, hw.cycles)
        with pytest.raises(TableMiss):
            backend.run_batch(["1", "no-such-symbol"])
        assert (hw.state, hw.cycles) == before

    def test_miss_is_an_engine_error(self, name):
        hw = HardwareFSM(ones_detector())
        backend = TableBackend.from_hardware(hw, backend=name)
        with pytest.raises(EngineError):
            backend.run_batch(["bogus"])

    def test_pure_fsm_tables_have_no_architectural_state(self, name):
        fsm = ones_detector()
        backend = TableBackend.from_fsm(fsm, backend=name)
        run = backend.run_batch(["1", "1"], start=fsm.reset_state)
        assert run.outputs == fsm.run(["1", "1"])
        snap = backend.snapshot()
        assert snap.state == fsm.reset_state
        backend.restore(snap)  # no hardware: restore is a no-op

    def test_snapshot_restore_round_trip(self, name):
        fsm = ones_detector()
        hw = HardwareFSM(fsm)
        backend = TableBackend.from_hardware(hw, backend=name)
        snap = backend.snapshot()
        backend.run_batch(["1", "1"])
        backend.restore(snap)
        assert hw.state == snap.state

    def test_restore_rejects_stale_snapshot(self, name):
        hw = HardwareFSM(ones_detector())
        backend = TableBackend.from_hardware(hw, backend=name)
        snap = backend.snapshot()
        erase_entry(hw, seed=0)
        with pytest.raises(StaleSnapshot):
            backend.restore(snap)

    def test_run_many_wraps_engine_errors(self, name):
        fsm = ones_detector()
        backend = TableBackend.from_fsm(fsm, backend=name)
        words = traffic_words(fsm, 3, 4, seed=1)
        runs = backend.run_many(words, start=fsm.reset_state)
        for run, word in zip(runs, words):
            assert run.outputs == fsm.run(word)
        with pytest.raises(TableMiss):
            backend.run_many([["bogus"]], start=fsm.reset_state)


@pytest.mark.parametrize("name", TABLE_BACKENDS)
class TestStalenessInvalidation:
    """Satellite coverage: every table-mutation path kills the view."""

    def test_sync_ram_erase_invalidates(self, name):
        hw = HardwareFSM(ones_detector())
        backend = TableBackend.from_hardware(hw, backend=name)
        assert not backend.is_stale()
        address = sorted(hw.f_ram.dump())[0]
        assert hw.f_ram.erase(address)
        assert backend.is_stale()
        assert backend.is_stale(hw)

    def test_faults_erase_entry_invalidates(self, name):
        hw = HardwareFSM(ones_detector())
        backend = TableBackend.from_hardware(hw, backend=name)
        erase_entry(hw, entry=("1", "S1"))
        assert backend.is_stale()

    def test_faults_inject_upset_invalidates(self, name):
        hw = HardwareFSM(ones_detector())
        backend = TableBackend.from_hardware(hw, backend=name)
        inject_upset(hw, seed=3)
        assert backend.is_stale()

    def test_explicit_invalidate_is_sticky(self, name):
        hw = HardwareFSM(ones_detector())
        backend = TableBackend.from_hardware(hw, backend=name)
        backend.invalidate(reason="replaced")
        # Sticky: nothing un-invalidates a view — even against its own
        # unchanged hardware the dispatcher must recompile.
        assert backend.is_stale()
        assert backend.is_stale(hw)


class TestCompileTables:
    def test_from_behavioural_fsm(self):
        compiled = compile_tables(ones_detector())
        assert isinstance(compiled, CompiledFSM)
        assert compiled.run_word(["1", "1"]).outputs == ["0", "1"]

    def test_from_hardware(self):
        source, target = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(source, target)
        compiled = compile_tables(hw)
        assert compiled.realises(source)

    def test_backend_spellings_and_aliases(self):
        for preference in ("table-py", "python"):
            compiled = compile_tables(ones_detector(), preference=preference)
            assert compiled.backend == "python"

    def test_rejects_the_cycle_backend(self):
        for preference in ("off", "cycle"):
            with pytest.raises(EngineError, match="engine mode 'off'"):
                compile_tables(ones_detector(), preference=preference)

    def test_rejects_unknown_machines(self):
        with pytest.raises(TypeError, match="expects an FSM"):
            compile_tables(42)

    def test_snapshot_dataclass_is_frozen(self):
        snap = ExecSnapshot(state="S0", table_version=1)
        with pytest.raises(AttributeError):
            snap.state = "S1"
