"""Cross-thread trace propagation through the serving fleet.

The contract under test: a trace context captured at
``FSMFleet.submit()`` is re-activated in the worker thread, so the
client's request span, the shard's ``fleet.serve`` span, the
dispatcher's ``exec.dispatch`` span and the engine's
``engine.run_batch`` span form ONE connected tree under one trace id —
and every journal event emitted while serving carries that trace id.
"""

import threading

from hypothesis import given, settings, strategies as st

from repro import obs
from repro.exec import Dispatcher
from repro.fleet import FSMFleet, MigrationScheduler
from repro.hw.machine import HardwareFSM
from repro.obs import journal as jr
from repro.obs.journal import migration_timeline
from repro.obs.tracing import TRACER, span
from repro.workloads.library import ones_detector, sequence_detector
from repro.workloads.suite import traffic_words


def _configure(**kwargs):
    obs.configure(**kwargs)


def _spans_by_name(name):
    return [s for s in TRACER.spans if s.name == name]


def _assert_tree_consistent(spans):
    """Every parented span points at a valid, same-trace, shallower span."""
    for record in spans:
        if record.parent is None:
            continue
        assert 0 <= record.parent < len(spans), record
        parent = spans[record.parent]
        assert parent.trace_id == record.trace_id, (record, parent)
        assert parent.depth == record.depth - 1, (record, parent)


class TestRequestTraceTree:
    def setup_method(self):
        _configure(tracing=True, journal=True)

    def teardown_method(self):
        _configure()

    def test_one_request_yields_one_connected_tree(self):
        machine = ones_detector()
        with FSMFleet(machine, n_workers=1, queue_depth=8) as fleet:
            with span("client.request") as root:
                got = fleet.submit("k", list("0110")).result(timeout=10)
        assert got == machine.run(list("0110"))

        spans = list(TRACER.spans)
        _assert_tree_consistent(spans)
        (client,) = _spans_by_name("client.request")
        assert client.parent is None

        (serve,) = _spans_by_name("fleet.serve")
        assert serve.trace_id == client.trace_id
        assert serve.parent == client.index
        assert serve.thread != client.thread  # crossed into the worker

        (dispatch,) = _spans_by_name("exec.dispatch")
        assert dispatch.trace_id == client.trace_id
        assert dispatch.parent == serve.index

        runs = _spans_by_name("engine.run_batch")
        assert runs, "the backend run must be traced"
        for run in runs:
            assert run.trace_id == client.trace_id
            assert run.parent == serve.index

        # The worker-side journal events joined the same trace.
        decisions = jr.JOURNAL.events(type=jr.DISPATCH_DECISION)
        serves = jr.JOURNAL.events(type=jr.SERVE_BATCH)
        assert decisions and serves
        for event in decisions + serves:
            assert event.trace_id == client.trace_id

    def test_untraced_submit_still_serves(self):
        # No client span, no active context: the worker opens a fresh
        # root trace rather than crashing or inheriting garbage.
        machine = ones_detector()
        with FSMFleet(machine, n_workers=1, queue_depth=8) as fleet:
            fleet.submit("k", list("10")).result(timeout=10)
        (serve,) = _spans_by_name("fleet.serve")
        assert serve.parent is None
        assert serve.trace_id


class TestThreadHammer:
    def setup_method(self):
        _configure(tracing=True, journal=True)

    def teardown_method(self):
        _configure()

    def test_eight_threads_every_span_parents_correctly(self):
        machine = ones_detector()
        n_threads, per_thread = 8, 6
        words = traffic_words(machine, n_threads * per_thread, 6, seed=11)
        errors = []

        with FSMFleet(machine, n_workers=4, queue_depth=64) as fleet:
            def client(tid):
                try:
                    for i in range(per_thread):
                        word = words[tid * per_thread + i]
                        # submit-and-wait: one request in flight per
                        # client, each under its own root span.
                        with span("client.request", client=tid):
                            got = fleet.submit((tid, i), word).result(
                                timeout=10
                            )
                        # Shards are long-lived machines (state carries
                        # across batches) — check shape, not values.
                        assert len(got) == len(word)
                except Exception as exc:  # surfaced after join
                    errors.append((tid, exc))

            threads = [
                threading.Thread(target=client, args=(tid,))
                for tid in range(n_threads)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
        assert not errors, errors

        spans = list(TRACER.spans)
        _assert_tree_consistent(spans)

        clients = _spans_by_name("client.request")
        assert len(clients) == n_threads * per_thread
        # Every request is its own root with a distinct trace id.
        assert all(c.parent is None for c in clients)
        client_traces = {c.trace_id for c in clients}
        assert len(client_traces) == len(clients)

        serves = _spans_by_name("fleet.serve")
        assert serves
        for serve in serves:
            # Every serve joined some client's trace, across threads.
            assert serve.parent is not None
            parent = spans[serve.parent]
            assert parent.name == "client.request"
            assert serve.trace_id in client_traces
            assert serve.thread != parent.thread

        for name in ("exec.dispatch", "engine.run_batch"):
            for record in _spans_by_name(name):
                assert record.parent is not None
                assert spans[record.parent].name == "fleet.serve"

        # Property (a), end to end: every dispatcher decision recorded
        # while serving carries the trace id of a causing request.
        decisions = jr.JOURNAL.events(type=jr.DISPATCH_DECISION)
        assert decisions
        for event in decisions:
            assert event.trace_id in client_traces


class TestDecisionTraceProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        ops=st.lists(
            st.sampled_from(["select", "migrating", "miss", "invalidate"]),
            min_size=1,
            max_size=12,
        )
    )
    def test_every_decision_event_carries_the_causing_trace(self, ops):
        # Property (a) in isolation: drive the dispatcher directly, one
        # fresh trace context per operation; every journal event the
        # operation emits must carry exactly that trace id.
        _configure(journal=True)
        try:
            machine = ones_detector()
            hw = HardwareFSM.for_migration(machine, machine)
            dispatcher = Dispatcher(mode="auto", shard="0")
            for op in ops:
                ctx = obs.new_trace()
                mark = jr.JOURNAL.next_seq
                with obs.context.activate(ctx):
                    if op == "select":
                        dispatcher.select(hw)
                    elif op == "migrating":
                        dispatcher.select(hw, migrating=True)
                    elif op == "miss":
                        dispatcher.miss(hw)
                    else:
                        dispatcher.invalidate(reason="test")
                emitted = jr.JOURNAL.events(since_seq=mark)
                assert emitted, op  # every op journals something
                for event in emitted:
                    assert event.trace_id == ctx.trace_id, (op, event)
        finally:
            _configure()


class TestMigrationTimelineProperty:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_live_rollout_reconstructs_zero_downtime(self, seed):
        # Property (c): a rolling migration under live traffic must be
        # reconstructable — from journal events alone — into a per-shard
        # timeline proving the zero-downtime window.
        _configure(journal=True)
        try:
            source = sequence_detector("1011")
            target = sequence_detector("0110")
            fleet = FSMFleet(
                source, n_workers=2, family=[target], queue_depth=256
            )
            try:
                common = [
                    i for i in source.inputs if i in set(target.inputs)
                ]
                words = traffic_words(source, 24, 8, seed=seed,
                                      inputs=common)
                holder = {}

                def rollout():
                    holder["report"] = MigrationScheduler(
                        fleet, stall_budget=12
                    ).rollout(target)

                thread = threading.Thread(target=rollout)
                futures = []
                for index, word in enumerate(words):
                    if index == 6:
                        thread.start()
                    futures.append(fleet.submit(index, word))
                thread.join(timeout=60)
                for future in futures:
                    assert future.result(timeout=10) is not None
                report = holder["report"]
            finally:
                fleet.close()

            timeline = migration_timeline(jr.JOURNAL.events())
            assert timeline.completed
            assert timeline.verified
            assert set(timeline.shards) == {"0", "1"}
            # The journal's reconstruction agrees with the scheduler's
            # own first-hand report.
            assert timeline.zero_downtime == report.zero_downtime
            assert timeline.zero_downtime  # and the rollout WAS clean
            for shard in timeline.shards.values():
                assert shard.migration_cycles > 0
                assert shard.rollbacks == 0
            rendered = timeline.render()
            assert "zero-downtime: True" in rendered
        finally:
            _configure()
