"""Unit tests for the text-table renderer."""

from repro.analysis.tables import format_series, format_table, paper_comparison


class TestFormatTable:
    def test_header_and_rule(self):
        text = format_table([{"a": 1, "b": 2}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert set(lines[1].replace(" ", "").replace("|", "")) == {"-"}

    def test_title(self):
        assert format_table([{"x": 1}], title="T2").splitlines()[0] == "T2"

    def test_missing_cells_dash(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text.splitlines()[2]

    def test_float_rounding(self):
        text = format_table([{"v": 3.14159}], float_digits=1)
        assert "3.1" in text and "3.14" not in text

    def test_explicit_column_order(self):
        text = format_table([{"b": 2, "a": 1}], columns=["a", "b"])
        assert text.splitlines()[0].startswith("a")

    def test_empty_rows(self):
        assert "(no rows)" in format_table([])
        assert format_table([], title="t").startswith("t")

    def test_alignment(self):
        text = format_table(
            [{"name": "x", "v": 1}, {"name": "longer", "v": 22}]
        )
        lines = text.splitlines()
        pipes = {line.index("|") for line in lines}
        assert len(pipes) == 1


class TestFormatSeries:
    def test_shared_axis(self):
        text = format_series(
            [1, 2, 3],
            {"jsr": [6, 9, 12], "ea": [3, 5, 7]},
            x_label="Td",
        )
        lines = text.splitlines()
        assert lines[0].split("|")[0].strip() == "Td"
        assert len(lines) == 2 + 3

    def test_short_series_padded(self):
        text = format_series([1, 2], {"y": [5]})
        assert "-" in text.splitlines()[-1]


class TestPaperComparison:
    def test_layout(self):
        text = paper_comparison(
            [{"artifact": "T2", "paper": ">50%", "measured": "53%"}],
            measured_key="measured",
            paper_key="paper",
        )
        header = text.splitlines()[1]
        assert header.split("|")[0].strip() == "artifact"
        assert "paper vs measured" in text.splitlines()[0]
