"""Span tracing: nested wall-time measurement with a JSONL exporter.

A *span* is one timed region of work — ``span("jsr.synthesise")`` around
a synthesiser call, ``span("fleet.serve")`` around one coalesced batch
run.  Spans nest: the tracer keeps a per-thread stack, so a full
``repro migrate`` run produces a readable trace tree (synthesise →
decode → hardware replay → conformance).

**Cross-thread parenting (v2).**  Every span carries a ``trace_id`` and
publishes itself as the active :class:`~repro.obs.context.TraceContext`
while open.  A thread whose local stack is empty parents its first span
to the *active context* instead of starting a fresh root — so a request
captured at ``FSMFleet.submit()`` and re-activated inside the worker
thread yields one connected tree spanning client thread → worker thread
→ dispatcher → engine batch.  Contexts decoded from a remote carrier
keep their trace id but never dereference the foreign span index.

Naming convention (see ``docs/observability.md``): spans are
``<subsystem>.<operation>`` in lowercase, e.g. ``ea.synthesise``,
``verify.conformance``, ``exec.dispatch``.  Attributes carry the
cardinal quantities of the operation (``|Td|``, generations, words).

Timing uses :func:`time.perf_counter`; a disabled tracer costs one
branch per span.  The span context manager is a plain class (not a
generator) so the enabled path stays cheap enough for serving loops.
The JSONL export writes one span per line so traces stream and
concatenate trivially; :func:`load_jsonl` reads them back and
:func:`render_tree` pretty-prints the nesting.
"""

from __future__ import annotations

import json
import threading
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, TextIO, Union

from . import context as _context


@dataclass
class SpanRecord:
    """One completed (or in-flight) span."""

    name: str
    index: int
    parent: Optional[int]
    depth: int
    start: float
    duration: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)
    trace_id: Optional[str] = None
    thread: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "index": self.index,
            "parent": self.parent,
            "depth": self.depth,
            "start": self.start,
            "duration": self.duration,
            "attrs": {k: _json_safe(v) for k, v in self.attrs.items()},
            "trace_id": self.trace_id,
            "thread": self.thread,
        }

    # -- TraceContext protocol --------------------------------------
    # An open SpanRecord doubles as the active trace context (the
    # tracer stores it in the context variable directly instead of
    # allocating a TraceContext per span): these properties satisfy
    # everything context consumers read — journal stamping, carrier
    # injection, cross-thread capture.
    @property
    def span_id(self) -> int:
        return self.index

    @property
    def remote(self) -> bool:
        return False

    @property
    def baggage(self) -> Dict[str, str]:
        return {}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        return cls(
            name=data["name"],
            index=data["index"],
            parent=data.get("parent"),
            depth=data.get("depth", 0),
            start=data.get("start", 0.0),
            duration=data.get("duration"),
            attrs=dict(data.get("attrs", {})),
            trace_id=data.get("trace_id"),
            thread=data.get("thread"),
        )


def _json_safe(value: Any) -> Any:
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return str(value)


class _NullSpan:
    """Stand-in yielded by a disabled tracer; absorbs attribute writes."""

    __slots__ = ()

    @property
    def attrs(self) -> Dict[str, Any]:
        return {}


_NULL_SPAN = _NullSpan()


#: The context variable holding the active trace context.  Accessed
#: directly (not via :func:`context.attach` / :func:`context.detach`)
#: because two extra function calls per span are measurable on the
#: serving hot path.
_CURRENT = _context._CURRENT
_get_ident = threading.get_ident


class _Span:
    """The context manager returned by :meth:`Tracer.span`.

    A plain class instead of ``@contextmanager`` — the generator
    machinery costs more than the whole span bookkeeping on the serving
    hot path — with the open/close logic inlined rather than delegated
    to tracer methods for the same reason.  While open, the span is the
    active trace context, so nested spans (same thread or a captured
    hand-off) and journal events attach to it.
    """

    __slots__ = ("_tracer", "_name", "_attrs", "_record", "_token", "_stack")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self._name = name
        self._attrs = attrs
        self._record: Optional[SpanRecord] = None
        self._token = None
        self._stack: Optional[List[SpanRecord]] = None

    def __enter__(self):
        tracer = self._tracer
        if not tracer.enabled:
            return _NULL_SPAN
        # Parent resolution runs outside the lock: the nesting stack is
        # thread-local, and the bounds check on a context-carried parent
        # index only ever *reads* the append-only span list.  The lock
        # covers just index assignment + append.
        local = tracer._local
        try:
            stack = local.stack
        except AttributeError:
            stack = local.stack = []
        spans = tracer.spans
        if stack:
            # Same-thread nesting: parent is the enclosing span.
            top = stack[-1]
            parent: Optional[int] = top.index
            depth = top.depth + 1
            trace_id = top.trace_id
        else:
            ctx = _CURRENT.get()
            if ctx is not None:
                # Cross-context hand-off: parent to the active context.
                # A remote context's span_id indexes another process's
                # span list — keep the trace id, drop the index.
                parent = (
                    ctx.span_id
                    if not ctx.remote
                    and ctx.span_id is not None
                    and 0 <= ctx.span_id < len(spans)
                    else None
                )
                depth = spans[parent].depth + 1 if parent is not None else 0
                trace_id = ctx.trace_id or _new_trace_id()
            else:
                parent = None
                depth = 0
                trace_id = _new_trace_id()
        # The attrs dict is the keyword dict built for this call —
        # owned by the record, not copied.
        record = SpanRecord(
            name=self._name,
            index=0,
            parent=parent,
            depth=depth,
            start=0.0,
            attrs=self._attrs,
            trace_id=trace_id,
            thread=_get_ident(),
        )
        with tracer._lock:
            record.index = len(spans)
            spans.append(record)
        self._stack = stack
        self._record = record
        if not stack:
            # Publish the record itself as the active trace context —
            # it satisfies the TraceContext read protocol.  Only
            # thread-root spans publish: nested same-thread spans
            # parent via the stack, and anything captured under them
            # (journal events, a cross-thread hand-off) still lands in
            # the right trace — at worst parented to this root rather
            # than the innermost span.
            self._token = _CURRENT.set(record)
        stack.append(record)
        record.start = perf_counter()
        return record

    def __exit__(self, exc_type, exc, tb) -> bool:
        record = self._record
        if record is None:  # disabled at __enter__ time
            return False
        # No lock for the duration store: a float attribute write is
        # atomic under the GIL, and exporters already tolerate
        # in-flight spans (duration None).
        record.duration = perf_counter() - record.start
        if exc_type is not None:
            record.attrs.setdefault("error", exc_type.__name__)
        stack = self._stack
        if stack and stack[-1] is record:
            stack.pop()
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        return False


class Tracer:
    """Collects spans; one per-thread stack provides nesting.

    Thread safety: the span list and every record mutation visible to
    exporters happen under one lock; the nesting stacks are
    ``threading.local`` so spans opened in a fleet worker thread can
    never interleave into another thread's stack.  ``export`` /
    ``to_jsonl`` under concurrent recording sees a consistent prefix —
    no span is lost, duplicated, or torn.
    """

    def __init__(self, enabled: bool = False):
        self.enabled = enabled
        self.spans: List[SpanRecord] = []
        self._lock = threading.Lock()
        self._local = threading.local()

    # -- lifecycle ------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def _stack(self) -> List[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    # -- recording ------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _Span:
        """Time a region; entering yields the :class:`SpanRecord` for
        attribute updates (a shared null object when disabled)."""
        return _Span(self, name, attrs)

    def absorb(
        self, spans: Iterable[Dict[str, Any]]
    ) -> List[SpanRecord]:
        """Merge spans recorded in *another process* into this tracer.

        Every record is re-indexed into this tracer's span list.
        Parent links are remapped only within the absorbed batch (a
        worker-side serve tree stays connected); a parent index that
        names a span of the *sending* process — e.g. the submitting
        request's span id carried over the wire — becomes ``None``:
        foreign span indexes are never dereferenced locally.  The
        trace id survives untouched, which is what joins the absorbed
        tree to the originating request.
        """
        records: List[SpanRecord] = []
        if not self.enabled:
            return records
        with self._lock:
            base = len(self.spans)
            index_map: Dict[int, int] = {}
            for data in spans:
                record = SpanRecord.from_dict(dict(data))
                local = base + len(records)
                index_map[record.index] = local
                record.parent = index_map.get(record.parent)
                record.index = local
                records.append(record)
                self.spans.append(record)
        return records

    # -- export ---------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per line, in span-start order."""
        with self._lock:
            return "".join(
                json.dumps(span.to_dict(), sort_keys=True) + "\n"
                for span in self.spans
            )

    def export(self, target: Union[str, TextIO]) -> None:
        """Write the JSONL trace to a path or stream."""
        text = self.to_jsonl()
        if isinstance(target, str):
            with open(target, "w") as handle:
                handle.write(text)
        else:
            target.write(text)

    def render_tree(self) -> str:
        """Indented text view of the trace (one line per span)."""
        with self._lock:
            spans = list(self.spans)
        return render_tree(spans)


def _new_trace_id() -> str:
    return _context.new_trace_id()


def load_jsonl(source: Union[str, TextIO, Iterable[str]]) -> List[SpanRecord]:
    """Read spans back from a JSONL path, stream, or line iterable."""
    if isinstance(source, str):
        with open(source) as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    return [
        SpanRecord.from_dict(json.loads(line))
        for line in lines
        if line.strip()
    ]


def render_tree(spans: Sequence[SpanRecord]) -> str:
    """Render spans as an indented tree with durations and attributes.

    >>> spans = [SpanRecord("outer", 0, None, 0, 0.0, 0.25),
    ...          SpanRecord("inner", 1, 0, 1, 0.1, 0.002, {"n": 4})]
    >>> print(render_tree(spans))
    outer  250.000 ms
      inner  2.000 ms  n=4
    """
    if not spans:
        return "(empty trace)"
    lines = []
    for span in spans:
        indent = "  " * span.depth
        if span.duration is None:
            timing = "(unfinished)"
        else:
            timing = f"{span.duration * 1000:.3f} ms"
        attrs = "  ".join(f"{k}={v}" for k, v in span.attrs.items())
        line = f"{indent}{span.name}  {timing}"
        if attrs:
            line += f"  {attrs}"
        lines.append(line)
    return "\n".join(lines)


#: The process-wide default tracer (disabled until configured).
TRACER = Tracer()


def span(name: str, **attrs: Any) -> _Span:
    """Open a span on the default tracer (usable as a context manager)."""
    return _Span(TRACER, name, attrs)


def enable() -> None:
    """Turn on span recording on the default tracer."""
    TRACER.enable()


def disable() -> None:
    """Turn off span recording on the default tracer."""
    TRACER.disable()
