"""Fleet serving throughput and migration-downtime benchmark.

Measures two things and writes ``BENCH_fleet_throughput.json`` at the
repository root:

* **throughput scaling** — steps/sec for 1, 2 and 4 workers serving the
  same synthetic traffic.  Each worker is the *controller* of one
  hardware shard, so a batch costs a device round-trip
  (``LINK_LATENCY_S``, modelled with a sleep) on top of the Python-side
  table work; scaling comes from workers overlapping their shards'
  round-trips, which is exactly how a real multi-FPGA fleet scales.  A
  ``link_latency_s=0`` column is included for honesty: with the GIL and
  a single CPU the pure-simulation path cannot scale, and the JSON says
  so rather than hiding it.
* **process-mode scaling** — the same traffic through
  ``fleet_mode="process"`` at ``link_latency_s=0``: the configuration
  where threads *cannot* scale (the ``gil_bound_reference`` rows show
  ~1x) is exactly where worker processes with shared-memory tables
  must.  Batches are large (``PROC_BATCH``) so per-request pipe costs
  amortise against worker-side table stepping; the scaling gate
  (``>= 3.0`` at 4 workers) asserts only when the machine actually has
  4 CPUs to scale onto — on smaller hosts the JSON records the
  measurement and the reason the gate was skipped;
* **migration downtime** — a 4-worker fleet serves traffic while a
  rolling migration upgrades every shard; the probe-measured service
  downtime must be zero and the rollout hardware-verified.  The same
  proof runs once more across worker processes.

Run with ``make bench-fleet``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import threading
import time

from repro.fleet import FSMFleet, MigrationScheduler
from repro.workloads.suite import suite_pair, traffic_words

WORKLOAD = "ctrl/pattern-1011-to-0110"
WORKER_COUNTS = (1, 2, 4)
REQUESTS = 240
BATCH = 24
LINK_LATENCY_S = 0.002  # one modelled device round-trip per batch
SEED = 0

#: Process-mode traffic: fewer, much larger batches — the point is
#: worker-side compute (~600ns/symbol of pure-Python table stepping)
#: dominating the ~100-200us of per-request pipe+pickle overhead.
PROC_WORKER_COUNTS = (1, 2, 4)
PROC_REQUESTS = 96
PROC_BATCH = 2048
#: CPUs the scaling gate needs before it may assert: 4 workers cannot
#: run concurrently on fewer cores, so the measurement would gate on
#: the host, not the code.
PROC_GATE_CPUS = 4


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_traffic(n_workers: int, link_latency_s: float) -> dict:
    source, target = suite_pair(WORKLOAD)
    words = traffic_words(source, REQUESTS, BATCH, seed=SEED)
    fleet = FSMFleet(
        source,
        n_workers=n_workers,
        family=[target],
        queue_depth=max(16, 2 * REQUESTS // n_workers),
        link_latency_s=link_latency_s,
        name=f"bench-{n_workers}w",
    )
    started = time.perf_counter()
    futures = [
        fleet.submit(index, word) for index, word in enumerate(words)
    ]
    for future in futures:
        future.result(timeout=60)
    elapsed = time.perf_counter() - started
    totals = fleet.totals()
    fleet.close()
    assert totals.batches_ok == REQUESTS and totals.incidents == 0
    return {
        "workers": n_workers,
        "requests": REQUESTS,
        "batch": BATCH,
        "link_latency_s": link_latency_s,
        "elapsed_s": round(elapsed, 4),
        "steps_per_sec": round(totals.symbols_served / elapsed, 1),
    }


def _run_proc_traffic(n_workers: int) -> dict:
    source, target = suite_pair(WORKLOAD)
    words = traffic_words(source, PROC_REQUESTS, PROC_BATCH, seed=SEED)
    fleet = FSMFleet(
        source,
        n_workers=n_workers,
        family=[target],
        queue_depth=max(16, 2 * PROC_REQUESTS // n_workers),
        link_latency_s=0.0,
        name=f"bench-proc-{n_workers}w",
        fleet_mode="process",
    )
    # Warm every shard (first serve publishes + attaches + compiles).
    for index in range(n_workers * 4):
        fleet.submit(f"warm-{index}", words[0][:8]).result(timeout=60)
    started = time.perf_counter()
    futures = [
        fleet.submit(index, word) for index, word in enumerate(words)
    ]
    for future in futures:
        future.result(timeout=120)
    elapsed = time.perf_counter() - started
    totals = fleet.totals()
    fleet.close()
    assert totals.incidents == 0
    return {
        "workers": n_workers,
        "requests": PROC_REQUESTS,
        "batch": PROC_BATCH,
        "link_latency_s": 0.0,
        "elapsed_s": round(elapsed, 4),
        "steps_per_sec": round(PROC_REQUESTS * PROC_BATCH / elapsed, 1),
    }


def _run_proc_migration() -> dict:
    source, target = suite_pair(WORKLOAD)
    words = traffic_words(
        source,
        REQUESTS,
        BATCH,
        seed=SEED,
        inputs=[i for i in source.inputs if i in set(target.inputs)],
    )
    fleet = FSMFleet(
        source, n_workers=4, family=[target], queue_depth=256,
        name="bench-proc-migration", fleet_mode="process",
    )
    holder: dict = {}

    def rollout() -> None:
        holder["report"] = MigrationScheduler(
            fleet, stall_budget=12
        ).rollout(target)

    thread = threading.Thread(target=rollout)
    futures = []
    for index, word in enumerate(words):
        if index == REQUESTS // 4:
            thread.start()
        futures.append(fleet.submit(index, word))
    thread.join()
    for future in futures:
        future.result(timeout=60)
    report = holder["report"]
    pids = sorted(set(fleet.worker_pids().values()))
    fleet.close()
    return {
        "workers": 4,
        "worker_processes": len(pids),
        "stall_budget": report.stall_budget,
        "migration_chunks": report.analysis.chunks_total,
        "migration_cycles": report.migration_cycles,
        "service_downtime_cycles": report.service_downtime_cycles,
        "zero_downtime": report.zero_downtime,
        "hardware_verified": report.verified,
        "batches_served_during_rollout": sum(
            shard.batches_served_during for shard in report.shards
        ),
    }


def _run_migration() -> dict:
    source, target = suite_pair(WORKLOAD)
    words = traffic_words(
        source,
        REQUESTS,
        BATCH,
        seed=SEED,
        inputs=[i for i in source.inputs if i in set(target.inputs)],
    )
    fleet = FSMFleet(
        source, n_workers=4, family=[target], queue_depth=256,
        name="bench-migration",
    )
    holder: dict = {}

    def rollout() -> None:
        holder["report"] = MigrationScheduler(
            fleet, stall_budget=12
        ).rollout(target)

    thread = threading.Thread(target=rollout)
    futures = []
    for index, word in enumerate(words):
        if index == REQUESTS // 4:
            thread.start()
        futures.append(fleet.submit(index, word))
    thread.join()
    for future in futures:
        future.result(timeout=60)
    report = holder["report"]
    fleet.close()
    return {
        "workers": 4,
        "stall_budget": report.stall_budget,
        "migration_chunks": report.analysis.chunks_total,
        "migration_cycles": report.migration_cycles,
        "service_downtime_cycles": report.service_downtime_cycles,
        "zero_downtime": report.zero_downtime,
        "hardware_verified": report.verified,
        "batches_served_during_rollout": sum(
            shard.batches_served_during for shard in report.shards
        ),
    }


def main() -> int:
    throughput = [_run_traffic(n, LINK_LATENCY_S) for n in WORKER_COUNTS]
    gil_bound = [_run_traffic(n, 0.0) for n in (1, 4)]
    migration = _run_migration()

    cpus = _cpus()
    proc_rows = [_run_proc_traffic(n) for n in PROC_WORKER_COUNTS]
    proc_by_workers = {
        row["workers"]: row["steps_per_sec"] for row in proc_rows
    }
    proc_scaling = round(proc_by_workers[4] / proc_by_workers[1], 2)
    proc_gated = cpus >= PROC_GATE_CPUS
    proc_migration = _run_proc_migration()

    by_workers = {row["workers"]: row["steps_per_sec"] for row in throughput}
    scaling = round(by_workers[4] / by_workers[1], 2)
    result = {
        "workload": WORKLOAD,
        "throughput": throughput,
        "scaling_1_to_4": scaling,
        "gil_bound_reference": {
            "note": (
                "link_latency_s=0 runs the pure-Python simulation with "
                "no device time to overlap; under the GIL this path "
                "does not scale with threads and is not the serving "
                "scenario the fleet targets"
            ),
            "rows": gil_bound,
        },
        "process_mode": {
            "note": (
                "fleet_mode='process' at link_latency_s=0: the "
                "GIL-bound configuration, served by worker processes "
                "stepping shared-memory tables"
            ),
            "rows": proc_rows,
            "scaling_1_to_4": proc_scaling,
            "cpus": cpus,
            "gate": {
                "target": 3.0,
                "asserted": proc_gated,
                **(
                    {}
                    if proc_gated
                    else {
                        "skip_reason": (
                            f"host exposes {cpus} CPU(s); 4 worker "
                            f"processes need >= {PROC_GATE_CPUS} to "
                            "demonstrate scaling"
                        )
                    }
                ),
            },
            "migration": proc_migration,
        },
        "migration": migration,
    }
    out = pathlib.Path(__file__).resolve().parent.parent / (
        "BENCH_fleet_throughput.json"
    )
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(result, indent=2))

    ok = (
        scaling >= 2.0
        and migration["zero_downtime"]
        and migration["hardware_verified"]
        and proc_migration["zero_downtime"]
        and proc_migration["hardware_verified"]
    )
    if proc_gated:
        ok = ok and proc_scaling >= 3.0
        proc_verdict = f"{proc_scaling}x (target >= 3.0)"
    else:
        proc_verdict = (
            f"{proc_scaling}x (gate skipped: {cpus} CPU(s) < "
            f"{PROC_GATE_CPUS})"
        )
    print(
        f"\nthread scaling 1->4 workers: {scaling}x (target >= 2.0); "
        f"process scaling 1->4 workers: {proc_verdict}; "
        f"migration downtime thread/process "
        f"{migration['service_downtime_cycles']}/"
        f"{proc_migration['service_downtime_cycles']} cycles "
        f"(target 0): {'OK' if ok else 'FAILED'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
