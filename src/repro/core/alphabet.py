"""Symbol alphabets and binary encodings for FSM input/output/state sets.

The paper (Def. 2.1) allows input, output and state sets to "either be
symbolic or be represented as a binary vector of values of its signals".
This module provides the bridge between the two views: an :class:`Alphabet`
is an ordered, immutable collection of hashable symbols together with a
canonical fixed-width binary encoding, which the hardware layer
(:mod:`repro.hw`) uses to address the F-RAM / G-RAM lookup memories.
"""

from __future__ import annotations

import math
from typing import Hashable, Iterable, Iterator, Sequence, Tuple

Symbol = Hashable


def bits_for(count: int) -> int:
    """Number of bits needed to enumerate ``count`` distinct values.

    A single-element alphabet still occupies one bit of address space so
    that RAM address arithmetic never degenerates to zero-width fields.

    >>> bits_for(1), bits_for(2), bits_for(3), bits_for(8), bits_for(9)
    (1, 1, 2, 3, 4)
    """
    if count < 1:
        raise ValueError("alphabet must contain at least one symbol")
    return max(1, math.ceil(math.log2(count)))


class Alphabet:
    """An ordered set of symbols with a canonical binary encoding.

    Symbols keep their insertion order; the index of a symbol in that
    order is its binary code.  Instances are immutable and hashable so
    they can be shared freely between machines.

    >>> a = Alphabet(["red", "green", "yellow"])
    >>> a.index("green")
    1
    >>> a.width
    2
    >>> a.encode("yellow")
    (1, 0)
    >>> a.decode((0, 1))
    'green'
    """

    __slots__ = ("_symbols", "_index", "_width")

    def __init__(self, symbols: Iterable[Symbol]):
        ordered = []
        index = {}
        for sym in symbols:
            if sym in index:
                raise ValueError(f"duplicate symbol {sym!r} in alphabet")
            index[sym] = len(ordered)
            ordered.append(sym)
        if not ordered:
            raise ValueError("alphabet must contain at least one symbol")
        self._symbols: Tuple[Symbol, ...] = tuple(ordered)
        self._index = index
        self._width = bits_for(len(ordered))

    @property
    def symbols(self) -> Tuple[Symbol, ...]:
        """The symbols in canonical (insertion) order."""
        return self._symbols

    @property
    def width(self) -> int:
        """Width in bits of the canonical binary encoding."""
        return self._width

    def index(self, symbol: Symbol) -> int:
        """Return the integer code of ``symbol``.

        Raises ``KeyError`` for unknown symbols.
        """
        return self._index[symbol]

    def symbol(self, code: int) -> Symbol:
        """Return the symbol with integer code ``code``."""
        return self._symbols[code]

    def encode(self, symbol: Symbol) -> Tuple[int, ...]:
        """Encode ``symbol`` as a most-significant-bit-first bit tuple."""
        code = self._index[symbol]
        return tuple((code >> shift) & 1 for shift in range(self._width - 1, -1, -1))

    def decode(self, bits: Sequence[int]) -> Symbol:
        """Decode an MSB-first bit sequence back into a symbol.

        Raises ``ValueError`` when the width is wrong or the code does not
        name a symbol (unconfigured RAM contents decode to nothing).
        """
        if len(bits) != self._width:
            raise ValueError(
                f"expected {self._width} bits, got {len(bits)}"
            )
        code = 0
        for bit in bits:
            if bit not in (0, 1):
                raise ValueError(f"non-binary bit value {bit!r}")
            code = (code << 1) | bit
        if code >= len(self._symbols):
            raise ValueError(f"code {code} does not name a symbol")
        return self._symbols[code]

    def union(self, other: "Alphabet") -> "Alphabet":
        """Superset alphabet: self's symbols followed by other's new ones.

        This realises the paper's ``I_super`` / ``O_super`` / ``S_super``
        construction (Def. 4.1): the union keeps the original codes of
        ``self`` stable, which lets a hardware machine be re-targeted
        without re-encoding the states it already holds.
        """
        extra = [s for s in other._symbols if s not in self._index]
        return Alphabet(self._symbols + tuple(extra))

    def __contains__(self, symbol: Symbol) -> bool:
        return symbol in self._index

    def __iter__(self) -> Iterator[Symbol]:
        return iter(self._symbols)

    def __len__(self) -> int:
        return len(self._symbols)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Alphabet):
            return NotImplemented
        return self._symbols == other._symbols

    def __hash__(self) -> int:
        return hash(self._symbols)

    def __repr__(self) -> str:
        return f"Alphabet({list(self._symbols)!r})"


def binary_alphabet(width: int = 1) -> Alphabet:
    """Alphabet of all bit-strings of the given width, as '0'/'1' strings.

    >>> binary_alphabet(1).symbols
    ('0', '1')
    >>> binary_alphabet(2).symbols
    ('00', '01', '10', '11')
    """
    if width < 1:
        raise ValueError("width must be positive")
    return Alphabet(format(v, f"0{width}b") for v in range(2 ** width))
