library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity detect_1011_reconf is
  port (
    din  : in  std_logic_vector(0 downto 0);
    clk  : in  std_logic;
    rst  : in  std_logic;
    mode : in  std_logic;  -- 0 = normal, 1 = reconfiguration
    ir   : in  std_logic_vector(0 downto 0);
    hf   : in  std_logic_vector(2 downto 0);
    hg   : in  std_logic_vector(0 downto 0);
    we   : in  std_logic;
    dout : out std_logic_vector(0 downto 0)
  );
end detect_1011_reconf;

architecture structure of detect_1011_reconf is
  type f_ram_type is array (0 to 15) of std_logic_vector(2 downto 0);
  type g_ram_type is array (0 to 15) of std_logic_vector(0 downto 0);
  signal f_ram : f_ram_type := (
    "000",
    "010",
    "000",
    "010",
    (others => '0'),
    (others => '0'),
    (others => '0'),
    (others => '0'),
    "001",
    "001",
    "011",
    "001",
    (others => '0'),
    (others => '0'),
    (others => '0'),
    (others => '0')
  );
  signal g_ram : g_ram_type := (
    "0",
    "0",
    "0",
    "0",
    (others => '0'),
    (others => '0'),
    (others => '0'),
    (others => '0'),
    "0",
    "0",
    "0",
    "1",
    (others => '0'),
    (others => '0'),
    (others => '0'),
    (others => '0')
  );
  signal state : std_logic_vector(2 downto 0) := "000";
  signal i_int : std_logic_vector(0 downto 0);
  signal addr  : unsigned(3 downto 0);
  signal f_out : std_logic_vector(2 downto 0);
begin
  -- IN-MUX: external input in normal mode, ir while reconfiguring
  i_int <= din when mode = '0' else ir;
  addr  <= unsigned(i_int) & unsigned(state);

  -- F-RAM / G-RAM: asynchronous read, one synchronous write port
  f_out <= hf when (we = '1' and mode = '1') else
           f_ram(to_integer(addr));
  dout  <= hg when (we = '1' and mode = '1') else
           g_ram(to_integer(addr));

  process (clk)
  begin
    if rising_edge(clk) then
      if we = '1' and mode = '1' then
        f_ram(to_integer(addr)) <= hf;
        g_ram(to_integer(addr)) <= hg;
      end if;
      -- RST-MUX: reset state wins over the F-RAM next state
      if rst = '1' then
        state <= "000";
      else
        state <= f_out;
      end if;
    end if;
  end process;
end structure;
