"""Delta transitions and superset construction (paper Defs. 4.1 and 4.2).

Migrating a machine ``M`` into a target ``M'`` by gradual reconfiguration
requires knowing exactly *which* entries of the combined lookup table
differ.  Def. 4.2 calls the target transitions that must be rewritten
*delta transitions*: a target transition ``t = (i, s_x, s_y, o)`` of
``M'`` is a delta transition if it uses a symbol/state unknown to ``M``
or disagrees with ``M``'s transition or output function on the shared
domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from .alphabet import Alphabet
from .fsm import FSM, Input, State, Transition


@dataclass(frozen=True)
class Supersets:
    """The combined symbol universes of a migration pair (Def. 4.1).

    ``I_super ⊇ I ∪ I'``, ``O_super ⊇ O ∪ O'`` and ``S_super ⊇ S ∪ S'``.
    The hardware realisation sizes its RAM address space and state
    register from these supersets, so they are what every reconfiguration
    algorithm operates over.
    """

    inputs: Alphabet
    outputs: Alphabet
    states: Alphabet

    @classmethod
    def of(cls, source: FSM, target: FSM) -> "Supersets":
        """Minimal supersets of a migration pair, source symbols first.

        Keeping the source machine's symbol order as a prefix means the
        binary codes of everything ``M`` already stores stay stable —
        the physical precondition for in-place gradual reconfiguration.
        """
        return cls(
            inputs=Alphabet(source.inputs).union(Alphabet(target.inputs)),
            outputs=Alphabet(source.outputs).union(Alphabet(target.outputs)),
            states=Alphabet(source.states).union(Alphabet(target.states)),
        )

    def admits(self, machine: FSM) -> bool:
        """True when every symbol of ``machine`` lives in the supersets."""
        return (
            all(i in self.inputs for i in machine.inputs)
            and all(o in self.outputs for o in machine.outputs)
            and all(s in self.states for s in machine.states)
        )


def delta_transitions(source: FSM, target: FSM) -> List[Transition]:
    """The set ``T_d`` of delta transitions for migrating source → target.

    Implements Def. 4.2 literally.  For every transition
    ``t = (i, s_x, s_y, o)`` of the *target* machine, ``t`` is a delta
    transition iff at least one of:

    * ``i ∉ I``  (new input symbol),
    * ``s_x ∉ S`` or ``s_y ∉ S``  (new state),
    * ``o ∉ O``  (new output symbol),
    * ``s_y ≠ F(i, s_x)`` on the shared domain, or
    * ``o ≠ G(i, s_x)`` on the shared domain.

    The result preserves the target machine's canonical transition order.

    >>> from repro.workloads.library import fig6_m, fig6_m_prime
    >>> [str(t) for t in delta_transitions(fig6_m(), fig6_m_prime())]
    ['(0, S1, S0, 0)', '(0, S3, S0, 0)', '(1, S2, S3, 0)', '(1, S3, S3, 1)']
    """
    src_inputs = set(source.inputs)
    src_outputs = set(source.outputs)
    src_states = set(source.states)

    deltas: List[Transition] = []
    for trans in target.transitions():
        shared = trans.input in src_inputs and trans.source in src_states
        if (
            trans.input not in src_inputs
            or trans.source not in src_states
            or trans.target not in src_states
            or trans.output not in src_outputs
            or (shared and source.next_state(trans.input, trans.source) != trans.target)
            or (shared and source.output(trans.input, trans.source) != trans.output)
        ):
            deltas.append(trans)
    return deltas


def delta_count(source: FSM, target: FSM) -> int:
    """``|T_d|`` — the size of the delta set (lower bound of Thm. 4.3)."""
    return len(delta_transitions(source, target))


def is_migration_trivial(source: FSM, target: FSM) -> bool:
    """True when no entry needs rewriting (``T_d`` is empty).

    An empty delta set means the source machine's table already realises
    the target everywhere the target is defined — e.g. when migrating a
    machine to itself.
    """
    return not delta_transitions(source, target)


def table_realises(
    table, target: FSM
) -> Tuple[bool, List[Tuple[Input, State, str]]]:
    """Check whether a (possibly partial) table realises ``target``.

    ``table`` maps total states ``(i, s)`` to ``(s', o)`` pairs — the
    combined F-RAM/G-RAM contents.  Returns ``(ok, mismatches)`` where
    each mismatch names the offending total state and a human-readable
    reason.  Used by the replay validator to decide when a
    reconfiguration program has actually finished the migration.
    """
    mismatches: List[Tuple[Input, State, str]] = []
    for trans in target.transitions():
        key = trans.entry
        if key not in table or table[key] is None:
            mismatches.append((trans.input, trans.source, "entry unconfigured"))
            continue
        got_target, got_output = table[key]
        if got_target != trans.target:
            mismatches.append(
                (
                    trans.input,
                    trans.source,
                    f"next state is {got_target!r}, want {trans.target!r}",
                )
            )
        if got_output != trans.output:
            mismatches.append(
                (
                    trans.input,
                    trans.source,
                    f"output is {got_output!r}, want {trans.output!r}",
                )
            )
    return (not mismatches, mismatches)
