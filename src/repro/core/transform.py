"""Machine transformations: Mealy ↔ Moore conversion and composition.

The paper's Def. 2.1 treats Moore machines as the special case of Mealy
machines whose output depends on the state only (footnote 2).  This
module provides the standard constructions connecting the two views plus
synchronous composition operators — the FSM-toolbox operations a
downstream user needs to assemble controllers before migrating them:

* :func:`mealy_to_moore` — state-splitting construction ``(s, o)``;
* :func:`moore_to_mealy` — re-expression (already provided by
  :meth:`~repro.core.fsm.MooreFSM.to_mealy`, re-exported for symmetry);
* :func:`parallel_compose` — synchronous product, both machines step on
  the shared input, outputs are paired;
* :func:`cascade_compose` — series composition, the first machine's
  output drives the second machine's input.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from .fsm import FSM, FSMError, MooreFSM, Transition


def mealy_to_moore(
    machine: FSM,
    initial_output: Optional[Hashable] = None,
    name: Optional[str] = None,
) -> MooreFSM:
    """The Moore machine equivalent to a Mealy machine.

    Standard state-splitting: Moore states are the reachable pairs
    ``(s, o)`` of Mealy state and the output of the edge that entered it;
    the pair's Moore output is ``o``.  The initial state pairs the Mealy
    reset state with ``initial_output`` (default: the machine's first
    output symbol), which is only visible before the first input.

    With this library's edge-sampled run semantics, the conversion is
    exactly behaviour-preserving:

    >>> from repro.workloads.library import ones_detector
    >>> m = ones_detector()
    >>> mealy_to_moore(m).run(list("110")) == m.run(list("110"))
    True
    """
    init_out = machine.outputs[0] if initial_output is None else initial_output
    if init_out not in machine.outputs:
        raise FSMError(f"initial output {init_out!r} not in O")

    start = (machine.reset_state, init_out)
    states = [start]
    seen = {start}
    next_state = {}
    frontier = [start]
    while frontier:
        pair = frontier.pop()
        s, _o = pair
        for i in machine.inputs:
            target, out = machine.entry(i, s)
            nxt = (target, out)
            next_state[(i, pair)] = nxt
            if nxt not in seen:
                seen.add(nxt)
                states.append(nxt)
                frontier.append(nxt)

    state_output = {pair: pair[1] for pair in states}
    used_outputs = sorted({o for o in state_output.values()}, key=str)
    return MooreFSM(
        machine.inputs,
        [o for o in machine.outputs if o in set(used_outputs)],
        states,
        start,
        next_state,
        state_output,
        name=name or f"{machine.name}_moore",
    )


def moore_to_mealy(machine: MooreFSM, name: Optional[str] = None) -> FSM:
    """Forget the Moore structure (alias of :meth:`MooreFSM.to_mealy`)."""
    return machine.to_mealy(name=name)


def parallel_compose(
    first: FSM,
    second: FSM,
    name: Optional[str] = None,
) -> FSM:
    """Synchronous product: both machines consume the shared input.

    The composite state is the pair of component states; the composite
    output is the pair of component outputs.  Input alphabets must agree.

    >>> from repro.workloads.library import ones_detector, parity_checker
    >>> both = parallel_compose(ones_detector(), parity_checker())
    >>> both.run(list("11"))[-1]
    ('1', '0')
    """
    if set(first.inputs) != set(second.inputs):
        raise FSMError("parallel composition needs identical input sets")
    states = [(a, b) for a in first.states for b in second.states]
    outputs = sorted(
        {(x, y) for x in first.outputs for y in second.outputs}, key=str
    )
    transitions = []
    for i in first.inputs:
        for a, b in states:
            ta, oa = first.entry(i, a)
            tb, ob = second.entry(i, b)
            transitions.append(Transition(i, (a, b), (ta, tb), (oa, ob)))
    return FSM(
        first.inputs,
        outputs,
        states,
        (first.reset_state, second.reset_state),
        transitions,
        name=name or f"{first.name}||{second.name}",
    )


def cascade_compose(
    first: FSM,
    second: FSM,
    name: Optional[str] = None,
) -> FSM:
    """Series composition: the first machine's output feeds the second.

    Requires the first machine's output set to be a subset of the second
    machine's input set.  Both machines step in the same clock cycle
    (combinational cascade, as when two Mealy stages share a clock).

    >>> from repro.workloads.library import ones_detector, parity_checker
    >>> chain = cascade_compose(ones_detector(), parity_checker())
    >>> chain.run(list("1101"))  # parity of the detector's output stream
    ['0', '1', '1', '1']
    """
    if not set(first.outputs) <= set(second.inputs):
        raise FSMError(
            "cascade composition needs O(first) to be a subset of I(second)"
        )
    states = [(a, b) for a in first.states for b in second.states]
    transitions = []
    for i in first.inputs:
        for a, b in states:
            ta, oa = first.entry(i, a)
            tb, ob = second.entry(oa, b)
            transitions.append(Transition(i, (a, b), (ta, tb), ob))
    return FSM(
        first.inputs,
        second.outputs,
        states,
        (first.reset_state, second.reset_state),
        transitions,
        name=name or f"{first.name}>>{second.name}",
    )


def relabel_outputs(
    machine: FSM,
    mapping: Callable[[Hashable], Hashable],
    name: Optional[str] = None,
) -> FSM:
    """Apply a function to every output symbol (e.g. inverting a flag)."""
    outputs = []
    for o in machine.outputs:
        new = mapping(o)
        if new not in outputs:
            outputs.append(new)
    transitions = [
        Transition(t.input, t.source, t.target, mapping(t.output))
        for t in machine.transitions()
    ]
    return FSM(
        machine.inputs,
        outputs,
        machine.states,
        machine.reset_state,
        transitions,
        name=name or f"{machine.name}_relabelled",
    )
