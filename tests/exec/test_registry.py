"""The backend registry and the one shared resolver.

Covers the environment contract (`REPRO_BACKEND`, `REPRO_DISABLE_NUMPY`)
the whole stack now shares: the env is consulted at *dispatch* time, an
explicit pin always beats it, and a forced-but-unavailable backend
raises :class:`BackendUnavailable` with the reason spelled out.
"""

import pytest

from repro.engine import EngineError, numpy_available
from repro.exec import (
    BackendSpec,
    BackendUnavailable,
    Capabilities,
    canonical,
    names,
    register,
    resolve,
    resolve_tables,
    specs,
    stream_threshold,
)
from repro.exec import registry as registry_module
from repro.exec.registry import STREAM_THRESHOLD_DEFAULT


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    monkeypatch.delenv("REPRO_DISABLE_NUMPY", raising=False)
    monkeypatch.delenv("REPRO_DISABLE_SHM", raising=False)
    monkeypatch.delenv("REPRO_STREAM_THRESHOLD", raising=False)


class TestRegistry:
    def test_builtins_registered(self):
        assert names() == ("cycle", "table-py", "table-numpy", "table-shm")

    def test_specs_carry_capabilities(self):
        by_name = {spec.name: spec for spec in specs()}
        assert by_name["cycle"].capabilities.cycle_accurate
        assert by_name["cycle"].capabilities.serves_mid_migration
        assert not by_name["cycle"].capabilities.batchable
        assert by_name["table-py"].capabilities.batchable
        assert by_name["table-numpy"].capabilities.needs_numpy
        assert not by_name["table-py"].capabilities.needs_numpy
        assert by_name["table-shm"].capabilities.batchable
        assert not by_name["table-shm"].capabilities.cycle_accurate
        assert not by_name["table-shm"].capabilities.needs_numpy

    def test_register_rejects_reserved_names(self):
        spec = BackendSpec(
            name="off",
            capabilities=Capabilities(),
            summary="",
            available=lambda: True,
            unavailable_reason=lambda: None,
            build=lambda hw: None,
        )
        with pytest.raises(ValueError, match="reserved alias"):
            register(spec)

    def test_register_rejects_duplicates_unless_replace(self):
        spec = BackendSpec(
            name="test-dup",
            capabilities=Capabilities(),
            summary="",
            available=lambda: True,
            unavailable_reason=lambda: None,
            build=lambda hw: None,
        )
        register(spec)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register(spec)
            register(spec, replace=True)  # explicit replacement is fine
        finally:
            del registry_module._REGISTRY["test-dup"]

    def test_registered_backend_resolvable_by_pin(self):
        spec = BackendSpec(
            name="test-extra",
            capabilities=Capabilities(),
            summary="",
            available=lambda: True,
            unavailable_reason=lambda: None,
            build=lambda hw: None,
        )
        register(spec)
        try:
            assert resolve("test-extra") == "test-extra"
            assert canonical("test-extra") == "test-extra"
        finally:
            del registry_module._REGISTRY["test-extra"]


class TestCanonical:
    def test_aliases_map_to_backend_names(self):
        assert canonical("off") == "cycle"
        assert canonical("python") == "table-py"
        assert canonical("numpy") == "table-numpy"
        assert canonical("shm") == "table-shm"

    def test_auto_and_none(self):
        assert canonical(None) == "auto"
        assert canonical("auto") == "auto"

    def test_unknown_name_lists_accepted_spellings(self):
        with pytest.raises(ValueError, match="'auto', 'cycle'"):
            canonical("cuda")


class TestResolve:
    def test_auto_single_stream_prefers_python_tables(self):
        # One sequential stream runs fastest in the pure-Python loop;
        # numpy only wins once many streams amortize the lane kernel.
        assert resolve() == "table-py"
        assert resolve("auto") == "table-py"
        assert resolve("auto", streams=stream_threshold() - 1) == "table-py"

    def test_auto_wide_batches_prefer_numpy_when_available(self):
        expected = "table-numpy" if numpy_available() else "table-py"
        assert resolve("auto", streams=stream_threshold()) == expected
        assert resolve(streams=4096) == expected

    def test_stream_threshold_env_override(self, monkeypatch):
        assert stream_threshold() == STREAM_THRESHOLD_DEFAULT
        monkeypatch.setenv("REPRO_STREAM_THRESHOLD", "4")
        assert stream_threshold() == 4
        if numpy_available():
            assert resolve("auto", streams=4) == "table-numpy"
        assert resolve("auto", streams=3) == "table-py"
        monkeypatch.setenv("REPRO_STREAM_THRESHOLD", "bogus")
        with pytest.raises(ValueError, match="REPRO_STREAM_THRESHOLD"):
            stream_threshold()
        monkeypatch.setenv("REPRO_STREAM_THRESHOLD", "0")
        with pytest.raises(ValueError, match=">= 1"):
            stream_threshold()

    def test_pin_and_env_ignore_stream_count(self, monkeypatch):
        assert resolve("table-py", streams=4096) == "table-py"
        monkeypatch.setenv("REPRO_BACKEND", "cycle")
        assert resolve("auto", streams=4096) == "cycle"

    def test_explicit_pins(self):
        assert resolve("cycle") == "cycle"
        assert resolve("off") == "cycle"
        assert resolve("table-py") == "table-py"
        assert resolve("python") == "table-py"

    def test_env_steers_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cycle")
        assert resolve("auto") == "cycle"
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve("auto") == "table-py"

    def test_explicit_pin_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "cycle")
        assert resolve("table-py") == "table-py"

    def test_env_auto_and_blank_are_noops(self, monkeypatch):
        expected = resolve("auto")
        monkeypatch.setenv("REPRO_BACKEND", "auto")
        assert resolve("auto") == expected
        monkeypatch.setenv("REPRO_BACKEND", "  ")
        assert resolve("auto") == expected

    def test_bogus_env_raises_with_prefix(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "bogus")
        with pytest.raises(ValueError, match="REPRO_BACKEND='bogus'"):
            resolve("auto")

    def test_disable_numpy_honoured_at_dispatch_time(self, monkeypatch):
        # No import-time capture: flipping the env mid-process changes
        # the very next resolution.
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        assert resolve("auto") == "table-py"
        assert resolve("auto", streams=4096) == "table-py"
        with pytest.raises(BackendUnavailable, match="REPRO_DISABLE_NUMPY"):
            resolve("table-numpy")
        monkeypatch.delenv("REPRO_DISABLE_NUMPY")
        if numpy_available():
            assert resolve("auto", streams=4096) == "table-numpy"
            assert resolve("table-numpy") == "table-numpy"

    def test_forced_unavailable_env_raises_too(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        with pytest.raises(BackendUnavailable, match="table-numpy"):
            resolve("auto")

    def test_disable_shm_honoured_at_dispatch_time(self, monkeypatch):
        # The shm kill-switch mirrors REPRO_DISABLE_NUMPY: consulted at
        # every resolution, with the reason named in the error.
        assert resolve("table-shm") == "table-shm"
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        with pytest.raises(BackendUnavailable, match="REPRO_DISABLE_SHM"):
            resolve("table-shm")
        with pytest.raises(BackendUnavailable, match="REPRO_DISABLE_SHM"):
            resolve("shm")
        monkeypatch.delenv("REPRO_DISABLE_SHM")
        assert resolve("table-shm") == "table-shm"

    def test_backend_unavailable_is_an_engine_error(self):
        # Pre-exec call sites say `except EngineError`; they must keep
        # observing exec-layer failures unchanged.
        assert issubclass(BackendUnavailable, EngineError)


class TestResolveTables:
    def test_table_spellings_only(self):
        assert resolve_tables("python") == "python"
        with pytest.raises(ValueError, match="unknown engine backend"):
            resolve_tables("cycle")
        with pytest.raises(ValueError):
            resolve_tables("table-py")

    def test_env_table_spelling_steers_auto(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_tables("auto") == "python"

    def test_env_cycle_cannot_steer_a_table_compile(self, monkeypatch):
        # A serving substrate is not a table kernel: forcing `cycle`
        # must leave table compilation on its own auto choice.
        monkeypatch.setenv("REPRO_BACKEND", "cycle")
        expected = "numpy" if numpy_available() else "python"
        assert resolve_tables("auto") == expected

    def test_forced_numpy_unavailable_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        with pytest.raises(BackendUnavailable):
            resolve_tables("numpy")

    def test_engine_resolve_backend_delegates_here(self, monkeypatch):
        from repro.engine import resolve_backend

        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert resolve_backend("auto") == "python"
