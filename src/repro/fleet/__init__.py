"""``repro.fleet`` — concurrent FSM serving with zero-downtime migration.

The serving layer over the paper's datapath: a sharded pool of
cycle-accurate machines behind worker threads (:mod:`.pool`), a rolling
migration scheduler that reconfigures the fleet gradually under live
traffic (:mod:`.migration`), a thread-safe plan cache so shards
never duplicate synthesis work (:mod:`.plancache`), and the
:class:`FleetClient` serving handle (:mod:`.client`) that
:func:`repro.api.serve` hands out — sync ``submit``, async
``submit_async``, stream sessions, live migration and health on one
context-managed surface.
"""

from .client import FleetClient, StreamSession
from .migration import (
    InfeasiblePlanError,
    MigrationScheduler,
    PlanAnalysis,
    RolloutReport,
    ShardRollout,
)
from .plancache import PlanCache, order_chunks
from .pool import FleetClosed, FleetError, FleetOverloaded, FSMFleet
from .worker import MigrationJob, ShardStats, ShardWorker

__all__ = [
    "FSMFleet",
    "FleetClient",
    "FleetClosed",
    "FleetError",
    "FleetOverloaded",
    "InfeasiblePlanError",
    "MigrationJob",
    "MigrationScheduler",
    "PlanAnalysis",
    "PlanCache",
    "RolloutReport",
    "ShardRollout",
    "ShardStats",
    "ShardWorker",
    "StreamSession",
    "order_chunks",
]
