"""Unit tests for the batch execution engine (repro.engine).

Covers lowering (FSM and live-hardware origins), both kernels, the
datapath-exact unset/garbage semantics, backend resolution (including
the ``REPRO_DISABLE_NUMPY`` escape hatch), the staleness/invalidation
lifecycle, and the ``commit_engine_run`` fast-forward on the datapath.
"""

import pytest

from repro.core.fsm import FSM
from repro.engine import (
    BACKENDS,
    CompiledFSM,
    EngineError,
    UnconfiguredEntry,
    numpy_available,
    resolve_backend,
)
from repro.hw.faults import erase_entry
from repro.hw.machine import ConcurrentUseError, HardwareFSM
from repro.hw.memory import SyncRAM
from repro.hw.reconfigurator import Reconfigurator
from repro.workloads.library import fig6_m, fig6_m_prime, ones_detector
from repro.workloads.suite import traffic_words

BACKENDS_HERE = [
    b for b in ("python", "numpy") if b == "python" or numpy_available()
]


@pytest.fixture(params=BACKENDS_HERE)
def backend(request):
    return request.param


def tri_output_fsm() -> FSM:
    """Two states, three outputs — the output width (2 bits) leaves a
    fourth code the datapath's decoder would refuse, i.e. garbage."""
    return FSM(
        ("a", "b"),
        ("x", "y", "z"),
        ("S0", "S1"),
        "S0",
        {
            ("a", "S0"): ("S1", "x"),
            ("b", "S0"): ("S0", "y"),
            ("a", "S1"): ("S0", "z"),
            ("b", "S1"): ("S1", "x"),
        },
        name="tri",
    )


class TestLowering:
    def test_from_fsm_realises_the_machine(self, backend):
        fsm = ones_detector()
        compiled = CompiledFSM.from_fsm(fsm, backend=backend)
        assert compiled.realises(fsm)
        assert compiled.reset_state == fsm.reset_state
        assert compiled.backend == backend

    def test_run_word_matches_reference_run(self, backend):
        fsm = ones_detector()
        compiled = CompiledFSM.from_fsm(fsm, backend=backend)
        for word in traffic_words(fsm, 8, 12, seed=5):
            assert compiled.run_word(word).outputs == fsm.run(word)

    def test_from_hardware_matches_the_downloaded_machine(self, backend):
        source, target = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(source, target)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        assert compiled.realises(source)
        for word in traffic_words(source, 6, 10, seed=1):
            assert compiled.run_word(word).outputs == source.run(word)

    def test_word_run_reports_final_state_and_visits(self, backend):
        fsm = ones_detector()
        compiled = CompiledFSM.from_fsm(fsm, backend=backend)
        word = traffic_words(fsm, 1, 20, seed=2)[0]
        run = compiled.run_word(word)
        # replay by hand: visits count post-transition states
        state = fsm.reset_state
        visits = {}
        for symbol in word:
            state, _ = fsm.step(symbol, state)
            visits[state] = visits.get(state, 0) + 1
        assert run.final_state == state
        assert run.visits == visits
        assert len(run) == len(word)


class TestBatchKernels:
    def test_step_batch_steps_every_lane(self, backend):
        fsm = ones_detector()
        compiled = CompiledFSM.from_fsm(fsm, backend=backend)
        lanes = [
            (state, symbol)
            for state in fsm.states
            for symbol in fsm.inputs
        ]
        states = [s for s, _ in lanes]
        symbols = [i for _, i in lanes]
        next_states, outputs = compiled.step_batch(states, symbols)
        for lane, (state, symbol) in enumerate(lanes):
            expect_ns, expect_out = fsm.step(symbol, state)
            assert next_states[lane] == expect_ns
            assert outputs[lane] == expect_out

    def test_step_batch_length_mismatch(self, backend):
        fsm = ones_detector()
        compiled = CompiledFSM.from_fsm(fsm, backend=backend)
        with pytest.raises(ValueError):
            compiled.step_batch([fsm.states[0]], [])

    def test_run_words_matches_per_word_runs(self, backend):
        fsm = fig6_m()
        compiled = CompiledFSM.from_fsm(fsm, backend=backend)
        words = traffic_words(fsm, 10, 7, seed=9)
        words.append([])  # empty word is a valid (trivial) stream
        runs = compiled.run_words(words)
        assert len(runs) == len(words)
        for run, word in zip(runs, words):
            solo = compiled.run_word(word)
            assert run.outputs == solo.outputs
            assert run.final_state == solo.final_state
            assert run.visits == solo.visits

    def test_run_words_ragged_lengths(self, backend):
        fsm = ones_detector()
        compiled = CompiledFSM.from_fsm(fsm, backend=backend)
        words = [
            traffic_words(fsm, 1, length, seed=length)[0]
            for length in (1, 5, 3, 17, 2)
        ]
        for run, word in zip(compiled.run_words(words), words):
            assert run.outputs == fsm.run(word)

    @pytest.mark.skipif(not numpy_available(), reason="numpy absent")
    def test_backends_agree(self):
        fsm = fig6_m_prime()
        py = CompiledFSM.from_fsm(fsm, backend="python")
        np_ = CompiledFSM.from_fsm(fsm, backend="numpy")
        words = traffic_words(fsm, 12, 9, seed=4)
        for run_py, run_np in zip(py.run_words(words), np_.run_words(words)):
            assert run_py.outputs == run_np.outputs
            assert run_py.final_state == run_np.final_state
            assert run_py.visits == run_np.visits


class TestUnsetAndGarbage:
    def test_unset_f_entry_raises(self, backend):
        # for_migration sizes the RAMs for the 4-state target; the extra
        # state's rows were never written, so starting there must raise.
        source, target = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(source, target)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        extra = next(s for s in target.states if s not in source.states)
        with pytest.raises(UnconfiguredEntry):
            compiled.run_word([source.inputs[0]], start=extra)

    def test_unset_f_entry_raises_in_step_batch(self, backend):
        source, target = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(source, target)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        extra = next(s for s in target.states if s not in source.states)
        good = source.states[0]
        with pytest.raises(UnconfiguredEntry):
            compiled.step_batch(
                [good, extra], [source.inputs[0], source.inputs[0]]
            )

    def test_unset_g_entry_yields_none_output(self, backend):
        fsm = tri_output_fsm()
        hw = HardwareFSM(fsm)
        addr = hw._address("a", "S0").value
        assert hw.g_ram.erase(addr)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        run = compiled.run_word(["a", "a"])
        # first step: output word unset -> None; transition still taken
        assert run.outputs == [None, "z"]
        assert run.final_state == "S0"

    def test_garbage_g_code_raises(self, backend):
        fsm = tri_output_fsm()
        hw = HardwareFSM(fsm)
        addr = hw._address("a", "S0").value
        garbage = len(fsm.outputs)  # code 3 fits 2 bits, decodes to nothing
        assert garbage < (1 << hw.g_ram.data_width)
        hw.g_ram.load({addr: garbage})
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        with pytest.raises(UnconfiguredEntry):
            compiled.run_word(["a"])

    def test_unknown_symbol_raises_engine_error(self, backend):
        compiled = CompiledFSM.from_fsm(ones_detector(), backend=backend)
        with pytest.raises(EngineError):
            compiled.run_word(["no-such-symbol"])
        with pytest.raises(EngineError):
            compiled.run_word([], start="no-such-state")


class TestBackendResolution:
    def test_known_preferences(self):
        assert resolve_backend("python") == "python"
        assert resolve_backend("auto") in BACKENDS

    def test_unknown_preference_raises(self):
        with pytest.raises(ValueError):
            resolve_backend("cuda")

    def test_disable_numpy_env_var(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        assert not numpy_available()
        assert resolve_backend("auto") == "python"
        with pytest.raises(EngineError):
            resolve_backend("numpy")

    @pytest.mark.skipif(not numpy_available(), reason="numpy absent")
    def test_auto_prefers_numpy_when_available(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend("auto") == "numpy"
        assert resolve_backend("numpy") == "numpy"


class TestVersioning:
    def test_sync_ram_version_semantics(self):
        ram = SyncRAM(3, 2, name="test")
        assert ram.version == 0
        ram.load({})                       # empty download: no change
        assert ram.version == 0
        ram.load({0: 1, 1: 2})
        assert ram.version == 1
        assert not ram.erase(5)            # never written: no change
        assert ram.version == 1
        assert ram.erase(0)
        assert ram.version == 2
        ram.clock()                        # no pending write: no change
        assert ram.version == 2
        from repro.hw.signals import BitVector

        ram.write(BitVector(2, 3), BitVector(1, 2))
        assert ram.version == 2            # not yet committed
        ram.clock()
        assert ram.version == 3

    def test_table_version_tracks_ram_and_retargets(self):
        source, target = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(source, target)
        before = hw.table_version
        erase_entry(hw, seed=0)
        assert hw.table_version > before
        before = hw.table_version
        hw.retarget_reset(target.reset_state)
        assert hw.table_version == before + 1

    def test_is_stale_after_ram_mutation(self, backend):
        hw = HardwareFSM(ones_detector())
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        assert not compiled.is_stale(hw)
        erase_entry(hw, seed=0)
        assert compiled.is_stale(hw)

    def test_is_stale_on_different_hardware(self, backend):
        hw = HardwareFSM(ones_detector())
        other = HardwareFSM(ones_detector())
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        assert compiled.is_stale(other)

    def test_explicit_invalidate_is_sticky(self, backend):
        hw = HardwareFSM(ones_detector())
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        compiled.invalidate()
        assert compiled.is_stale()
        assert compiled.is_stale(hw)

    def test_watch_invalidates_on_store(self, backend):
        from repro.core.jsr import jsr_program

        source, target = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(source, target)
        compiled = CompiledFSM.from_hardware(hw, backend=backend).watch(
            recon := Reconfigurator()
        )
        assert not compiled.is_stale(hw)
        recon.store("mig", jsr_program(source, target))
        assert compiled.is_stale()


class TestCommitEngineRun:
    def test_fast_forwards_architectural_state(self, backend):
        fsm = ones_detector()
        hw = HardwareFSM(fsm)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        word = traffic_words(fsm, 1, 15, seed=7)[0]
        run = compiled.run_word(word, start=hw.state)
        cycles_before = hw.cycles
        hw.commit_engine_run(run.final_state, len(word), run.visits)
        assert hw.state == run.final_state
        assert hw.cycles == cycles_before + len(word)
        assert hw.mode_cycles["normal"] >= len(word)

    def test_visits_merge_into_probe_counters(self, backend):
        fsm = ones_detector()
        # reference: serve the word per-cycle on one datapath ...
        ref = HardwareFSM(fsm)
        word = traffic_words(fsm, 1, 12, seed=8)[0]
        ref.run(word)
        # ... and via engine commit on another; probes must agree
        hw = HardwareFSM(fsm)
        compiled = CompiledFSM.from_hardware(hw, backend=backend)
        run = compiled.run_word(word, start=hw.state)
        hw.commit_engine_run(run.final_state, len(word), run.visits)
        assert hw.state_visits == ref.state_visits
        assert hw.cycles == ref.cycles
        assert hw.state == ref.state

    def test_negative_cycles_rejected(self):
        hw = HardwareFSM(ones_detector())
        with pytest.raises(ValueError):
            hw.commit_engine_run(hw.state, -1)

    def test_single_driver_guard(self):
        hw = HardwareFSM(ones_detector())
        hw._cycle_guard.acquire()
        try:
            with pytest.raises(ConcurrentUseError):
                hw.commit_engine_run(hw.state, 1)
        finally:
            hw._cycle_guard.release()
