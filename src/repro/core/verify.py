"""Conformance testing: verify a migration through the machine's ports.

The replay validator (:mod:`repro.core.program`) and
:meth:`~repro.hw.machine.HardwareFSM.realises` check migrations by
*reading the table memories* — possible in simulation, but on a real
device the F-RAM/G-RAM contents are not observable.  What is observable
is input/output behaviour.  This module implements the classic
**W-method** of FSM conformance testing (Chow 1978, Vasilevskii 1973):

* an *access sequence* brings the machine from reset to each state,
* a *characterisation set* ``W`` of input words distinguishes every pair
  of inequivalent states by outputs alone,
* the test suite ``P · I^{≤k} · W`` (transition cover × bounded input
  extensions × W) is exhaustive: a deterministic implementation with at
  most ``k`` extra states passes iff it is behaviourally equivalent to
  the reference.

After a gradual reconfiguration, running the target machine's suite
through the datapath's ports certifies the migration without ever
peeking into the RAMs.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence, Tuple

from ..obs import instruments as _instruments
from ..obs.tracing import span as _span
from .fsm import FSM, Input, Output, State
from .minimize import minimize


def access_sequences(machine: FSM) -> Dict[State, List[Input]]:
    """Shortest input word reaching each state from reset (BFS).

    Unreachable states are absent from the result.

    >>> from repro.workloads.library import ones_detector
    >>> access_sequences(ones_detector())["S1"]
    ['1']
    """
    words: Dict[State, List[Input]] = {machine.reset_state: []}
    queue = deque([machine.reset_state])
    while queue:
        state = queue.popleft()
        for i in machine.inputs:
            target = machine.next_state(i, state)
            if target not in words:
                words[target] = words[state] + [i]
                queue.append(target)
    return words


def distinguishing_word(
    machine: FSM, first: State, second: State
) -> Optional[List[Input]]:
    """Shortest input word on which the two states' outputs differ.

    Returns ``None`` for behaviourally equivalent states.
    """
    if first == second:
        return None
    start = (first, second)
    parents: Dict[Tuple[State, State], Tuple[Tuple[State, State], Input]] = {}
    seen = {start}
    queue = deque([start])
    while queue:
        pair = queue.popleft()
        a, b = pair
        for i in machine.inputs:
            if machine.output(i, a) != machine.output(i, b):
                word = [i]
                node = pair
                while node != start:
                    node, step = parents[node]
                    word.append(step)
                word.reverse()
                return word
            nxt = (machine.next_state(i, a), machine.next_state(i, b))
            if nxt not in seen and nxt[0] != nxt[1]:
                seen.add(nxt)
                parents[nxt] = (pair, i)
                queue.append(nxt)
    return None


def characterization_set(machine: FSM) -> List[List[Input]]:
    """A set ``W`` of words distinguishing every inequivalent state pair.

    Built pairwise from shortest distinguishing words, deduplicated.
    For a minimal machine, running all of ``W`` from two distinct states
    always produces different output matrices.
    """
    words: List[List[Input]] = []
    states = machine.states
    for idx, a in enumerate(states):
        for b in states[idx + 1 :]:
            word = distinguishing_word(machine, a, b)
            if word is not None and word not in words:
                words.append(word)
    if not words:
        words.append([machine.inputs[0]])
    return words


def transition_cover(machine: FSM) -> List[List[Input]]:
    """The set ``P``: the empty word plus access·input for every transition."""
    access = access_sequences(machine)
    cover: List[List[Input]] = [[]]
    for state, prefix in access.items():
        for i in machine.inputs:
            cover.append(prefix + [i])
    return cover


def w_method_suite(
    machine: FSM, extra_states: int = 0
) -> List[List[Input]]:
    """The W-method test suite ``P · I^{≤ extra_states} · W``.

    ``extra_states`` is the assumed bound on how many more states the
    implementation may have than the (minimised) reference; 0 suffices
    when the implementation's state space is known not to have grown —
    e.g. our datapath, whose ST-REG width is fixed by the superset.
    Duplicate words and words that are prefixes of other suite words are
    pruned (a prefix's outputs are checked by the longer run anyway).
    """
    reference = minimize(machine)
    cover = transition_cover(reference)
    wset = characterization_set(reference)

    middles: List[List[Input]] = [[]]
    frontier: List[List[Input]] = [[]]
    for _ in range(extra_states):
        frontier = [word + [i] for word in frontier for i in reference.inputs]
        middles.extend(frontier)

    suite = []
    seen = set()
    for prefix in cover:
        for middle in middles:
            for suffix in wset:
                word = tuple(prefix + middle + suffix)
                if word and word not in seen:
                    seen.add(word)
                    suite.append(list(word))

    # Prefix pruning: keep only maximal words.
    suite.sort(key=len, reverse=True)
    kept: List[List[Input]] = []
    kept_tuples: List[Tuple] = []
    for word in suite:
        tup = tuple(word)
        if not any(existing[: len(tup)] == tup for existing in kept_tuples):
            kept.append(word)
            kept_tuples.append(tup)
    return kept


def find_counterexample(
    first: FSM, second: FSM
) -> Optional[List[Input]]:
    """Shortest input word on which the two machines' outputs differ.

    ``None`` means behavioural equivalence (product-machine BFS, exact).
    Requires identical input alphabets.

    >>> from repro.workloads.library import ones_detector, zeros_detector
    >>> find_counterexample(ones_detector(), ones_detector()) is None
    True
    >>> word = find_counterexample(ones_detector(), zeros_detector())
    >>> ones_detector().run(word) != zeros_detector().run(word)
    True
    """
    if set(first.inputs) != set(second.inputs):
        raise ValueError("machines must share the input alphabet")
    start = (first.reset_state, second.reset_state)
    parents: Dict[Tuple[State, State], Tuple[Tuple[State, State], Input]] = {}
    seen = {start}
    queue = deque([start])
    while queue:
        pair = queue.popleft()
        a, b = pair
        for i in first.inputs:
            if first.output(i, a) != second.output(i, b):
                word = [i]
                node = pair
                while node != start:
                    node, step = parents[node]
                    word.append(step)
                word.reverse()
                return word
            nxt = (first.next_state(i, a), second.next_state(i, b))
            if nxt not in seen:
                seen.add(nxt)
                parents[nxt] = (pair, i)
                queue.append(nxt)
    return None


class Resettable(Protocol):
    """What conformance testing needs from a device under test."""

    def reset(self) -> None: ...

    def step(self, i: Input) -> Output: ...


class _HardwareAdapter:
    """Adapts :class:`~repro.hw.machine.HardwareFSM` to :class:`Resettable`."""

    def __init__(self, hw):
        self.hw = hw

    def reset(self) -> None:
        self.hw.cycle(reset=True)

    def step(self, i: Input) -> Output:
        return self.hw.step(i)


@dataclass
class VerificationResult:
    """Outcome of a conformance run."""

    passed: bool
    words_run: int
    symbols_run: int
    failures: List[Tuple[List[Input], List[Output], List[Output]]] = field(
        default_factory=list
    )

    def __bool__(self) -> bool:
        return self.passed


def run_suite(
    dut: Resettable, reference: FSM, suite: Sequence[Sequence[Input]]
) -> VerificationResult:
    """Run every suite word against the reference, reset between words."""
    with _span(
        "verify.conformance", reference=reference.name, words=len(suite)
    ) as sp:
        failures = []
        symbols = 0
        for word in suite:
            dut.reset()
            expected = reference.run(list(word))
            actual = [dut.step(i) for i in word]
            symbols += len(word)
            if actual != expected:
                failures.append((list(word), expected, actual))
        sp.attrs["symbols"] = symbols
        sp.attrs["failures"] = len(failures)
    _instruments.VERIFY_WORDS.inc(len(suite))
    _instruments.VERIFY_SYMBOLS.inc(symbols)
    if failures:
        _instruments.VERIFY_FAILURES.inc(len(failures))
    return VerificationResult(
        passed=not failures,
        words_run=len(suite),
        symbols_run=symbols,
        failures=failures,
    )


def verify_hardware(
    hw, reference: FSM, extra_states: int = 0
) -> VerificationResult:
    """Certify through I/O only that ``hw`` now implements ``reference``.

    The datapath's reset must already target the reference's reset state
    (run_program does this).  With the correct ``extra_states`` bound the
    verdict is exhaustive, not statistical.
    """
    suite = w_method_suite(reference, extra_states=extra_states)
    return run_suite(_HardwareAdapter(hw), reference, suite)
