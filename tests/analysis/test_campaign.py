"""Unit tests for the experiment campaign runner."""

import io

import pytest

from repro.analysis.campaign import Campaign, Factor, Results
from repro.core.jsr import jsr_length
from repro.workloads.mutate import workload_pair


class TestFactor:
    def test_rejects_empty_levels(self):
        with pytest.raises(ValueError):
            Factor("x", ())


class TestCampaign:
    def test_full_factorial_size(self):
        campaign = Campaign(
            "c",
            [Factor("a", (1, 2, 3)), Factor("b", ("x", "y"))],
            measure=lambda a, b, repeat: {"v": 0},
            repeats=2,
        )
        assert len(campaign.design_points()) == 6
        assert len(campaign.run()) == 12

    def test_rows_combine_factors_and_measurements(self):
        results = Campaign(
            "c",
            [Factor("n", (5,))],
            measure=lambda n, repeat: {"twice": 2 * n},
        ).run()
        row = results.rows[0]
        assert row == {"n": 5, "repeat": 0, "twice": 10}

    def test_repeat_passed_as_seed(self):
        results = Campaign(
            "c",
            [],
            measure=lambda repeat: {"r": repeat},
            repeats=3,
        ).run()
        assert [row["r"] for row in results.rows] == [0, 1, 2]

    def test_collision_detected(self):
        campaign = Campaign(
            "c",
            [Factor("x", (1,))],
            measure=lambda x, repeat: {"x": 9},
        )
        with pytest.raises(ValueError, match="collide"):
            campaign.run()

    def test_duplicate_factor_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            Campaign("c", [Factor("a", (1,)), Factor("a", (2,))],
                     measure=lambda a, repeat: {})

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            Campaign("c", [], measure=lambda repeat: {}, repeats=0)

    def test_real_measurement(self):
        """A miniature real sweep: JSR length over |Td|."""

        def measure(n_deltas, repeat):
            src, tgt = workload_pair(8, n_deltas, seed=repeat)
            return {"jsr": jsr_length(src, tgt)}

        results = Campaign(
            "jsr-sweep", [Factor("n_deltas", (2, 4))], measure, repeats=2
        ).run()
        for row in results.rows:
            assert row["jsr"] in (3 * row["n_deltas"],
                                  3 * (row["n_deltas"] + 1))


class TestResults:
    def _results(self):
        return Campaign(
            "c",
            [Factor("a", (1, 2))],
            measure=lambda a, repeat: {"v": a * 10 + repeat},
            repeats=2,
        ).run()

    def test_csv_roundtrip_string(self):
        results = self._results()
        text = results.to_csv()
        again = Results.from_csv(io.StringIO(text))
        assert again.rows == results.rows

    def test_csv_roundtrip_path(self, tmp_path):
        results = self._results()
        path = str(tmp_path / "r.csv")
        results.to_csv(path)
        again = Results.from_csv(path)
        assert again.rows == results.rows

    def test_columns_order(self):
        assert self._results().columns == ["a", "repeat", "v"]

    def test_summary_mean(self):
        summary = self._results().summary(by=["a"], value="v")
        assert summary == [
            {"a": 1, "mean(v)": 10.5},
            {"a": 2, "mean(v)": 20.5},
        ]

    def test_summary_other_aggs(self):
        results = self._results()
        assert results.summary(by=["a"], value="v", agg="max")[0][
            "max(v)"
        ] == 11
        assert results.summary(by=["a"], value="v", agg="count")[0][
            "count(v)"
        ] == 2

    def test_summary_unknown_agg(self):
        with pytest.raises(ValueError):
            self._results().summary(by=["a"], value="v", agg="magic")

    def test_filter(self):
        filtered = self._results().filter(a=2)
        assert len(filtered) == 2
        assert all(row["a"] == 2 for row in filtered.rows)
