"""The replication killswitch: one env var collapses every group.

``REPRO_DISABLE_REPLICATION`` is the operational big red button: a
fleet *configured* for N replicas builds single-replica groups in both
serving modes, with the log/serving contract otherwise intact — flip
the switch, restart the fleet, and the replication plane is gone
without touching a line of configuration.
"""

import os

import pytest

from repro.exec import killswitch
from repro.fleet import FSMFleet
from repro.replica import ReplicaConfig
from repro.workloads.library import sequence_detector


@pytest.fixture
def machine():
    return sequence_detector("1011")


class TestSwitchSurface:
    def test_replication_switch_is_registered(self):
        assert killswitch.REPLICATION in killswitch.SWITCHES
        assert killswitch.REPLICATION.env == "REPRO_DISABLE_REPLICATION"

    def test_disabled_reads_the_env_live(self, monkeypatch):
        monkeypatch.delenv("REPRO_DISABLE_REPLICATION", raising=False)
        assert not killswitch.REPLICATION.disabled()
        monkeypatch.setenv("REPRO_DISABLE_REPLICATION", "1")
        assert killswitch.REPLICATION.disabled()

    def test_active_lists_the_flipped_switch(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_REPLICATION", "1")
        assert "REPRO_DISABLE_REPLICATION" in killswitch.active()


class TestThreadModeCollapse:
    def test_configured_group_collapses_to_one_replica(
        self, machine, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DISABLE_REPLICATION", "1")
        pool = FSMFleet(
            machine, n_workers=2, replication=ReplicaConfig(n=3)
        )
        try:
            for status in pool.replicas().values():
                assert status.n == 1
                assert status.quorum == 1
                assert status.quorum_ok
            # Serving still works on the collapsed group.
            out = pool.submit(0, list("1011")).result(timeout=30)
            assert out == machine.run(list("1011"))
        finally:
            pool.close()

    def test_without_the_switch_the_group_is_full_size(
        self, machine, monkeypatch
    ):
        monkeypatch.delenv("REPRO_DISABLE_REPLICATION", raising=False)
        pool = FSMFleet(
            machine, n_workers=1, replication=ReplicaConfig(n=3)
        )
        try:
            assert pool.replicas()[0].n == 3
        finally:
            pool.close()


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="no /dev/shm for the process fleet's shared-memory tables",
)
class TestProcessModeCollapse:
    def test_one_worker_process_per_shard_under_the_switch(
        self, machine, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DISABLE_REPLICATION", "1")
        pool = FSMFleet(
            machine,
            n_workers=2,
            fleet_mode="process",
            replication=ReplicaConfig(n=3),
        )
        try:
            for pids in pool.replica_pids().values():
                assert list(pids) == ["r0"]
            for status in pool.replicas().values():
                assert status.n == 1
                assert status.quorum_ok
            out = pool.submit(0, list("1011")).result(timeout=30)
            assert out == machine.run(list("1011"))
        finally:
            pool.close()
