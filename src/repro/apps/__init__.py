"""Application-level systems built on the reconfigurable-FSM stack."""

from .string_match import PatternMatcher, SwapRecord, count_matches

__all__ = ["PatternMatcher", "SwapRecord", "count_matches"]
