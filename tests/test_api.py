"""Tests for the stable public facade (repro.api).

The facade is the supported surface: one keyword-only ``Options``
bundle, one function per end-to-end flow, old entry points demoted to
``DeprecationWarning`` shims, and a curated ``repro.__all__``.
"""

import warnings

import pytest

import repro
from repro import api
from repro.core.program import Program
from repro.engine import CompiledFSM, EngineError
from repro.hw.machine import HardwareFSM
from repro.workloads.library import fig6_m, fig6_m_prime
from repro.workloads.suite import traffic_words


class TestOptions:
    def test_keyword_only(self):
        with pytest.raises(TypeError):
            api.Options("ea")

    def test_defaults(self):
        opts = api.Options()
        assert opts.method == "ea"
        assert opts.opt_level is None
        assert opts.seed == 0
        assert opts.metrics is False
        assert opts.engine == "auto"
        assert opts.backend is None
        assert opts.extra_states == 0

    def test_backend_pin_canonicalised(self):
        assert api.Options(backend="python").backend == "table-py"
        assert api.Options(backend="off").backend == "cycle"
        assert api.Options(backend="table-py").backend == "table-py"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown execution backend"):
            api.Options(backend="cuda")

    def test_execution_prefers_the_pin(self):
        assert api.Options().execution == "auto"
        assert api.Options(engine="python").execution == "python"
        assert api.Options(engine="off", backend="python").execution == \
            "table-py"

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            api.Options(method="simulated-annealing")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            api.Options(engine="cuda")

    def test_negative_extra_states_rejected(self):
        with pytest.raises(ValueError):
            api.Options(extra_states=-1)

    def test_opt_level_spellings_normalised(self):
        assert api.Options(opt_level=2).opt_level == "O2"
        assert api.Options(opt_level="-O1").opt_level == "O1"
        assert api.Options(opt_level="o0").opt_level == "O0"
        with pytest.raises(ValueError):
            api.Options(opt_level="O9")

    def test_frozen(self):
        opts = api.Options()
        with pytest.raises(Exception):
            opts.method = "jsr"

    def test_non_options_rejected_by_facade(self):
        with pytest.raises(TypeError):
            api.synthesise(fig6_m(), fig6_m_prime(), options={"method": "ea"})


class TestFacadeFlows:
    def test_synthesise_every_method_is_valid(self):
        source, target = fig6_m(), fig6_m_prime()
        for method in api.METHODS:
            program = api.synthesise(
                source, target, options=api.Options(method=method, seed=1)
            )
            assert isinstance(program, Program)
            assert program.is_valid()

    def test_synthesise_applies_opt_level(self):
        source, target = fig6_m(), fig6_m_prime()
        baseline = api.synthesise(
            source, target, options=api.Options(method="jsr")
        )
        optimized = api.synthesise(
            source, target, options=api.Options(method="jsr", opt_level="O2")
        )
        assert optimized.is_valid()
        assert len(optimized) <= len(baseline)

    def test_optimise_defaults_to_o2(self):
        source, target = fig6_m(), fig6_m_prime()
        program = api.synthesise(
            source, target, options=api.Options(method="jsr")
        )
        shorter, report = api.optimise(program)
        assert shorter.is_valid()
        assert len(shorter) <= len(program)
        assert report.steps_after == len(shorter)

    def test_migrate_verifies_on_hardware(self):
        outcome = api.migrate(
            fig6_m(), fig6_m_prime(),
            options=api.Options(method="jsr", opt_level="O1"),
        )
        assert outcome.verified
        assert bool(outcome)
        assert outcome.hardware.realises(fig6_m_prime())
        assert outcome.program.is_valid()

    def test_verify_conformance_through_the_ports(self):
        outcome = api.verify(
            fig6_m(), fig6_m_prime(), options=api.Options(method="jsr")
        )
        assert outcome.passed
        assert bool(outcome)
        assert outcome.suite_size > 0

    def test_serve_returns_a_working_fleet(self):
        machine = fig6_m()
        with api.serve(
            machine, n_workers=2, options=api.Options(engine="python")
        ) as fleet:
            assert fleet.engine == "python"
            word = traffic_words(machine, 1, 8, seed=0)[0]
            assert fleet.submit("k", word).result(timeout=10) == \
                machine.run(word)

    def test_compile_fsm_from_behavioural_machine(self):
        compiled = api.compile_fsm(
            fig6_m(), options=api.Options(engine="python")
        )
        assert isinstance(compiled, CompiledFSM)
        assert compiled.realises(fig6_m())

    def test_compile_fsm_from_hardware(self):
        hw = HardwareFSM(fig6_m())
        compiled = api.compile_fsm(hw, options=api.Options(engine="python"))
        assert compiled.realises(fig6_m())
        assert compiled.source_version == hw.table_version

    def test_compile_fsm_honours_backend_pin(self):
        compiled = api.compile_fsm(
            fig6_m(), options=api.Options(backend="table-py")
        )
        assert compiled.backend == "python"

    def test_serve_honours_backend_pin(self):
        machine = fig6_m()
        with api.serve(
            machine, n_workers=1, options=api.Options(backend="python")
        ) as fleet:
            word = traffic_words(machine, 1, 8, seed=0)[0]
            assert fleet.submit("k", word).result(timeout=10) == \
                machine.run(word)

    def test_compile_fsm_rejects_engine_off(self):
        with pytest.raises(EngineError):
            api.compile_fsm(fig6_m(), options=api.Options(engine="off"))
        with pytest.raises(EngineError):
            api.compile_fsm(fig6_m(), options=api.Options(backend="cycle"))

    def test_compile_fsm_rejects_other_types(self):
        with pytest.raises(TypeError):
            api.compile_fsm("not a machine")


class TestDeprecatedShims:
    def test_suite_synthesise_program_warns_and_delegates(self):
        from repro.workloads.suite import synthesise_program

        source, target = fig6_m(), fig6_m_prime()
        with pytest.warns(DeprecationWarning, match="repro.api.synthesise"):
            program = synthesise_program("jsr", source, target)
        assert program.is_valid()
        # identical result to the facade call it delegates to
        assert program.steps == api.synthesise(
            source, target, options=api.Options(method="jsr")
        ).steps

    def test_facade_itself_never_warns(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            api.synthesise(
                fig6_m(), fig6_m_prime(), options=api.Options(method="jsr")
            )


class TestCuratedAll:
    def test_facade_names_exported_from_repro(self):
        for name in (
            "api", "Options", "MigrationOutcome", "VerificationOutcome",
            "synthesise", "optimise", "migrate", "verify", "serve",
            "compile_fsm",
        ):
            assert name in repro.__all__
            assert getattr(repro, name) is not None

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_methods_registry_is_canonical(self):
        from repro.workloads import suite

        assert suite.METHODS is api.METHODS
