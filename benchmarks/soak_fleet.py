"""Fleet soak smoke: sustained traffic, one rolling migration, no drops.

Runs a 4-worker fleet under continuous synthetic traffic for a wall-time
budget (default 30 s), performs one rolling migration mid-soak, and
asserts at exit:

* **no dropped shards** — every worker thread is alive the whole run and
  still serving at the end (a post-soak batch on every shard succeeds);
* every submitted batch resolved (backpressure rejections are retried,
  so nothing is silently lost);
* the migration hardware-verified on all shards with zero
  probe-measured service downtime.

The soak runs with ``-O2``-optimized migration plans by default, so the
zero-downtime gate covers the pass pipeline's rewritten chunk plans, not
just the textbook ones (use ``--opt-level O0`` to soak the baseline).

Used by the CI ``fleet-soak`` job; run locally with
``python benchmarks/soak_fleet.py --seconds 5``.
"""

from __future__ import annotations

import argparse
import sys
import threading
import time

from repro.fleet import FleetOverloaded, FSMFleet, MigrationScheduler
from repro.workloads.suite import suite_pair, traffic_words

WORKLOAD = "ctrl/pattern-1011-to-0110"
WORKERS = 4
BATCH = 16


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seconds", type=float, default=30.0)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--opt-level", default="O2")
    parser.add_argument(
        "--engine", default="auto",
        choices=("auto", "numpy", "python", "off"),
        help="batch-engine mode for the serving hot path (default auto, "
             "so the soak covers coalesced engine serving)",
    )
    args = parser.parse_args(argv)

    source, target = suite_pair(WORKLOAD)
    common = [i for i in source.inputs if i in set(target.inputs)]
    fleet = FSMFleet(
        source, n_workers=WORKERS, family=[target], queue_depth=32,
        opt_level=args.opt_level, engine=args.engine, name="soak",
    )
    scheduler = MigrationScheduler(fleet, stall_budget=12)
    holder: dict = {}

    def rollout() -> None:
        try:
            holder["report"] = scheduler.rollout(target)
        except Exception as exc:  # pragma: no cover - soak diagnostics
            holder["error"] = exc

    thread = threading.Thread(target=rollout, daemon=True)
    deadline = time.monotonic() + args.seconds
    migrate_at = time.monotonic() + args.seconds / 3
    futures = []
    submitted = retries = 0
    words = iter([])
    while time.monotonic() < deadline:
        if not thread.is_alive() and "report" not in holder \
                and "error" not in holder and time.monotonic() >= migrate_at:
            thread.start()
        try:
            word = next(words)
        except StopIteration:
            words = iter(traffic_words(
                source, 512, BATCH, seed=args.seed + submitted,
                inputs=common,
            ))
            word = next(words)
        try:
            futures.append(fleet.submit(submitted, word))
            submitted += 1
        except FleetOverloaded:
            retries += 1
            time.sleep(0.001)

    thread.join(timeout=60)
    fleet.drain()

    failures = []
    if "error" in holder:
        failures.append(f"rollout raised: {holder['error']}")
    report = holder.get("report")
    if report is None:
        failures.append("rollout never completed")
    else:
        if not report.verified:
            failures.append("rollout not hardware-verified on all shards")
        if not report.zero_downtime:
            failures.append(
                f"service downtime {report.service_downtime_cycles} != 0"
            )
    dead = [s.index for s in fleet.shards if not s.is_alive()]
    if dead:
        failures.append(f"dropped shards (threads dead): {dead}")
    unresolved = sum(1 for f in futures if not f.done())
    if unresolved:
        failures.append(f"{unresolved} batches never resolved")
    errored = 0
    for future in futures:
        if future.done() and future.exception() is not None:
            errored += 1
    if errored:
        failures.append(f"{errored} batches errored")
    # every shard still serves after the soak (post-soak liveness probe)
    for shard in fleet.shards:
        probe_word = [common[0]] * 4
        try:
            # craft a key that routes to this specific shard
            key = next(
                k for k in range(10_000)
                if fleet.shard_for(k) == shard.index
            )
            fleet.submit(key, probe_word).result(timeout=10)
        except Exception as exc:
            failures.append(f"shard {shard.index} not serving: {exc}")

    totals = fleet.totals()
    fleet.close()
    print(
        f"soak (-{fleet.plan_cache.opt_level}, engine={fleet.engine}): "
        f"{args.seconds:.0f}s, {submitted} batches "
        f"({totals.symbols_served} symbols), {retries} backpressure "
        f"retries, {totals.incidents} incidents, migration cycles "
        f"{totals.migration_cycles}, service downtime "
        f"{totals.service_downtime_cycles}, engine symbols "
        f"{totals.engine_symbols} ({totals.engine_fallbacks} fallbacks)"
    )
    if failures:
        for failure in failures:
            print(f"SOAK FAILURE: {failure}", file=sys.stderr)
        return 1
    print("soak OK: no dropped shards, rollout verified, zero downtime")
    return 0


if __name__ == "__main__":
    sys.exit(main())
