"""The multi-stream execution plane: one kernel, many independent FSMs.

A single FSM stream is inherently sequential — each step needs the
previous step's state — so vectorizing *within* one stream buys
nothing (``BENCH_engine_throughput.json`` showed the per-symbol numpy
path losing to the pure-Python loop).  The axis that does amortize is
*across* streams: a ``(n_streams, n_symbols)`` batch of independent
sessions stepped together, one table gather serving every stream at
once — the paper's Fig. 5 table-lookup datapath replicated across
lanes instead of across clock edges.

Three pieces make that the first-class unit of work:

* :class:`StreamTables` — a :class:`~repro.engine.CompiledFSM` re-packed
  for lane gathers.  State-major flat layout
  (``state * n_inputs + symbol``), entries *pre-scaled* by ``n_inputs``
  so the per-step address is a single add, and dtype-packed into the
  smallest of ``uint8`` / ``uint16`` / ``int32`` that holds the padded
  address space — a 4-state binary machine's tables fit entirely in a
  handful of cache lines.  The signed sentinels of the compiled view
  are remapped to unsigned codes: an unset F-word becomes a
  *self-trapping hole* (``hole_base``) whose pad rows keep a trapped
  lane parked until retirement, an unset G-word becomes ``out_none``
  (legal: output ``None``) and an undecodable G-word becomes
  ``out_garbage`` (raises).  The trap design removes every per-step
  validity check from the kernel: holes are detected by one vectorized
  scan of the final states, garbage by one scan of the gathered
  outputs — and both scans are skipped entirely for complete tables.
* :class:`StreamBatch` — the encoded form of many input words: per-lane
  code lists plus (lazily, for the numpy kernel) a time-major code
  matrix with lanes sorted by length descending, so ragged batches run
  with a shrinking *active prefix* instead of per-step masks.  Encoding
  is the expensive per-symbol Python work; a batch encodes **once** and
  replays against any machine sharing the same input alphabet — the EA
  evaluates a whole population against one encoded trace set.
* :class:`StreamRun` — the lazy result.  The kernel materialises only
  the address matrix and final states; outputs, visit counts and
  per-stream :class:`~repro.engine.WordRun` views are derived on
  demand, so callers that only need final states (fitness evaluation,
  session serving that defers decode) never pay for them.

Semantics match the sequential engine exactly: for every stream,
``run_streams(words)[i]`` is bit-identical to ``run_word(words[i])`` —
outputs, final state and visit counts — and any stream that would make
``run_word`` raise makes the whole batch raise (callers replay
per-stream to reproduce the exact per-stream error; the fleet's
``TableMiss`` path does exactly that).  The pure-Python fallback *is*
a ``run_word`` loop, so the equivalence holds with or without numpy.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..core.fsm import Input, Output, State
from .compiled import (
    _GARBAGE,
    CompiledFSM,
    EngineError,
    UnconfiguredEntry,
    WordRun,
    _numpy,
)

__all__ = [
    "StreamBatch",
    "StreamRun",
    "StreamTables",
    "stream_dtype_name",
]

#: The packed dtypes, narrowest first; the packer picks the first that
#: holds the padded address space (and the output sentinel codes).
_DTYPE_CEILINGS = (("uint8", 0xFF), ("uint16", 0xFFFF), ("int32", 0x7FFFFFFF))


def stream_dtype_name(n_inputs: int, n_states: int, n_outputs: int) -> str:
    """The packed dtype the stream plane would pick for this geometry.

    Exposed for capability reporting (``repro backends``) and tests;
    mirrors :meth:`StreamTables.from_compiled` exactly.
    """
    size = n_inputs * n_states
    maxval = max(size + n_inputs, n_outputs + 1)
    for name, ceiling in _DTYPE_CEILINGS:
        if maxval <= ceiling:
            return name
    raise EngineError(
        f"table of {size} entries exceeds the int32 stream-plane packing"
    )


class StreamTables:
    """A compiled view re-packed for the lane-gather kernel.

    Flat state-major layout ``state * n_inputs + symbol`` with every
    next-state entry pre-scaled by ``n_inputs``, so one step of the
    kernel is exactly two array calls: ``add(states, symbols) -> addr``
    then ``take(next, addr) -> states``.  See the module docstring for
    the sentinel remap and the self-trapping hole pad.
    """

    __slots__ = (
        "dtype",
        "dtype_name",
        "n_inputs",
        "n_states",
        "n_outputs",
        "size",
        "hole_base",
        "safe_addr",
        "out_none",
        "out_garbage",
        "next_padded",
        "out_padded",
        "complete",
        "has_garbage",
    )

    def __init__(self, compiled: CompiledFSM):
        np = _numpy()
        if np is None:
            raise EngineError(
                "the packed stream tables need numpy (pure-Python stream "
                "runs go through the run_word loop instead)"
            )
        n_i = compiled.n_inputs
        n_s = compiled.n_states
        n_o = len(compiled.outputs)
        size = n_i * n_s
        self.n_inputs = n_i
        self.n_states = n_s
        self.n_outputs = n_o
        self.size = size
        #: A lane whose (scaled) state reaches ``hole_base`` hit an
        #: unserveable F-entry; the pad rows keep it parked there.
        self.hole_base = size
        #: Address the padded matrices are initialised with: reads as
        #: ``out_none``, so retired/ragged cells pass every check.
        self.safe_addr = size + n_i
        self.out_none = n_o
        self.out_garbage = n_o + 1
        self.dtype_name = stream_dtype_name(n_i, n_s, n_o)
        self.dtype = np.dtype(self.dtype_name)
        padded = size + n_i + 1
        nxt = np.full(padded, self.hole_base, dtype=self.dtype)
        out = np.full(padded, self.out_none, dtype=self.dtype)
        src_next = compiled.next_table
        src_out = compiled.out_table
        complete = True
        has_garbage = False
        for s_code in range(n_s):
            row = s_code * n_i
            for i_code in range(n_i):
                src_addr = i_code * n_s + s_code  # compiled is input-major
                ns = src_next[src_addr]
                oc = src_out[src_addr]
                if ns >= 0:
                    nxt[row + i_code] = ns * n_i
                else:
                    complete = False  # stays hole_base (self-trapping)
                if oc >= 0:
                    out[row + i_code] = oc
                elif oc == _GARBAGE:
                    out[row + i_code] = self.out_garbage
                    has_garbage = True
                # oc == _UNSET stays out_none: a None output is legal.
        self.next_padded = nxt
        self.out_padded = out
        self.complete = complete
        self.has_garbage = has_garbage

    def __repr__(self) -> str:
        return (
            f"StreamTables({self.n_states} states x {self.n_inputs} "
            f"inputs, dtype={self.dtype_name}, complete={self.complete})"
        )


class StreamBatch:
    """Many input words, encoded once for replay on the stream plane.

    Holds the per-lane code lists (original submission order) plus —
    built lazily, only when a numpy kernel asks — the time-major code
    matrix with lanes sorted by length descending (ragged batches run
    with a shrinking active prefix, no per-step masks).  A batch is
    bound to an *input alphabet*, not to a machine: any compiled view
    with the identical ``inputs`` tuple can run it, which is how a
    population of EA candidates shares one encoded trace set.
    """

    __slots__ = (
        "inputs",
        "words",
        "code_words",
        "lengths",
        "order",
        "_matrix",
        "_lengths_sorted",
    )

    def __init__(
        self,
        inputs: Tuple[Input, ...],
        words: Optional[Sequence[Sequence[Input]]],
        code_words: List[List[int]],
    ):
        self.inputs = tuple(inputs)
        self.words = list(words) if words is not None else None
        self.code_words = code_words
        self.lengths = [len(w) for w in code_words]
        #: Sorted-lane position -> original stream index (length desc,
        #: stable, so equal-length streams keep submission order).
        self.order = sorted(
            range(len(code_words)), key=lambda i: -self.lengths[i]
        )
        self._matrix = None
        self._lengths_sorted = None

    @classmethod
    def encode(
        cls,
        inputs: Sequence[Input],
        words: Sequence[Sequence[Input]],
    ) -> "StreamBatch":
        """Encode ``words`` against ``inputs`` (the per-symbol Python
        cost paid exactly once per batch)."""
        inputs = tuple(inputs)
        code_of = {sym: code for code, sym in enumerate(inputs)}
        code_words: List[List[int]] = []
        for word in words:
            try:
                code_words.append([code_of[sym] for sym in word])
            except KeyError:
                bad = next(sym for sym in word if sym not in code_of)
                raise EngineError(
                    f"input symbol {bad!r} not in the compiled alphabet"
                ) from None
        return cls(inputs, words, code_words)

    @property
    def n(self) -> int:
        return len(self.code_words)

    def __len__(self) -> int:
        return len(self.code_words)

    @property
    def n_symbols(self) -> int:
        return sum(self.lengths)

    @property
    def horizon(self) -> int:
        return max(self.lengths) if self.lengths else 0

    def matrix(self, np) -> Tuple[Any, List[int]]:
        """``(time-major code matrix, sorted lengths)`` for the kernel.

        The matrix is ``(horizon, n)`` in the smallest unsigned dtype
        holding the input codes; column ``j`` is stream
        ``self.order[j]``.  Cells beyond a lane's length stay zero and
        are never stepped (the active prefix shrinks past them).
        """
        if self._matrix is None:
            n_i = len(self.inputs)
            dtype = np.dtype(stream_dtype_name(1, max(n_i, 1), 0))
            mat = np.zeros((self.horizon, self.n), dtype=dtype)
            lengths_sorted = []
            for j, idx in enumerate(self.order):
                codes = self.code_words[idx]
                lengths_sorted.append(len(codes))
                if codes:
                    mat[: len(codes), j] = codes
            self._matrix = mat
            self._lengths_sorted = lengths_sorted
        return self._matrix, self._lengths_sorted

    def __repr__(self) -> str:
        return (
            f"StreamBatch({self.n} streams, {self.n_symbols} symbols, "
            f"horizon={self.horizon})"
        )


class ExpectedOutputs:
    """Expected output words, encoded once against an output alphabet.

    The vectorized counterpart of comparing ``run.outputs`` to an
    expected word symbol by symbol: encode the expectation *once*,
    then :meth:`StreamRun.match_counts` scores every replay of the
    same :class:`StreamBatch` as one whole-matrix equality — the EA's
    population-scoring path, which never pays the per-symbol
    materialisation cost.  ``None`` expects the no-output sentinel; a
    symbol outside the alphabet matches nothing; positions beyond
    either the produced or the expected word do not count.
    """

    __slots__ = ("outputs", "words", "code_words", "_matrix", "_matrix_for")

    def __init__(
        self,
        outputs: Sequence[Output],
        words: Sequence[Sequence[Optional[Output]]],
    ):
        self.outputs = tuple(outputs)
        self.words = [list(word) for word in words]
        none_code = len(self.outputs)
        code_of = {sym: code for code, sym in enumerate(self.outputs)}
        self.code_words = [
            [
                none_code if sym is None else code_of.get(sym, -1)
                for sym in word
            ]
            for word in self.words
        ]
        self._matrix = None
        self._matrix_for = None

    def matrix(self, np, batch: "StreamBatch"):
        """Time-major expected-code matrix aligned with ``batch``'s
        lane order; ``-1`` (matches nothing) pads beyond each lane's
        ``min(len(expected), len(word))``."""
        if self._matrix is None or self._matrix_for is not batch:
            if len(self.code_words) != batch.n:
                raise EngineError(
                    f"{len(self.code_words)} expected words for "
                    f"{batch.n} streams"
                )
            mat = np.full((batch.horizon, batch.n), -1, dtype=np.int32)
            _, lengths_sorted = batch.matrix(np)
            for j, idx in enumerate(batch.order):
                codes = self.code_words[idx][: lengths_sorted[j]]
                if codes:
                    mat[: len(codes), j] = codes
            self._matrix = mat
            self._matrix_for = batch
        return self._matrix

    def __repr__(self) -> str:
        return f"ExpectedOutputs({len(self.code_words)} words)"


class StreamRun:
    """The (lazily materialised) result of one stream-batch run.

    The numpy kernel stores only the address matrix and the per-lane
    final (scaled) states; :meth:`final_states`, :meth:`outputs`,
    :meth:`visits` and :meth:`word_runs` derive everything else on
    demand and cache it.  The pure-Python path wraps the eager
    :class:`~repro.engine.WordRun` list behind the same surface.
    """

    __slots__ = (
        "_compiled",
        "_batch",
        "_tables",
        "_amat",
        "_final_scaled",
        "_omat",
        "_runs",
        "_finals",
    )

    def __init__(
        self,
        compiled: CompiledFSM,
        batch: StreamBatch,
        tables: Optional[StreamTables] = None,
        amat=None,
        final_scaled=None,
        omat=None,
        runs: Optional[List[WordRun]] = None,
    ):
        self._compiled = compiled
        self._batch = batch
        self._tables = tables
        self._amat = amat
        self._final_scaled = final_scaled
        self._omat = omat
        self._runs = runs
        self._finals: Optional[List[State]] = None

    @property
    def n(self) -> int:
        return self._batch.n

    def __len__(self) -> int:
        return self._batch.n

    # -- materialisation ----------------------------------------------
    def final_states(self) -> List[State]:
        """Per-stream final states, in submission order."""
        if self._finals is None:
            if self._runs is not None:
                self._finals = [run.final_state for run in self._runs]
            else:
                n_i = self._tables.n_inputs
                states = self._compiled.states
                finals: List[Optional[State]] = [None] * self._batch.n
                codes = (self._final_scaled // n_i).tolist()
                for j, idx in enumerate(self._batch.order):
                    finals[idx] = states[codes[j]]
                self._finals = finals  # type: ignore[assignment]
        return self._finals

    def outputs(self) -> List[List[Optional[Output]]]:
        """Per-stream output words, in submission order."""
        return [run.outputs for run in self.word_runs()]

    def visits(self) -> List[Dict[State, int]]:
        """Per-stream post-transition visit counts (``run_word``
        semantics), in submission order."""
        return [run.visits for run in self.word_runs()]

    def match_counts(self, expected: ExpectedOutputs) -> List[int]:
        """Per-stream count of output positions equal to the
        expectation, in submission order.

        On the numpy kernel this is one whole-matrix equality over the
        packed output codes — no per-symbol Python work at all; the
        pure-Python path compares the eager runs symbol by symbol with
        identical semantics.
        """
        if len(expected.words) != self._batch.n:
            raise EngineError(
                f"{len(expected.words)} expected-output words for "
                f"{self._batch.n} streams"
            )
        if self._runs is not None or self._tables is None:
            return [
                sum(
                    1
                    for got, want in zip(run.outputs, word)
                    if got == want
                )
                for run, word in zip(self.word_runs(), expected.words)
            ]
        np = _numpy()
        if self._omat is None:
            self._omat = self._tables.out_padded.take(self._amat)
        emat = expected.matrix(np, self._batch)
        counts_sorted = (self._omat == emat).sum(axis=0).tolist()
        counts = [0] * self._batch.n
        for j, idx in enumerate(self._batch.order):
            counts[idx] = int(counts_sorted[j])
        return counts

    def word_runs(self) -> List[WordRun]:
        """The per-stream :class:`WordRun` views, in submission order."""
        if self._runs is None:
            self._runs = self._materialise()
        return self._runs

    def _materialise(self) -> List[WordRun]:
        np = _numpy()
        tables = self._tables
        batch = self._batch
        sym, lengths_sorted = batch.matrix(np)
        if self._omat is None:
            self._omat = tables.out_padded.take(self._amat)
        omat = self._omat
        n_i = tables.n_inputs
        out_none = tables.out_none
        out_syms: List[Optional[Output]] = (
            list(self._compiled.outputs) + [None, None]
        )
        state_syms = self._compiled.states
        finals = self.final_states()
        runs: List[Optional[WordRun]] = [None] * batch.n
        for j, idx in enumerate(batch.order):
            length = lengths_sorted[j]
            if length == 0:
                runs[idx] = WordRun(
                    outputs=[], final_state=finals[idx], visits={}
                )
                continue
            o_codes = omat[:length, j].tolist()
            outputs = [
                None if code == out_none else out_syms[code]
                for code in o_codes
            ]
            # Post-transition states: the pre-state of step t+1 is the
            # post-state of step t (addr - symbol = scaled pre-state),
            # and the last step's post-state is the lane's final.
            post = np.empty(length, dtype=np.int64)
            if length > 1:
                post[: length - 1] = (
                    self._amat[1:length, j].astype(np.int64)
                    - sym[1:length, j]
                )
            post[length - 1] = int(self._final_scaled[j])
            counts = np.bincount(
                post // n_i, minlength=tables.n_states
            )
            visits = {
                state_syms[code]: int(count)
                for code, count in enumerate(counts.tolist())
                if count
            }
            runs[idx] = WordRun(
                outputs=outputs, final_state=finals[idx], visits=visits
            )
        return runs  # type: ignore[return-value]

    def __repr__(self) -> str:
        return f"StreamRun({self._batch.n} streams)"


# ---------------------------------------------------------------------
# Kernel entry points (bound as CompiledFSM methods in compiled.py)
# ---------------------------------------------------------------------

Starts = Union[None, State, Sequence[Optional[State]]]


def _start_codes(compiled: CompiledFSM, n: int, starts: Starts) -> List[int]:
    """Per-stream start-state codes (submission order)."""
    if starts is None or isinstance(starts, (str, bytes)) or not _is_seq(
        starts
    ):
        code = compiled._st_code(
            compiled.reset_state if starts is None else starts
        )
        return [code] * n
    if len(starts) != n:
        raise ValueError(
            f"{len(starts)} start states for {n} streams"
        )
    reset = compiled._st_code(compiled.reset_state)
    return [
        reset if s is None else compiled._st_code(s) for s in starts
    ]


def _is_seq(value) -> bool:
    try:
        len(value)
    except TypeError:
        return False
    return not isinstance(value, (str, bytes))


def run_stream_batch(
    compiled: CompiledFSM, batch: StreamBatch, starts: Starts = None
) -> StreamRun:
    """Run an encoded batch; see :meth:`CompiledFSM.run_stream_batch`."""
    if batch.inputs != compiled.inputs:
        raise EngineError(
            "stream batch was encoded against a different input "
            f"alphabet ({batch.inputs!r} != {compiled.inputs!r})"
        )
    start_codes = _start_codes(compiled, batch.n, starts)
    np = _numpy()
    if compiled.backend == "numpy" and np is not None:
        return _run_numpy(compiled, batch, start_codes, np)
    return _run_python(compiled, batch, start_codes)


def _run_python(
    compiled: CompiledFSM, batch: StreamBatch, start_codes: List[int]
) -> StreamRun:
    """Per-stream ``run_word`` loop: the always-available fallback,
    bit-identical by construction (it *is* the sequential engine)."""
    states = compiled.states
    runs: List[WordRun] = []
    if batch.words is not None:
        for word, code in zip(batch.words, start_codes):
            runs.append(compiled.run_word(word, start=states[code]))
    else:  # encoded-only batch: replay through the input symbols
        inputs = compiled.inputs
        for codes, code in zip(batch.code_words, start_codes):
            word = [inputs[c] for c in codes]
            runs.append(compiled.run_word(word, start=states[code]))
    return StreamRun(compiled, batch, runs=runs)


def _run_numpy(
    compiled: CompiledFSM,
    batch: StreamBatch,
    start_codes: List[int],
    np,
) -> StreamRun:
    """The two-calls-per-step lane kernel (see module docstring)."""
    tables = compiled.stream_tables()
    n = batch.n
    if n == 0:
        return StreamRun(
            compiled,
            batch,
            tables=tables,
            amat=np.zeros((0, 0), dtype=tables.dtype),
            final_scaled=np.zeros(0, dtype=tables.dtype),
        )
    sym, lengths_sorted = batch.matrix(np)
    horizon = batch.horizon
    n_i = tables.n_inputs
    dtype = tables.dtype
    nxt = tables.next_padded
    # Scaled start states, in sorted-lane order.
    states = np.empty(n, dtype=dtype)
    for j, idx in enumerate(batch.order):
        states[j] = start_codes[idx] * n_i
    amat = np.full((horizon, n), tables.safe_addr, dtype=dtype)
    final_scaled = np.empty(n, dtype=dtype)
    # Bound methods and mode="clip" shave ~4x off the per-step cost;
    # clip never actually clips — every address is in range by
    # construction (scaled state <= hole_base, symbol < n_inputs, and
    # hole_base + n_inputs < padded length).
    add = np.add
    take = nxt.take
    active = n
    t = 0
    while active:
        # Lanes are sorted by length descending, so retirement is
        # always a suffix: run unsliced full-width steps until the
        # shortest live lane's word ends, then shrink the prefix.
        seg_end = lengths_sorted[active - 1]
        if active == n:
            for row, sym_t in zip(amat[t:seg_end], sym[t:seg_end]):
                add(states, sym_t, out=row)
                take(row, out=states, mode="clip")
            t = seg_end
        else:
            s = states[:active]
            rows = zip(
                amat[t:seg_end, :active], sym[t:seg_end, :active]
            )
            for row, sym_t in rows:
                add(s, sym_t, out=row)
                take(row, out=s, mode="clip")
            t = seg_end
        # Retire the whole finished suffix with one slice copy.
        lo = active
        while lo and lengths_sorted[lo - 1] <= t:
            lo -= 1
        final_scaled[lo:active] = states[lo:active]
        active = lo
    omat = None
    if not tables.complete:
        # A lane that hit an unserveable F-entry was parked on the
        # self-trapping hole pad; one vectorized scan finds it.
        trapped = final_scaled >= tables.hole_base
        if trapped.any():
            lane = int(np.argmax(trapped))
            raise UnconfiguredEntry(
                f"stream {batch.order[lane]}: an entry is not "
                "serveable by the compiled view"
            )
    if tables.has_garbage:
        omat = tables.out_padded.take(amat)
        bad = omat > tables.out_none
        if bad.any():
            t_bad, lane = np.unravel_index(
                int(np.argmax(bad)), bad.shape
            )
            raise UnconfiguredEntry(
                f"stream {batch.order[int(lane)]} step {int(t_bad)}: "
                "entry holds a garbage code the datapath would refuse"
            )
    return StreamRun(
        compiled,
        batch,
        tables=tables,
        amat=amat,
        final_scaled=final_scaled,
        omat=omat,
    )
