"""Property-based tests (hypothesis) for the optimization pass pipeline.

The pipeline's contract, checked on randomly drawn migrations across
every synthesiser and every opt level:

* the optimized program still **replays validly** and realises the
  target (the replay gate is not just present but sufficient);
* the optimized program is **never longer** than its input and never
  costs more write cycles;
* optimization is **idempotent at a fixpoint**: re-running ``-O2`` on an
  already ``-O2``-optimized program changes nothing;
* the optimized chunk plan keeps the blend invariant at every chunk
  boundary and still migrates.
"""

from hypothesis import assume, given, settings, strategies as st

from repro.core.incremental import (
    chunks_to_program,
    incremental_chunks,
    is_blend,
)
from repro.core.optimal import SearchLimitExceeded, optimal_program
from repro.core.passes import OPT_LEVELS, optimise_chunks, optimise_program
from repro.core.program import ReplayMachine
from repro.fleet.plancache import order_chunks
from repro import api
from repro.workloads.mutate import grow_target, mutate_target
from repro.workloads.random_fsm import random_fsm

# the exact search blows up on larger random instances; property-test the
# heuristics everywhere and the exact optimiser implicitly via its unit
# tests (it rarely leaves anything for the passes to find anyway)
_PROPERTY_METHODS = tuple(m for m in api.METHODS if m != "optimal")


def _synthesise(method, source, target, seed):
    return api.synthesise(
        source, target, options=api.Options(method=method, seed=seed)
    )


@st.composite
def migrations(draw, max_states=7):
    """A (source, target) pair derived by mutation and/or growth."""
    source = random_fsm(
        n_states=draw(st.integers(2, max_states)),
        n_inputs=draw(st.integers(1, 3)),
        n_outputs=draw(st.integers(2, 3)),
        seed=draw(st.integers(0, 10_000)),
    )
    capacity = len(source.inputs) * len(source.states)
    n_deltas = draw(st.integers(0, min(8, capacity)))
    target = mutate_target(source, n_deltas, seed=draw(st.integers(0, 10_000)))
    if draw(st.booleans()):
        target = grow_target(target, draw(st.integers(1, 2)),
                             seed=draw(st.integers(0, 10_000)))
    return source, target


@settings(max_examples=40, deadline=None, derandomize=True)
@given(
    migrations(),
    st.sampled_from(_PROPERTY_METHODS),
    st.sampled_from(OPT_LEVELS),
)
def test_optimized_program_is_valid_and_never_longer(pair, method, level):
    source, target = pair
    program = _synthesise(method, source, target, seed=3)
    assert program.is_valid()
    optimized, report = optimise_program(program, level)
    assert optimized.is_valid()
    assert optimized.replay().ok
    assert len(optimized) <= len(program)
    assert optimized.write_count <= program.write_count
    assert report.steps_after == len(optimized)


@settings(max_examples=40, deadline=None, derandomize=True)
@given(migrations(), st.sampled_from(_PROPERTY_METHODS))
def test_o2_is_a_fixpoint(pair, method):
    source, target = pair
    program = _synthesise(method, source, target, seed=3)
    once, _ = optimise_program(program, "O2")
    twice, _ = optimise_program(once, "O2")
    assert twice.steps == once.steps


@settings(max_examples=40, deadline=None, derandomize=True)
@given(migrations())
def test_optimized_chunks_migrate_and_keep_blend(pair):
    source, target = pair
    ordered = order_chunks(
        incremental_chunks(source, target), source, target
    )
    optimised = optimise_chunks(ordered, source, target)
    assert chunks_to_program(optimised, source, target).is_valid()
    cycles = lambda cs: sum(len(c.steps) for c in cs)  # noqa: E731
    writes = lambda cs: sum(  # noqa: E731
        1 for c in cs for s in c.steps if s.kind.writes
    )
    assert cycles(optimised) <= cycles(ordered)
    assert writes(optimised) <= writes(ordered)
    machine = ReplayMachine.for_migration(source, target)
    for chunk in optimised:
        for step in chunk.steps:
            machine.apply(step)
        assert is_blend(machine.table, source, target)
        assert machine.state == target.reset_state


@settings(max_examples=30, deadline=None, derandomize=True)
@given(migrations(max_states=4))
def test_optimal_programs_survive_o2_untouched_or_valid(pair):
    source, target = pair
    # the A* frontier can explode on unlucky draws; a capped budget keeps
    # the property cheap and assume() discards the over-budget instances
    try:
        program = optimal_program(source, target, max_expansions=20_000)
    except SearchLimitExceeded:
        assume(False)
    optimized, _ = optimise_program(program, "O2")
    assert optimized.is_valid()
    assert len(optimized) <= len(program)
