"""Scale and edge-case tests: the pipeline at its size extremes."""

import random

import pytest

from repro.core.bounds import check_program
from repro.core.delta import delta_count
from repro.core.ea import EAConfig, evolve_program
from repro.core.fsm import FSM
from repro.core.jsr import jsr_program
from repro.core.verify import verify_hardware
from repro.hw.machine import HardwareFSM
from repro.workloads.mutate import grow_target, mutate_target, workload_pair
from repro.workloads.random_fsm import random_fsm


class TestLargeMachines:
    def test_64_state_jsr_pipeline(self):
        src, tgt = workload_pair(64, 24, seed=42, n_inputs=4)
        program = jsr_program(src, tgt)
        report = check_program(program)
        assert report.valid and report.within_bounds
        hw = HardwareFSM.for_migration(src, tgt)
        hw.run_program(program)
        assert hw.realises(tgt)

    def test_128_state_delta_and_bounds(self):
        src = random_fsm(n_states=128, n_inputs=4, seed=7)
        tgt = mutate_target(src, 50, seed=8)
        assert delta_count(src, tgt) == 50
        program = jsr_program(src, tgt)
        assert len(program) in (3 * 50, 3 * 51)
        assert program.is_valid()

    def test_large_growth_migration(self):
        src = random_fsm(n_states=24, seed=9)
        tgt = grow_target(src, 24, seed=9)  # doubles the state space
        program = jsr_program(src, tgt)
        assert program.is_valid()
        hw = HardwareFSM.for_migration(src, tgt)
        hw.run_program(program)
        assert hw.realises(tgt)

    def test_ea_on_large_instance(self):
        src, tgt = workload_pair(32, 20, seed=10, n_inputs=3)
        result = evolve_program(
            src, tgt,
            config=EAConfig(population_size=16, generations=10, seed=0),
        )
        assert result.program.is_valid()
        assert result.best_length < len(jsr_program(src, tgt))

    def test_long_traffic_on_hardware(self):
        machine = random_fsm(n_states=64, n_inputs=4, seed=11)
        hw = HardwareFSM(machine)
        rng = random.Random(0)
        word = [rng.choice(machine.inputs) for _ in range(5000)]
        assert hw.run(word) == machine.run(word)


class TestDegenerateMachines:
    def test_single_state_machine(self):
        machine = FSM(["a"], ["x", "y"], ["ONLY"], "ONLY",
                      [("a", "ONLY", "ONLY", "x")])
        target = FSM(["a"], ["x", "y"], ["ONLY"], "ONLY",
                     [("a", "ONLY", "ONLY", "y")])
        program = jsr_program(machine, target)
        assert program.is_valid()
        hw = HardwareFSM.for_migration(machine, target)
        hw.run_program(program)
        assert hw.realises(target)
        assert verify_hardware(hw, target).passed

    def test_single_input_machine(self):
        src = random_fsm(n_states=5, n_inputs=1, seed=2)
        tgt = mutate_target(src, 3, seed=3)
        assert jsr_program(src, tgt).is_valid()

    def test_wide_input_alphabet(self):
        src = random_fsm(n_states=4, n_inputs=16, seed=4)
        tgt = mutate_target(src, 10, seed=5)
        program = jsr_program(src, tgt)
        assert program.is_valid()
        hw = HardwareFSM.for_migration(src, tgt)
        hw.run_program(program)
        assert hw.realises(tgt)

    def test_single_output_machines(self):
        # With one output symbol only F can differ.
        src = random_fsm(n_states=6, n_outputs=1, seed=6)
        tgt = mutate_target(src, 4, seed=7)
        assert delta_count(src, tgt) == 4
        assert jsr_program(src, tgt).is_valid()


class TestMooreMigrations:
    def test_moore_to_moore_migration(self):
        from repro.core.transform import mealy_to_moore
        from repro.workloads.library import ones_detector, zeros_detector

        src = mealy_to_moore(ones_detector()).to_mealy(name="moore_src")
        tgt_base = mealy_to_moore(zeros_detector())
        # Align the target's state universe with the source's via rename
        tgt = tgt_base.to_mealy(name="moore_tgt")
        program = jsr_program(src, tgt)
        assert program.is_valid()
        hw = HardwareFSM.for_migration(src, tgt)
        hw.run_program(program)
        assert hw.realises(tgt)
        # the migrated machine still has the Moore property
        assert hw.run(list("0011")) == tgt.run(list("0011"))

    def test_migrated_moore_machine_is_moore(self):
        from repro.core.transform import mealy_to_moore
        from repro.workloads.library import sequence_detector

        src = sequence_detector("10")
        tgt = mealy_to_moore(sequence_detector("01")).to_mealy(name="m")
        program = jsr_program(src, tgt)
        result = program.replay()
        assert result.ok
