"""Unit tests for VCD export."""

import io

import pytest

from repro.core.jsr import jsr_program
from repro.hw.machine import HardwareFSM
from repro.hw.vcd import _identifiers, to_vcd, write_vcd
from repro.workloads.library import fig6_m, fig6_m_prime, ones_detector


def traced_hw():
    hw = HardwareFSM(ones_detector())
    hw.run(list("1101"))
    return hw


class TestIdentifiers:
    def test_unique(self):
        idents = _identifiers(200)
        assert len(set(idents)) == 200

    def test_short_first(self):
        assert all(len(ident) == 1 for ident in _identifiers(10))


class TestToVcd:
    def test_header_structure(self):
        text = to_vcd(traced_hw().trace)
        assert "$timescale 1 ns $end" in text
        assert "$scope module reconfigurable_fsm $end" in text
        assert "$enddefinitions $end" in text
        assert "$dumpvars" in text

    def test_declares_requested_signals(self):
        text = to_vcd(traced_hw().trace)
        for name in ("clk", "mode", "state_after", "output", "write"):
            assert f" {name} $end" in text

    def test_clock_toggles_per_cycle(self):
        hw = traced_hw()
        text = to_vcd(hw.trace, clock_period=10)
        # one rising and one falling edge per trace entry
        assert text.count("#") >= 2 * len(hw.trace)

    def test_timestamps_use_clock_period(self):
        text = to_vcd(traced_hw().trace, clock_period=100)
        assert "#100" in text and "#50" in text

    def test_state_values_emitted_as_strings(self):
        text = to_vcd(traced_hw().trace)
        assert "sS1 " in text

    def test_none_renders_x(self):
        m, mp = fig6_m(), fig6_m_prime()
        hw = HardwareFSM.for_migration(m, mp)
        hw.run_program(jsr_program(m, mp))
        text = to_vcd(hw.trace)
        assert "sx " in text  # don't-care external input during reconf

    def test_only_changes_are_dumped(self):
        hw = HardwareFSM(ones_detector())
        hw.run(list("0000"))  # state stays S0 throughout
        text = to_vcd(hw.trace)
        # state_after never changes after the initial $dumpvars emission
        # plus the first-cycle refresh, so "sS0" appears exactly twice.
        assert text.count("sS0 ") == 2

    def test_custom_module_name(self):
        text = to_vcd(traced_hw().trace, module="dut")
        assert "$scope module dut $end" in text


class TestWriteVcd:
    def test_stream(self):
        buffer = io.StringIO()
        write_vcd(traced_hw().trace, buffer)
        assert buffer.getvalue().startswith("$date")

    def test_path(self, tmp_path):
        path = str(tmp_path / "trace.vcd")
        write_vcd(traced_hw().trace, path)
        with open(path) as handle:
            assert "$enddefinitions" in handle.read()
