"""Unit tests for the VHDL backend (repro.hw.vhdl)."""

import re

import pytest

from repro.hw.vhdl import (
    generate_fsm_vhdl,
    generate_reconfigurable_vhdl,
    vhdl_identifier,
)
from repro.workloads.library import fig6_m, ones_detector, traffic_light
from repro.workloads.random_fsm import random_fsm


class TestIdentifiers:
    def test_plain_names_pass_through(self):
        assert vhdl_identifier("S0") == "S0"

    def test_specials_replaced(self):
        assert vhdl_identifier("a-b c") == "a_b_c"

    def test_leading_digit_prefixed(self):
        ident = vhdl_identifier("0state")
        assert ident[0].isalpha()

    def test_empty_symbol(self):
        assert vhdl_identifier("") == "s"


class TestBehaviouralVHDL:
    def test_entity_and_architecture(self, detector):
        text = generate_fsm_vhdl(detector, entity="rec")
        assert "entity rec is" in text
        assert "architecture behavior of rec" in text
        assert "end behavior;" in text

    def test_state_enumeration_like_paper(self, detector):
        text = generate_fsm_vhdl(detector)
        assert "type state_type is (S0, S1);" in text
        assert "signal state : state_type := S0;" in text

    def test_case_covers_every_state(self, detector):
        text = generate_fsm_vhdl(detector)
        for state in detector.states:
            assert f"when {state} =>" in text

    def test_case_covers_every_input_code(self, detector):
        text = generate_fsm_vhdl(detector)
        assert text.count('when "0" =>') == len(detector.states)
        assert text.count('when "1" =>') == len(detector.states)

    def test_clocked_process(self, detector):
        text = generate_fsm_vhdl(detector)
        assert "process (clk)" in text
        assert "rising_edge(clk)" in text

    def test_larger_machine(self):
        machine = random_fsm(n_states=9, n_inputs=3, seed=5)
        text = generate_fsm_vhdl(machine)
        assert text.count("when q") >= 9

    def test_moore_machine_generates(self):
        text = generate_fsm_vhdl(traffic_light().to_mealy())
        assert "RED" in text and "GREEN" in text

    def test_unique_identifiers_for_colliding_names(self):
        from repro.core.fsm import FSM

        machine = FSM(
            ["0"],
            ["0"],
            ["A B", "A_B"],
            "A B",
            [("0", "A B", "A_B", "0"), ("0", "A_B", "A B", "0")],
        )
        text = generate_fsm_vhdl(machine)
        assert "A_B_1" in text


class TestReconfigurableVHDL:
    def test_ports_match_fig5(self, detector):
        text = generate_reconfigurable_vhdl(detector)
        for port in ("din", "clk", "rst", "mode", "ir", "hf", "hg", "we", "dout"):
            assert re.search(rf"\b{port}\b", text)

    def test_ram_arrays_declared(self, detector):
        text = generate_reconfigurable_vhdl(detector)
        assert "f_ram_type is array (0 to 3)" in text
        assert "g_ram_type is array (0 to 3)" in text

    def test_in_mux_and_rst_mux(self, detector):
        text = generate_reconfigurable_vhdl(detector)
        assert "i_int <= din when mode = '0' else ir;" in text
        assert "if rst = '1' then" in text

    def test_write_first_forwarding(self, detector):
        text = generate_reconfigurable_vhdl(detector)
        assert "f_out <= hf when (we = '1' and mode = '1')" in text

    def test_initial_contents_encode_table(self, detector):
        text = generate_reconfigurable_vhdl(detector)
        # The (1, S0) -> S1 entry: address 0b10 = 2 holds state code 1.
        f_block = text.split("signal f_ram")[1].split(");")[0]
        rows = [r.strip().rstrip(",") for r in f_block.splitlines()[1:]]
        assert rows[2] == '"1"'

    def test_superset_headroom_deepens_rams(self, detector):
        text = generate_reconfigurable_vhdl(detector, extra_states=2)
        assert "array (0 to 7)" in text

    def test_fig6_machine(self):
        text = generate_reconfigurable_vhdl(fig6_m(), extra_states=1)
        assert "array (0 to 7)" in text  # 1 input bit + 2 state bits
