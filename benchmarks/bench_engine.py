"""Batch-engine throughput benchmark and regression gate.

Measures symbols/second through three serving paths on the same
workload:

* **per-cycle** — clocking the cycle-accurate Fig. 5 datapath one
  symbol at a time (the pre-engine serving hot path);
* **python** — the compiled dense-table kernel, pure-Python backend
  (sequential stream, ``CompiledFSM.run_word``);
* **numpy** — the vectorized lane-batch kernel
  (``CompiledFSM.run_words``), when numpy is importable.

plus one dispatcher-driven serving row per *registered* execution
backend (``repro.exec``: select → run_batch → commit, the fleet's hot
path without the threads; unavailable backends record why they were
skipped), and end-to-end fleet serving throughput with 1 and 4
workers, engine on vs off.  Writes ``BENCH_engine_throughput.json`` at
the repository root and exits non-zero (the CI ``engine`` job's gate)
if:

* the pure-Python batch kernel is *slower* than per-cycle serving
  (speedup < 1x — the engine must never be a pessimisation), or
* numpy is available but its batch kernel fails a 5x speedup over
  per-cycle serving.

Run with ``make bench-engine``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.engine import CompiledFSM, numpy_available
from repro.exec import Dispatcher, specs
from repro.fleet import FSMFleet
from repro.hw.machine import HardwareFSM
from repro.workloads.library import sequence_detector
from repro.workloads.suite import traffic_words

N_WORDS = 256
WORD_LEN = 64
REPEATS = 3
MIN_PY_SPEEDUP = 1.0
MIN_NUMPY_SPEEDUP = 5.0


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def kernel_rows(machine, words):
    n_symbols = sum(len(w) for w in words)
    rows = {}

    def per_cycle():
        hw = HardwareFSM(machine, trace_max_entries=16)
        for word in words:
            hw.run(word)

    seconds = _best_seconds(per_cycle)
    rows["per_cycle"] = {
        "seconds": seconds, "symbols_per_s": n_symbols / seconds,
    }

    compiled_py = CompiledFSM.from_fsm(machine, backend="python")

    def python_kernel():
        state = machine.reset_state
        for word in words:
            state = compiled_py.run_word(word, start=state).final_state

    seconds = _best_seconds(python_kernel)
    rows["python"] = {
        "seconds": seconds, "symbols_per_s": n_symbols / seconds,
    }

    if numpy_available():
        compiled_np = CompiledFSM.from_fsm(machine, backend="numpy")

        def numpy_kernel():
            compiled_np.run_words(words)

        seconds = _best_seconds(numpy_kernel)
        rows["numpy"] = {
            "seconds": seconds, "symbols_per_s": n_symbols / seconds,
        }
    return n_symbols, rows


def backend_rows(machine, words):
    """Dispatcher-driven serving throughput, one row per registered
    backend (the exec layer's view: select → run_batch → commit)."""
    n_symbols = sum(len(w) for w in words)
    rows = {}
    for spec in specs():
        if not spec.available():
            rows[spec.name] = {
                "skipped": spec.unavailable_reason() or "unavailable",
            }
            continue

        def serve(mode=spec.name):
            hw = HardwareFSM(machine, trace_max_entries=16)
            dispatcher = Dispatcher(mode)
            for word in words:
                dispatcher.select(hw).backend.run_batch(word)

        seconds = _best_seconds(serve)
        rows[spec.name] = {
            "seconds": seconds, "symbols_per_s": n_symbols / seconds,
        }
    return rows


def fleet_row(machine, words, n_workers: int, engine: str):
    n_symbols = sum(len(w) for w in words)
    fleet = FSMFleet(
        machine, n_workers=n_workers, queue_depth=len(words) + 1,
        engine=engine, name=f"bench-{engine}-{n_workers}",
    )
    try:
        started = time.perf_counter()
        futures = [
            fleet.submit(key, word) for key, word in enumerate(words)
        ]
        for future in futures:
            future.result(timeout=60)
        seconds = time.perf_counter() - started
        totals = fleet.totals()
        return {
            "workers": n_workers,
            "engine": engine,
            "seconds": seconds,
            "symbols_per_s": n_symbols / seconds,
            "engine_symbols": totals.engine_symbols,
            "engine_fallbacks": totals.engine_fallbacks,
        }
    finally:
        fleet.close()


def main() -> int:
    machine = sequence_detector("1011")
    words = traffic_words(machine, N_WORDS, WORD_LEN, seed=0)
    n_symbols, kernels = kernel_rows(machine, words)
    backends = backend_rows(machine, words)

    fleet_words = words[:128]
    fleets = [
        fleet_row(machine, fleet_words, workers, engine)
        for workers in (1, 4)
        for engine in ("off", "auto")
    ]

    per_cycle = kernels["per_cycle"]["symbols_per_s"]
    speedups = {
        name: row["symbols_per_s"] / per_cycle
        for name, row in kernels.items()
        if name != "per_cycle"
    }

    failures = []
    if speedups["python"] < MIN_PY_SPEEDUP:
        failures.append(
            f"pure-Python batch kernel is a pessimisation: "
            f"{speedups['python']:.2f}x < {MIN_PY_SPEEDUP}x per-cycle"
        )
    if "numpy" in speedups and speedups["numpy"] < MIN_NUMPY_SPEEDUP:
        failures.append(
            f"numpy batch kernel speedup {speedups['numpy']:.2f}x < "
            f"{MIN_NUMPY_SPEEDUP}x per-cycle"
        )

    payload = {
        "benchmark": "engine_throughput",
        "workload": machine.name,
        "n_symbols": n_symbols,
        "numpy_available": numpy_available(),
        "kernels": kernels,
        "backends": backends,
        "speedups_vs_per_cycle": {
            k: round(v, 2) for k, v in speedups.items()
        },
        "fleet": fleets,
        "criteria": {
            "python_min_speedup": MIN_PY_SPEEDUP,
            "numpy_min_speedup": MIN_NUMPY_SPEEDUP,
        },
        "failures": failures,
    }
    out = pathlib.Path(__file__).resolve().parent.parent
    out = out / "BENCH_engine_throughput.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"engine throughput over {n_symbols} symbols ({machine.name}):")
    for name, row in kernels.items():
        speedup = (
            f" ({speedups[name]:.1f}x)" if name in speedups else " (1.0x)"
        )
        print(
            f"  {name:10s}: {row['symbols_per_s']:12,.0f} symbols/s"
            f"{speedup}"
        )
    for name, row in backends.items():
        if "skipped" in row:
            print(f"  backend {name:12s}: skipped ({row['skipped']})")
        else:
            print(
                f"  backend {name:12s}: {row['symbols_per_s']:12,.0f} "
                f"symbols/s (dispatcher-driven)"
            )
    for row in fleets:
        print(
            f"  fleet {row['workers']}w engine={row['engine']:4s}: "
            f"{row['symbols_per_s']:12,.0f} symbols/s "
            f"({row['engine_symbols']} via engine)"
        )
    print(f"written: {out}")
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
