"""Hardware probes: derive per-run statistics from a live datapath.

:class:`~repro.hw.machine.HardwareFSM` counts what the real Fig. 5
implementation could count with a handful of extra registers — cycles
per mode, committed RAM writes, state-register occupancy — and its
:class:`~repro.hw.trace.TraceRecorder` holds the full waveform.  A probe
turns those raw counters into one :class:`ProbeReport`:

* **mode occupancy** — cycles spent in normal / reconfiguration / reset
  mode (the paper's downtime argument: reconfiguration steals cycles
  from the application);
* **RAM writes** — committed F-RAM/G-RAM write cycles (write cycles ≈
  ``|Z|`` writes for a gradual migration, the Thm. 4.3 bound);
* **state-visit histogram** — how often the ST-REG held each state;
* **uninitialised-read incidents** — reads of never-written RAM words;
* **reconfiguration downtime** — cycles the machine was unavailable to
  external traffic (reconf + reset).

:func:`probe_hardware` reads a datapath; :func:`publish` pushes the
report into the metrics registry with caller-chosen labels (e.g. one
label set per suite workload).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from . import instruments
from .metrics import REGISTRY


@dataclass
class ProbeReport:
    """Per-run hardware statistics (see module docstring)."""

    name: str
    cycles_total: int = 0
    cycles_normal: int = 0
    cycles_reconf: int = 0
    cycles_reset: int = 0
    ram_writes_f: int = 0
    ram_writes_g: int = 0
    state_visits: Dict[Any, int] = field(default_factory=dict)
    uninitialised_reads: int = 0
    trace_entries: int = 0
    trace_dropped: int = 0

    @property
    def ram_writes(self) -> int:
        """Total committed RAM writes (F-RAM + G-RAM)."""
        return self.ram_writes_f + self.ram_writes_g

    @property
    def downtime_cycles(self) -> int:
        """Cycles unavailable to external traffic (reconf + reset)."""
        return self.cycles_reconf + self.cycles_reset

    @property
    def availability(self) -> float:
        """Fraction of cycles serving external traffic (1.0 when idle)."""
        if self.cycles_total == 0:
            return 1.0
        return self.cycles_normal / self.cycles_total

    def rows(self) -> List[Dict[str, Any]]:
        """Table rows for :func:`repro.analysis.tables.format_table`."""
        rows = [
            {"probe": "cycles total", "value": self.cycles_total},
            {"probe": "cycles normal", "value": self.cycles_normal},
            {"probe": "cycles reconf", "value": self.cycles_reconf},
            {"probe": "cycles reset", "value": self.cycles_reset},
            {"probe": "reconfiguration downtime",
             "value": self.downtime_cycles},
            {"probe": "availability",
             "value": round(self.availability, 4)},
            {"probe": "RAM writes (F)", "value": self.ram_writes_f},
            {"probe": "RAM writes (G)", "value": self.ram_writes_g},
            {"probe": "uninitialised reads",
             "value": self.uninitialised_reads},
            {"probe": "trace entries", "value": self.trace_entries},
            {"probe": "trace entries dropped", "value": self.trace_dropped},
        ]
        return rows

    def render(self) -> str:
        """Readable multi-section report (mode occupancy + state visits)."""
        from ..analysis.tables import format_table

        sections = [
            format_table(self.rows(), title=f"hardware probes — {self.name}")
        ]
        if self.state_visits:
            visit_rows = [
                {"state": str(state), "visits": count}
                for state, count in sorted(
                    self.state_visits.items(),
                    key=lambda item: (-item[1], str(item[0])),
                )
            ]
            sections.append(
                format_table(visit_rows, title="state-visit histogram")
            )
        return "\n\n".join(sections)


def probe_hardware(hw) -> ProbeReport:
    """Snapshot the probe statistics of a :class:`HardwareFSM`."""
    trace = hw.trace
    return ProbeReport(
        name=hw.name,
        cycles_total=hw.cycles,
        cycles_normal=hw.mode_cycles.get("normal", 0),
        cycles_reconf=hw.mode_cycles.get("reconf", 0),
        cycles_reset=hw.mode_cycles.get("reset", 0),
        ram_writes_f=hw.f_ram.write_count,
        ram_writes_g=hw.g_ram.write_count,
        state_visits=dict(hw.state_visits),
        uninitialised_reads=hw.uninitialised_reads,
        trace_entries=len(trace),
        trace_dropped=getattr(trace, "dropped", 0),
    )


#: Pre-bound handle bundles for :func:`publish`, keyed by label set —
#: serving loops publish the same few label sets thousands of times.
_PUBLISH_HANDLES: Dict[Any, Dict[str, Any]] = {}


def _publish_handles(labels: Dict[str, Any]) -> Dict[str, Any]:
    key = tuple(sorted((k, str(v)) for k, v in labels.items()))
    handles = _PUBLISH_HANDLES.get(key)
    if handles is None:
        handles = _PUBLISH_HANDLES[key] = {
            "normal": instruments.HW_CYCLES.bind(mode="normal", **labels),
            "reconf": instruments.HW_CYCLES.bind(mode="reconf", **labels),
            "reset": instruments.HW_CYCLES.bind(mode="reset", **labels),
            "ram_f": instruments.HW_RAM_WRITES.bind(ram="f", **labels),
            "ram_g": instruments.HW_RAM_WRITES.bind(ram="g", **labels),
            "uninit": instruments.HW_UNINITIALISED_READS.bind(**labels),
        }
    return handles


def publish(report: ProbeReport, **labels: Any) -> None:
    """Push a probe report into the default metrics registry.

    ``labels`` tag every series (e.g. ``workload="paper/fig6"``); a
    disabled registry makes this a cheap no-op.
    """
    if not REGISTRY.enabled:
        return
    handles = _publish_handles(labels)
    for mode, cycles in (
        ("normal", report.cycles_normal),
        ("reconf", report.cycles_reconf),
        ("reset", report.cycles_reset),
    ):
        if cycles:
            handles[mode].inc(cycles)
    if report.ram_writes_f:
        handles["ram_f"].inc(report.ram_writes_f)
    if report.ram_writes_g:
        handles["ram_g"].inc(report.ram_writes_g)
    if report.uninitialised_reads:
        handles["uninit"].inc(report.uninitialised_reads)
    # trace_dropped is NOT re-published: TraceRecorder increments the
    # (process-wide) repro_hw_trace_dropped_total counter live.
