"""The worker-process serve loop: a stateless shared-memory table server.

One worker owns one pipe and one control-block slot.  Per request frame
it (1) reads its slot, re-attaching the published table segment whenever
the epoch moved, (2) refuses epoch-skewed requests with a miss instead
of serving a stale table, (3) runs the symbols through a locally rebuilt
:class:`~repro.engine.CompiledFSM` from the frame's start state, and
(4) replies with outputs, final state, state visits and the worker-side
observability records.

The worker holds **no architectural state** between requests — the
start state travels in every frame and the parent commits results to
its canonical datapath — so a crashed worker loses nothing and respawn
is just ``fork``/``spawn`` again.  A ``serve_streams`` frame carries
many independent ``(start, word)`` lanes at once: the worker serves
them all from one attached snapshot and replies with one result per
lane in submission order, so a coalesced multi-stream fleet batch costs
a single pipe round-trip instead of one per session.

Observability crosses the boundary explicitly: the frame carries the
parent's trace context in the string-carrier form of
:mod:`repro.obs.context` (decoded here with ``remote=True``, so the
foreign span index is never dereferenced), and the reply ships the
journal events and spans recorded while serving — each stamped with
this worker's pid — for the parent to absorb into its own recorders.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Dict, Optional, Tuple

from ..obs import context as _context
from ..obs import journal as _journal
from ..obs import tracing as _tracing
from .ring import FrameRing
from .segments import ControlBlock, attach_segment, decode_segment

__all__ = ["worker_main"]

#: Sent on the ring when the real reply outgrew a slot and follows on
#: the pipe (must match the parent session's marker).
_PIPE_OVERFLOW = ("pipe-overflow",)

#: Idle escalation for the multiplexed (ring + pipe) wait: busy polls,
#: then pipe-polls with a growing timeout.  The cap bounds both worker
#: idle CPU and the worst-case pickup latency of a ring frame arriving
#: after a long lull.
_IDLE_SPINS = 2000
_IDLE_POLL_S = 0.0002
_IDLE_POLL_MAX_S = 0.001


class _AttachedView:
    """One attached segment and the compiled view rebuilt from it."""

    __slots__ = ("epoch", "segment", "shm", "compiled")

    def __init__(self, epoch: int, segment: str, shm, compiled):
        self.epoch = epoch
        self.segment = segment
        self.shm = shm
        self.compiled = compiled

    def close(self) -> None:
        self.shm.close()


def _rebuild(shm) -> Any:
    # Deferred import: the engine pulls in the exec registry, and under
    # the spawn start method this module is imported during bootstrap.
    from ..engine.compiled import CompiledFSM

    pieces = decode_segment(shm.buf)
    return CompiledFSM(
        pieces["inputs"],
        pieces["states"],
        pieces["outputs"],
        pieces["next_table"],
        pieces["out_table"],
        pieces["reset_state"],
        backend="python",
        source_version=pieces["table_version"],
    )


def _attach(
    ctl: ControlBlock,
    slot: int,
    view: Optional[_AttachedView],
    label: str,
) -> Tuple[Optional[_AttachedView], Optional[str]]:
    """``(current view, miss reason)`` for the slot's published epoch."""
    epoch, segment = ctl.read_slot(slot)
    if segment is None:
        return view, "no table segment published yet"
    if view is not None and view.epoch == epoch and view.segment == segment:
        return view, None
    try:
        shm = attach_segment(segment)
        compiled = _rebuild(shm)
    except (FileNotFoundError, ValueError) as exc:
        # Published then retired before we attached (a republish race):
        # report a miss; the parent republishes and retries.
        return view, f"segment {segment} unavailable: {exc}"
    if view is not None:
        view.close()
    view = _AttachedView(epoch, segment, shm, compiled)
    _journal.JOURNAL.record(
        _journal.PROCFLEET_ATTACH,
        shard=label,
        segment=segment,
        epoch=epoch,
        pid=os.getpid(),
    )
    return view, None


def _serve(
    ctl: ControlBlock,
    slot: int,
    view: Optional[_AttachedView],
    label: str,
    frame: tuple,
) -> Tuple[Optional[_AttachedView], tuple]:
    from ..engine.compiled import EngineError

    (_, expect_epoch, start, symbols, carrier, want_journal,
     want_spans) = frame
    pid = os.getpid()
    journal = _journal.JOURNAL
    tracer = _tracing.TRACER
    journal.enabled = bool(want_journal)
    tracer.enabled = bool(want_spans)
    ctx = _context.extract(carrier) if carrier else None
    token = _context.attach(ctx) if ctx is not None else None
    try:
        with _tracing.span(
            "procfleet.worker.serve", pid=pid, symbols=len(symbols)
        ):
            view, miss = _attach(ctl, slot, view, label)
            if miss is None and expect_epoch is not None:
                if view is not None and view.epoch != expect_epoch:
                    journal.record(
                        _journal.PROCFLEET_EPOCH_SKEW,
                        shard=label,
                        expected=expect_epoch,
                        published=view.epoch,
                        pid=pid,
                    )
                    miss = (
                        f"epoch skew: parent expects {expect_epoch}, "
                        f"slot publishes {view.epoch}"
                    )
            if miss is None:
                try:
                    run = view.compiled.run_word(symbols, start=start)
                except EngineError as exc:
                    miss = str(exc)
            if miss is None:
                journal.record(
                    _journal.PROCFLEET_WORKER_BATCH,
                    shard=label,
                    pid=pid,
                    epoch=view.epoch,
                    symbols=len(symbols),
                )
    finally:
        if token is not None:
            _context.detach(token)
    events = [e.to_dict() for e in journal.events()] if want_journal else []
    spans = [s.to_dict() for s in tracer.spans] if want_spans else []
    journal.clear()
    with tracer._lock:
        tracer.spans.clear()
    journal.enabled = False
    tracer.enabled = False
    if miss is not None:
        return view, ("miss", miss, events, spans, pid)
    visits: Dict[Any, int] = dict(run.visits)
    return view, (
        "ok",
        list(run.outputs),
        run.final_state,
        visits,
        view.epoch,
        events,
        spans,
        pid,
    )


def _serve_streams(
    ctl: ControlBlock,
    slot: int,
    view: Optional[_AttachedView],
    label: str,
    frame: tuple,
) -> Tuple[Optional[_AttachedView], tuple]:
    """One multi-stream frame: many independent ``(start, word)`` lanes
    served from the same attached table snapshot in one round-trip.

    The whole frame succeeds or misses atomically — a worker serves no
    architectural state, so a partial result would only push the
    which-lane-failed bookkeeping onto the parent; a whole-frame miss
    lets it replay per-batch on its own datapath instead.
    """
    from ..engine.compiled import EngineError

    (_, expect_epoch, starts, words, carrier, want_journal,
     want_spans) = frame
    pid = os.getpid()
    journal = _journal.JOURNAL
    tracer = _tracing.TRACER
    journal.enabled = bool(want_journal)
    tracer.enabled = bool(want_spans)
    ctx = _context.extract(carrier) if carrier else None
    token = _context.attach(ctx) if ctx is not None else None
    n_symbols = sum(len(word) for word in words)
    runs = None
    try:
        with _tracing.span(
            "procfleet.worker.serve_streams",
            pid=pid,
            streams=len(words),
            symbols=n_symbols,
        ):
            view, miss = _attach(ctl, slot, view, label)
            if miss is None and expect_epoch is not None:
                if view is not None and view.epoch != expect_epoch:
                    journal.record(
                        _journal.PROCFLEET_EPOCH_SKEW,
                        shard=label,
                        expected=expect_epoch,
                        published=view.epoch,
                        pid=pid,
                    )
                    miss = (
                        f"epoch skew: parent expects {expect_epoch}, "
                        f"slot publishes {view.epoch}"
                    )
            if miss is None:
                try:
                    runs = view.compiled.run_streams(
                        words, starts=starts
                    ).word_runs()
                except EngineError as exc:
                    miss = str(exc)
            if miss is None:
                journal.record(
                    _journal.PROCFLEET_WORKER_BATCH,
                    shard=label,
                    pid=pid,
                    epoch=view.epoch,
                    symbols=n_symbols,
                    streams=len(words),
                )
    finally:
        if token is not None:
            _context.detach(token)
    events = [e.to_dict() for e in journal.events()] if want_journal else []
    spans = [s.to_dict() for s in tracer.spans] if want_spans else []
    journal.clear()
    with tracer._lock:
        tracer.spans.clear()
    journal.enabled = False
    tracer.enabled = False
    if miss is not None:
        return view, ("miss", miss, events, spans, pid)
    results = [
        (list(run.outputs), run.final_state, dict(run.visits))
        for run in runs
    ]
    return view, ("ok", results, view.epoch, events, spans, pid)


def _fingerprint(
    ctl: ControlBlock,
    slot: int,
    view: Optional[_AttachedView],
    label: str,
) -> Tuple[Optional[_AttachedView], tuple]:
    """Answer a divergence probe: the CRC of this worker's *local*
    decoded tables (attaching the published segment first, so a fresh
    replica's probe doubles as its snapshot catch-up)."""
    from ..replica.fingerprint import table_fingerprint

    view, miss = _attach(ctl, slot, view, label)
    if miss is not None or view is None:
        return view, ("fingerprint", None, 0, os.getpid())
    return view, (
        "fingerprint",
        table_fingerprint(view.compiled),
        view.epoch,
        os.getpid(),
    )


def _corrupt(
    ctl: ControlBlock,
    slot: int,
    view: Optional[_AttachedView],
    label: str,
    frame: tuple,
) -> Tuple[Optional[_AttachedView], tuple]:
    """Fault-injection hook for the replica fault suite: flip one entry
    of this worker's local table copy.  The shared segment is untouched
    — this is the single-replica upset that fingerprint sweeps exist to
    detect and a republish heals."""
    view, miss = _attach(ctl, slot, view, label)
    if miss is not None or view is None:
        return view, ("err", miss or "nothing attached", os.getpid())
    table = view.compiled.next_table
    index = frame[1] % len(table)
    # Stay in range so the corrupted replica still *serves* (wrongly):
    # silent wrong answers, not crashes, are what divergence detection
    # is for.
    table[index] = (table[index] + 1) % max(
        1, view.compiled.n_states
    )
    return view, ("corrupted", index, os.getpid())


def _next_frame(conn, ring) -> Tuple[Optional[tuple], bool]:
    """``(frame, arrived_via_ring)``; ``(None, False)`` on pipe EOF.

    Without a ring this is the classic blocking ``conn.recv()``.  With
    one, both transports are multiplexed: a busy-poll phase keeps
    back-to-back ring round-trips at memory latency, then the wait
    degrades into ``conn.poll`` with a growing timeout — the worker
    sleeps *in* the pipe wait, so pipe frames still wake it instantly
    and only a post-lull ring frame pays the (bounded) poll interval.
    """
    if ring is None:
        try:
            return conn.recv(), False
        except (EOFError, OSError):
            return None, False
    idle = 0
    poll_s = 0.0
    while True:
        raw = ring.try_recv_request()
        if raw is not None:
            return pickle.loads(raw), True
        try:
            if conn.poll(poll_s):
                return conn.recv(), False
        except (EOFError, OSError):
            return None, False
        idle += 1
        if idle >= _IDLE_SPINS:
            poll_s = _IDLE_POLL_S if poll_s == 0.0 else min(
                poll_s * 2, _IDLE_POLL_MAX_S
            )


def _send_reply(conn, ring, via_ring: bool, reply: tuple) -> bool:
    """Ship ``reply`` on the transport the request arrived on.

    A ring reply that outgrows its slot is replaced by the overflow
    marker and shipped whole on the pipe — the parent is already
    waiting on the ring, sees the marker, and turns to the pipe.
    Returns ``False`` when the parent is gone (time to exit).
    """
    if via_ring:
        raw = pickle.dumps(reply, protocol=pickle.HIGHEST_PROTOCOL)
        if ring.send_reply(raw):
            return True
        ring.send_reply(
            pickle.dumps(_PIPE_OVERFLOW, protocol=pickle.HIGHEST_PROTOCOL)
        )
    try:
        conn.send(reply)
        return True
    except (BrokenPipeError, OSError):
        return False


def worker_main(
    conn, ctl_name: str, slot: int, label: str,
    ring_name: Optional[str] = None,
) -> None:
    """Entry point of one worker process (runs until stop/EOF)."""
    # Reset any observability state inherited across a fork: the
    # worker's recorders collect per-request deltas shipped back in the
    # reply, never a copy of the parent's buffers.
    _journal.JOURNAL.enabled = False
    _journal.JOURNAL.clear()
    _tracing.TRACER.enabled = False
    with _tracing.TRACER._lock:
        _tracing.TRACER.spans.clear()
    ctl = ControlBlock.attach(ctl_name)
    ring = FrameRing.attach(ring_name) if ring_name else None
    view: Optional[_AttachedView] = None
    try:
        while True:
            frame, via_ring = _next_frame(conn, ring)
            if frame is None:
                break
            kind = frame[0]
            if kind == "stop":
                try:
                    conn.send(("bye", os.getpid()))
                except (BrokenPipeError, OSError):
                    pass
                break
            try:
                if kind == "ping":
                    reply = ("pong", os.getpid())
                elif kind == "serve":
                    view, reply = _serve(ctl, slot, view, label, frame)
                elif kind == "serve_streams":
                    view, reply = _serve_streams(
                        ctl, slot, view, label, frame
                    )
                elif kind == "fingerprint":
                    view, reply = _fingerprint(ctl, slot, view, label)
                elif kind == "corrupt":
                    view, reply = _corrupt(ctl, slot, view, label, frame)
                else:
                    reply = ("err", f"unknown frame kind {kind!r}",
                             os.getpid())
            except Exception as exc:  # never let one request kill us
                reply = ("err", f"{type(exc).__name__}: {exc}", os.getpid())
            if not _send_reply(conn, ring, via_ring, reply):
                break
    finally:
        if view is not None:
            view.close()
        if ring is not None:
            ring.close()
        ctl.close()
        conn.close()
