"""Round-trip tests: parse(generate(machine)) ≡ machine."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.alphabet import Alphabet
from repro.hw.vhdl import generate_fsm_vhdl
from repro.hw.vhdl_reader import VhdlParseError, parse_fsm_vhdl
from repro.workloads.library import (
    fig6_m,
    fig6_m_prime,
    ones_detector,
    parity_checker,
    sequence_detector,
)
from repro.workloads.random_fsm import random_fsm


def roundtrip_equivalent(machine):
    """Parse the generated VHDL and compare behaviour through encoding."""
    parsed = parse_fsm_vhdl(generate_fsm_vhdl(machine))
    in_alpha = Alphabet(machine.inputs)
    out_alpha = Alphabet(machine.outputs)

    def encode_word(word):
        return [
            "".join(str(b) for b in in_alpha.encode(symbol))
            for symbol in word
        ]

    import random

    rng = random.Random(0)
    for _ in range(20):
        word = [rng.choice(machine.inputs) for _ in range(rng.randint(0, 12))]
        expected = [
            "".join(str(b) for b in out_alpha.encode(o))
            for o in machine.run(word)
        ]
        assert parsed.run(encode_word(word)) == expected
    return parsed


class TestRoundTrip:
    def test_paper_machines(self):
        for machine in (ones_detector(), fig6_m(), fig6_m_prime(),
                        parity_checker(), sequence_detector("1011")):
            roundtrip_equivalent(machine)

    def test_state_names_preserved(self, detector):
        parsed = parse_fsm_vhdl(generate_fsm_vhdl(detector))
        assert set(parsed.states) == {"S0", "S1"}
        assert parsed.reset_state == "S0"

    def test_entity_name_recovered(self, detector):
        parsed = parse_fsm_vhdl(generate_fsm_vhdl(detector, entity="rec"))
        assert parsed.name == "rec"

    def test_transition_count(self, detector):
        parsed = parse_fsm_vhdl(generate_fsm_vhdl(detector))
        assert len(parsed.table) == len(detector.table)


class TestErrors:
    def test_rejects_non_vhdl(self):
        with pytest.raises(VhdlParseError):
            parse_fsm_vhdl("module foo; endmodule")

    def test_rejects_missing_state_type(self, detector):
        text = generate_fsm_vhdl(detector).replace("state_type", "s_t")
        with pytest.raises(VhdlParseError):
            parse_fsm_vhdl(text)

    def test_rejects_corrupted_assignment(self, detector):
        text = generate_fsm_vhdl(detector).replace("state <= S1;",
                                                   "state <= S9;")
        with pytest.raises(VhdlParseError, match="unknown state"):
            parse_fsm_vhdl(text)


@settings(max_examples=25, deadline=None)
@given(st.integers(2, 9), st.integers(1, 3), st.integers(2, 4),
       st.integers(0, 3000))
def test_property_roundtrip(n_states, n_inputs, n_outputs, seed):
    machine = random_fsm(
        n_states=n_states, n_inputs=n_inputs, n_outputs=n_outputs, seed=seed
    )
    roundtrip_equivalent(machine)
