"""Multi-process serving fleet with shared-memory dense tables.

The thread fleet (:mod:`repro.fleet`) cannot scale pure-Python table
serving past one core: at ``link_latency_s=0`` the GIL serialises every
shard's kernel loop (the ``gil_bound_reference`` rows in
``BENCH_fleet_throughput.json`` record ~1x at 4 workers).  This package
breaks that ceiling with worker *processes*:

* :mod:`~repro.procfleet.segments` — the dense next-state/output tables
  of a :class:`~repro.engine.CompiledFSM` serialised into a
  ``multiprocessing.shared_memory`` segment (immutable once published),
  plus a small shared *control block* whose per-shard slots carry the
  current ``(epoch, segment name)`` under a seqlock;
* :mod:`~repro.procfleet.worker` — the stateless worker-process loop:
  each request frame carries ``(start state, symbols, expected epoch)``,
  the worker attaches the published segment (re-attaching whenever the
  epoch moved) and replies with outputs, final state and the worker-side
  journal/span records;
* :mod:`~repro.procfleet.session` — the parent-side lifetime of one
  worker process: publish/retire segments, synchronous request/reply
  over a pipe, crash detection + respawn;
* :mod:`~repro.procfleet.ring` — a fixed-slot shared-memory ring
  (seqlock-stamped request/reply slots) that carries small ``serve``
  frames without the ~100-200µs pipe+pickle syscall floor; oversized,
  stream and control frames fall back to the pipe, and crash/wedge
  detection is unchanged (``REPRO_DISABLE_RING`` reverts to pure pipe);
* :mod:`~repro.procfleet.backend` — :class:`ShmTableBackend`, the
  ``table-shm`` :class:`~repro.exec.ExecutionBackend`: the parent keeps
  the canonical datapath and commits worker results back through
  ``commit_engine_run`` exactly like the in-process table backends, so
  the Dispatcher's staleness / mid-migration / miss policy applies
  unchanged;
* :mod:`~repro.procfleet.pool` — :class:`ProcessFleet`, the
  ``fleet_mode="process"`` front-end preserving the full
  :class:`~repro.fleet.FSMFleet` contract (FIFO, backpressure,
  quarantine, rolling migration with the journal's zero-downtime proof).

Design rule: workers are **stateless table servers**.  All architectural
state (ST-REG, cycle/visit counters) stays in the parent's
``HardwareFSM``; a SIGKILLed worker loses nothing — the pending batch
replays cycle-accurately in the parent and a fresh process is spawned.
"""

from .backend import ShmTableBackend, shm_available, shm_unavailable_reason
from .pool import ProcessFleet
from .ring import FrameRing, ring_enabled
from .segments import ControlBlock, SegmentOwner, encode_segment
from .session import WorkerCrashed, WorkerSession

__all__ = [
    "ControlBlock",
    "FrameRing",
    "ProcessFleet",
    "SegmentOwner",
    "ShmTableBackend",
    "WorkerCrashed",
    "WorkerSession",
    "encode_segment",
    "ring_enabled",
    "shm_available",
    "shm_unavailable_reason",
]
