"""Unified execution-backend layer (protocol, registry, dispatch).

One serving stack, many interchangeable substrates: the cycle-accurate
Fig. 5 netlist, the pure-Python dense-table kernel and the numpy
kernel all implement one :class:`ExecutionBackend` protocol, register
in one process-wide registry, and are chosen by one policy-driven
:class:`Dispatcher`.  The fleet hot path, ``api.compile_fsm``, the
workload suite and the CLI all dispatch through here — no caller picks
a backend by hand.

Selection precedence: explicit pin (a backend name or engine-mode
alias) > the ``REPRO_BACKEND`` environment variable > auto.  Auto is
stream-count aware: ``table-py`` below :func:`stream_threshold`
concurrent streams (a single sequential stream runs fastest in the
pure-Python loop), ``table-numpy`` when enough independent streams
amortize the lane kernel (and numpy is importable and not disabled via
``REPRO_DISABLE_NUMPY``).  Availability is re-checked at every
dispatch, and a forced-but-unavailable backend raises
:class:`BackendUnavailable` with the reason spelled out.

See ``docs/architecture.md`` for where this layer sits
(core → hw → exec → engine/fleet → api/cli).
"""

from . import killswitch
from .backends import CycleBackend, TableBackend, compile_tables
from .batching import map_batch, run_streams
from .dispatcher import DEFAULT_COALESCE, Decision, Dispatcher
from .protocol import (
    BackendUnavailable,
    Capabilities,
    ExecError,
    ExecSnapshot,
    ExecutionBackend,
    StaleSnapshot,
    TableMiss,
)
from .registry import (
    BackendSpec,
    canonical,
    get,
    names,
    register,
    resolve,
    resolve_tables,
    specs,
    stream_threshold,
)

__all__ = [
    "BackendSpec",
    "BackendUnavailable",
    "Capabilities",
    "CycleBackend",
    "DEFAULT_COALESCE",
    "Decision",
    "Dispatcher",
    "ExecError",
    "ExecSnapshot",
    "ExecutionBackend",
    "StaleSnapshot",
    "TableBackend",
    "TableMiss",
    "canonical",
    "compile_tables",
    "get",
    "killswitch",
    "map_batch",
    "names",
    "register",
    "resolve",
    "resolve_tables",
    "run_streams",
    "specs",
    "stream_threshold",
]
