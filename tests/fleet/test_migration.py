"""Rolling fleet migration: zero downtime, feasibility, fault recovery."""

import threading

import pytest

from repro.fleet import (
    FSMFleet,
    InfeasiblePlanError,
    MigrationScheduler,
)
from repro.workloads.library import sequence_detector
from repro.workloads.mutate import grow_target
from repro.workloads.random_fsm import random_fsm
from repro.workloads.suite import traffic_words


def pattern_pair():
    return sequence_detector("1011"), sequence_detector("0110")


def growth_pair():
    source = random_fsm(n_states=4, seed=9)
    return source, grow_target(random_fsm(n_states=4, seed=9), 2, seed=9)


class TestRollout:
    def test_zero_downtime_under_traffic(self):
        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=4, family=[target],
                         queue_depth=256)
        try:
            common = [i for i in source.inputs if i in set(target.inputs)]
            words = traffic_words(source, 80, 12, seed=5, inputs=common)
            holder = {}

            def rollout():
                holder["report"] = MigrationScheduler(
                    fleet, stall_budget=12
                ).rollout(target)

            thread = threading.Thread(target=rollout)
            futures = []
            for index, word in enumerate(words):
                if index == 20:
                    thread.start()
                futures.append(fleet.submit(index, word))
            thread.join(timeout=60)
            for future in futures:
                assert future.result(timeout=10) is not None

            report = holder["report"]
            assert report.verified
            assert report.zero_downtime
            assert report.service_downtime_cycles == 0
            assert len(report.shards) == 4
            assert report.migration_cycles > 0
            assert fleet.machine == target
            # every shard's RAMs were hardware-checked against the target
            for shard in fleet.shards:
                assert shard.hardware.realises(target)
        finally:
            fleet.close()

    def test_rolling_is_one_shard_at_a_time(self):
        # Per-shard wall time must be disjoint: total >= sum of shards.
        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=3, family=[target])
        try:
            report = MigrationScheduler(fleet, stall_budget=12).rollout(
                target
            )
            assert report.wall_seconds >= sum(
                shard.wall_seconds for shard in report.shards
            ) * 0.99
        finally:
            fleet.close()

    def test_traffic_after_rollout_uses_target_behaviour(self):
        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=2, family=[target])
        try:
            fleet.migrate(target)
            word = list("011001100110")
            for key in ("a", "b", "c"):
                got = fleet.submit(key, word).result(timeout=10)
                assert got == target.run(word)
        finally:
            fleet.close()

    def test_growth_migration_with_new_states(self):
        source, target = growth_pair()
        assert set(target.states) - set(source.states)  # genuinely grows
        fleet = FSMFleet(source, n_workers=2, family=[target],
                         queue_depth=256)
        try:
            common = [i for i in source.inputs if i in set(target.inputs)]
            words = traffic_words(source, 40, 8, seed=6, inputs=common)
            holder = {}

            def rollout():
                holder["report"] = MigrationScheduler(
                    fleet, stall_budget=12
                ).rollout(target)

            thread = threading.Thread(target=rollout)
            futures = []
            for index, word in enumerate(words):
                if index == 10:
                    thread.start()
                futures.append(fleet.submit(index, word))
            thread.join(timeout=60)
            for future in futures:
                future.result(timeout=10)
            assert holder["report"].verified
            assert holder["report"].zero_downtime
        finally:
            fleet.close()

    def test_migration_completes_while_idle(self):
        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=2, family=[target])
        try:
            report = fleet.migrate(target)
            assert report.verified and report.zero_downtime
        finally:
            fleet.close()

    def test_fault_then_rollout_heals_and_verifies(self):
        # Erase the entry traffic reads first (reset state, first
        # symbol): the next batch deterministically faults, the shard
        # quarantines and re-seeds, and the rollout afterwards runs on
        # the healed table and verifies.
        from concurrent.futures import Future

        from repro.fleet.worker import _Fault
        from repro.hw.faults import erase_entry

        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=1, family=[target],
                         queue_depth=64)
        try:
            entry = (source.inputs[0], source.reset_state)
            injected: Future = Future()
            fleet.shards[0].queue.put(
                _Fault(
                    inject=lambda hw: erase_entry(hw, entry=entry),
                    future=injected,
                )
            )
            assert injected.result(timeout=10).bit == -1

            word = [source.inputs[0]] * 4
            with pytest.raises(Exception):
                fleet.submit("k", word).result(timeout=10)
            assert fleet.totals().incidents == 1

            report = fleet.migrate(target)
            assert report.verified
            assert report.zero_downtime
            assert fleet.submit("post", word).result(timeout=10) == (
                target.run(word)
            )
        finally:
            fleet.close()

    def test_quarantine_mid_migration_restarts_from_first_chunk(self):
        # Drive a bare (unstarted) worker synchronously: one chunk in,
        # quarantine, then the migration restarts against the fresh
        # table and still completes verified.
        from repro.core.plan import plan_supersets
        from repro.fleet import PlanCache
        from repro.fleet.worker import MigrationJob, ShardWorker

        source, target = pattern_pair()
        superset = plan_supersets([source, target])
        shard = ShardWorker(
            0,
            source,
            extra_inputs=superset.inputs.symbols,
            extra_outputs=superset.outputs.symbols,
            extra_states=superset.states.symbols,
        )
        chunks = PlanCache().chunks(source, target)
        job = shard.begin_migration(
            MigrationJob(target=target, chunks=list(chunks),
                         stall_budget=6)
        )
        shard._migration_tick()  # at most one 6-cycle chunk
        assert not job.done.is_set()
        shard._quarantine(RuntimeError("injected mid-migration"))
        assert job.restarts == 1
        assert shard.stats.incidents == 1
        for _ in range(10 * len(chunks)):
            if job.done.is_set():
                break
            shard._migration_tick()
        assert job.done.is_set()
        assert job.verified
        assert shard.machine == target
        assert shard.hardware.realises(target)

    def test_unsound_chunks_cap_restarts_instead_of_hanging(self):
        # A deterministically-broken chunk list (fails validation every
        # attempt) must surface as an unverified job, not spin forever.
        from repro.core.plan import plan_supersets
        from repro.fleet.worker import MigrationJob, ShardWorker

        source, target = pattern_pair()
        superset = plan_supersets([source, target])
        shard = ShardWorker(
            0,
            source,
            extra_inputs=superset.inputs.symbols,
            extra_outputs=superset.outputs.symbols,
            extra_states=superset.states.symbols,
        )
        job = shard.begin_migration(
            MigrationJob(target=target, chunks=[], stall_budget=6)
        )
        for _ in range(50):
            if job.done.is_set():
                break
            shard._migration_tick()
        assert job.done.is_set()
        assert job.verified is False
        assert shard.stats.incidents >= 1


class TestFeasibility:
    def test_budget_below_chunk_size_refused(self):
        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=1, family=[target])
        try:
            scheduler = MigrationScheduler(fleet, stall_budget=3)
            analysis = scheduler.analyse(target)
            assert not analysis.feasible
            assert "no progress" in analysis.reason
            with pytest.raises(InfeasiblePlanError):
                scheduler.rollout(target)
        finally:
            fleet.close()

    def test_feasible_analysis(self):
        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=1, family=[target])
        try:
            analysis = MigrationScheduler(fleet, stall_budget=12).analyse(
                target
            )
            chunks = fleet.plan_cache.chunks(source, target)
            assert analysis.feasible
            assert analysis.reason is None
            assert analysis.chunks_total == len(chunks)
            assert analysis.max_chunk_cycles <= 6
            assert analysis.total_cycles == sum(len(c) for c in chunks)
            assert analysis.priming_cycles == 0  # reset state not new
        finally:
            fleet.close()

    def test_priming_infeasibility_and_force(self):
        # Rename every target state so the target reset state is brand
        # new: its whole row must go live in one gap.  A budget that
        # fits single chunks but not the priming group is refused —
        # unless forced, in which case (with no traffic to endanger) the
        # rollout still completes and verifies.
        from repro.core.fsm import FSM

        source = sequence_detector("1011")
        base = sequence_detector("0110")
        target = FSM(
            base.inputs,
            base.outputs,
            [f"{s}_v2" for s in base.states],
            f"{base.reset_state}_v2",
            {
                (i, f"{s}_v2"): (f"{n}_v2", o)
                for (i, s), (n, o) in base.table.items()
            },
            name="renamed-0110",
        )
        fleet = FSMFleet(source, n_workers=1, family=[target])
        try:
            scheduler = MigrationScheduler(fleet, stall_budget=6)
            analysis = scheduler.analyse(target)
            assert not analysis.feasible
            assert "priming" in analysis.reason
            assert analysis.priming_cycles > 6
            with pytest.raises(InfeasiblePlanError):
                scheduler.rollout(target)
            report = scheduler.rollout(target, force=True)
            assert report.verified
        finally:
            fleet.close()

    def test_double_migration_refused_per_shard(self):
        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=1, family=[target])
        try:
            from repro.fleet.worker import MigrationJob

            chunks = fleet.plan_cache.chunks(source, target)
            shard = fleet.shards[0]
            shard.begin_migration(
                MigrationJob(target=target, chunks=list(chunks),
                             stall_budget=12)
            )
            with pytest.raises(RuntimeError, match="in flight"):
                shard.begin_migration(
                    MigrationJob(target=target, chunks=list(chunks),
                                 stall_budget=12)
                )
        finally:
            fleet.close()
