"""Cycle-by-cycle trace recording and ASCII waveform rendering.

The hardware simulation records one :class:`TraceEntry` per clock cycle;
:func:`render_waveform` turns a trace into a compact textual waveform
(one row per signal, one column per cycle) for the examples and for
eyeballing reconfiguration sequences the way Fig. 4 draws them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from ..obs import instruments as _instruments


@dataclass(frozen=True)
class TraceEntry:
    """One clock cycle of the Fig. 5 datapath.

    ``mode`` is ``"normal"``, ``"reconf"`` or ``"reset"``; the symbol
    fields hold *decoded* values (``None`` when a signal was garbage or
    don't-care that cycle).
    """

    cycle: int
    mode: str
    external_input: Optional[Any]
    internal_input: Optional[Any]
    state_before: Any
    state_after: Any
    output: Optional[Any]
    write: bool
    address: Optional[int] = None


class TraceRecorder:
    """Accumulates :class:`TraceEntry` rows during simulation.

    ``max_entries`` switches the recorder into ring-buffer mode: only
    the most recent ``max_entries`` rows are kept and ``dropped`` counts
    the evicted ones (also published to the metrics registry when it is
    enabled).  The default stays unbounded for waveform fidelity; bound
    it for long soak simulations so memory does not grow without limit.
    """

    def __init__(self, max_entries: Optional[int] = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive (or None)")
        self.max_entries = max_entries
        self.entries: List[TraceEntry] = []
        self.dropped = 0

    def record(self, entry: TraceEntry) -> None:
        if (
            self.max_entries is not None
            and len(self.entries) >= self.max_entries
        ):
            del self.entries[0]
            self.dropped += 1
            _instruments.HW_TRACE_DROPPED.inc()
        self.entries.append(entry)

    def clear(self) -> None:
        self.entries.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def column(self, signal: str) -> List[Any]:
        """All values of one signal, in cycle order."""
        return [getattr(entry, signal) for entry in self.entries]


DEFAULT_SIGNALS = (
    "mode",
    "external_input",
    "internal_input",
    "state_before",
    "state_after",
    "output",
    "write",
)


def render_waveform(
    trace: TraceRecorder,
    signals: Sequence[str] = DEFAULT_SIGNALS,
    max_cycles: Optional[int] = None,
) -> str:
    """Render a trace as an aligned textual waveform.

    Each signal becomes one row; cells are padded to the widest value in
    their column.  ``None`` renders as ``-`` (don't care / garbage).

    >>> rec = TraceRecorder()
    >>> rec.record(TraceEntry(0, "normal", "1", "1", "S0", "S1", "0", False))
    >>> print(render_waveform(rec, signals=("mode", "output")))
    cycle  | 0
    mode   | normal
    output | 0
    """
    entries = trace.entries[:max_cycles] if max_cycles else trace.entries
    if not entries:
        return "(empty trace)"

    def cell(value: Any) -> str:
        if value is None:
            return "-"
        if value is True:
            return "W"
        if value is False:
            return "."
        return str(value)

    header = ["cycle"] + [str(e.cycle) for e in entries]
    rows: List[List[str]] = [header]
    for signal in signals:
        rows.append([signal] + [cell(getattr(e, signal)) for e in entries])

    widths = [max(len(row[col]) for row in rows) for col in range(len(header))]
    lines = []
    for row in rows:
        label = row[0].ljust(widths[0])
        cells = " ".join(
            row[col].ljust(widths[col]) for col in range(1, len(row))
        )
        lines.append(f"{label} | {cells}".rstrip())
    return "\n".join(lines)
