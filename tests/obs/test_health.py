"""Health surface: detectors, thresholds, live-fleet vitals."""

import time

import pytest

from repro.fleet import FSMFleet
from repro.obs import health
from repro.obs import journal as jr
from repro.obs.journal import Journal
from repro.workloads.library import ones_detector
from repro.workloads.suite import traffic_words


def _journal_with(event_type, count, ts=None):
    j = Journal(capacity=64, enabled=True)
    stamp = time.time() if ts is None else ts
    for _ in range(count):
        event = j.record(event_type)
        object.__setattr__(event, "ts", stamp)
    return j


def _detector(report, name):
    return next(d for d in report.detectors if d.name == name)


class TestDetectors:
    def test_quiet_journal_is_ok(self):
        report = health.check(journal=Journal(capacity=8, enabled=True))
        assert report.status == health.STATUS_OK
        assert report.http_status == 200
        names = {d.name for d in report.detectors}
        assert names == {
            "staleness-storm", "fallback-spike", "queue-saturation",
        }

    @pytest.mark.parametrize(
        "event_type,name,degraded,critical",
        [
            (jr.EXEC_STALE_SNAPSHOT, "staleness-storm", 3, 10),
            (jr.EXEC_FALLBACK, "fallback-spike", 5, 20),
            (jr.FLEET_SATURATION, "queue-saturation", 1, 10),
        ],
    )
    def test_thresholds_trip(self, event_type, name, degraded, critical):
        below = health.check(journal=_journal_with(event_type, degraded - 1))
        assert _detector(below, name).status == health.STATUS_OK

        warn = health.check(journal=_journal_with(event_type, degraded))
        assert _detector(warn, name).status == health.STATUS_DEGRADED
        assert warn.status == health.STATUS_DEGRADED
        assert warn.http_status == 200

        page = health.check(journal=_journal_with(event_type, critical))
        assert _detector(page, name).status == health.STATUS_CRITICAL
        assert page.status == health.STATUS_CRITICAL
        assert page.http_status == 503

    def test_old_events_age_out_of_the_window(self):
        stale = _journal_with(
            jr.EXEC_STALE_SNAPSHOT, 50, ts=time.time() - 3600
        )
        report = health.check(journal=stale)
        assert report.status == health.STATUS_OK

    def test_custom_thresholds(self):
        j = _journal_with(jr.EXEC_FALLBACK, 2)
        tight = health.Thresholds(fallback_degraded=1, fallback_critical=2)
        report = health.check(journal=j, thresholds=tight)
        assert report.status == health.STATUS_CRITICAL

    def test_overall_status_is_worst_detector(self):
        j = Journal(capacity=64, enabled=True)
        for _ in range(3):
            object.__setattr__(
                j.record(jr.EXEC_STALE_SNAPSHOT), "ts", time.time()
            )
        for _ in range(20):
            object.__setattr__(
                j.record(jr.EXEC_FALLBACK), "ts", time.time()
            )
        report = health.check(journal=j)
        assert _detector(report, "staleness-storm").status == (
            health.STATUS_DEGRADED
        )
        assert report.status == health.STATUS_CRITICAL

    def test_journal_accounting_reported(self):
        j = Journal(capacity=2, enabled=True)
        for _ in range(5):
            j.record(jr.SERVE_BATCH)
        report = health.check(journal=j)
        assert report.journal_len == 2
        assert report.journal_dropped == 3
        assert report.to_dict()["journal"] == {"events": 2, "dropped": 3}


class TestFleetVitals:
    def test_live_fleet_shard_vitals(self):
        j = Journal(capacity=128, enabled=True)
        with FSMFleet(ones_detector(), n_workers=2, queue_depth=8) as fleet:
            futures = [
                fleet.submit(key, word)
                for key, word in enumerate(
                    traffic_words(ones_detector(), 6, 8, seed=1)
                )
            ]
            for future in futures:
                future.result(timeout=5.0)
            fleet.drain()
            report = health.check(fleet=fleet, journal=j)
        assert report.status == health.STATUS_OK
        assert len(report.shards) == 2
        assert {s.shard for s in report.shards} == {"0", "1"}
        served = sum(s.symbols_served for s in report.shards)
        assert served > 0
        for vital in report.shards:
            assert vital.queue_capacity == 8
            assert not vital.migrating
            if vital.batches_ok:
                assert vital.backend is not None
        # The queue-depth detector only appears with a fleet attached.
        assert _detector(report, "queue-depth").status == health.STATUS_OK
        rendered = health.render(report)
        assert "status: ok" in rendered
        assert "shards:" in rendered

    def test_no_fleet_means_no_queue_detector(self):
        report = health.check(journal=Journal(capacity=8, enabled=True))
        assert all(d.name != "queue-depth" for d in report.detectors)
        assert report.shards == []

    def test_render_without_shards(self):
        report = health.check(journal=Journal(capacity=8, enabled=True))
        text = health.render(report)
        assert text.startswith("status: ok")
        assert "journal:" in text
