"""Unit tests for the cycle-accurate Fig. 5 datapath (repro.hw.machine)."""

import pytest

from repro.core.jsr import jsr_program
from repro.hw.machine import HardwareFSM, ReconCommand
from repro.hw.memory import UninitialisedRead
from repro.workloads.library import (
    fig6_m,
    fig6_m_prime,
    ones_detector,
    table1_target,
)
from repro.workloads.random_fsm import random_fsm


class TestConstruction:
    def test_download_realises_machine(self, detector):
        hw = HardwareFSM(detector)
        assert hw.realises(detector)
        assert hw.state == detector.reset_state

    def test_for_migration_sizes_superset(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        # 4 superset states need 2 bits; 2 inputs need 1 bit.
        assert hw.state_enc.width == 2
        assert hw.f_ram.address_width == 3

    def test_unconfigured_superset_rows(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        assert hw.table_entry("0", "S3") is None


class TestNormalOperation:
    def test_matches_symbolic_simulation(self, detector):
        hw = HardwareFSM(detector)
        word = list("1101101")
        assert hw.run(word) == detector.run(word)

    def test_long_random_agreement(self):
        machine = random_fsm(n_states=9, n_inputs=3, seed=21)
        hw = HardwareFSM(machine)
        import random

        rng = random.Random(0)
        word = [rng.choice(machine.inputs) for _ in range(200)]
        assert hw.run(word) == machine.run(word)

    def test_reset_cycle(self, detector):
        hw = HardwareFSM(detector)
        hw.step("1")
        assert hw.state == "S1"
        hw.cycle(reset=True)
        assert hw.state == "S0"

    def test_reset_wins_over_input(self, detector):
        hw = HardwareFSM(detector)
        hw.step("1")
        hw.cycle(i="1", reset=True)  # RST-MUX overrides F-RAM
        assert hw.state == "S0"

    def test_cycle_requires_some_drive(self, detector):
        hw = HardwareFSM(detector)
        with pytest.raises(ValueError, match="needs an input"):
            hw.cycle()

    def test_recon_excludes_external_input(self, detector):
        hw = HardwareFSM(detector)
        with pytest.raises(ValueError, match="ignored"):
            hw.cycle(i="1", recon=ReconCommand("1", "S1", "0"))

    def test_unconfigured_read_raises(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        hw.cycle(recon=ReconCommand("1", "S3", "0"))  # jump into S3
        with pytest.raises(UninitialisedRead):
            hw.step("0")


class TestReconfigurationMode:
    def test_write_takes_new_transition_same_cycle(self, detector):
        hw = HardwareFSM(detector)
        out = hw.cycle(recon=ReconCommand(ir="1", hf="S1", hg="1"))
        # Write-first semantics: output and next state come from the new
        # entry even though the RAM commits on the same edge.
        assert out == "1"
        assert hw.state == "S1"
        assert hw.table_entry("1", "S0") == ("S1", "1")

    def test_non_writing_recon_traverses(self, detector):
        hw = HardwareFSM(detector)
        out = hw.cycle(recon=ReconCommand(ir="1", hf="S1", hg="0", write=False))
        assert out == "0"
        assert hw.state == "S1"
        assert hw.table_entry("1", "S0") == ("S1", "0")  # unchanged

    def test_one_entry_per_cycle(self, detector):
        hw = HardwareFSM(detector)
        hw.cycle(recon=ReconCommand(ir="1", hf="S1", hg="0"))
        assert hw.f_ram.write_count == 1
        assert hw.g_ram.write_count == 1

    def test_retarget_reset(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        hw.retarget_reset("S2")
        hw.cycle(reset=True)
        assert hw.state == "S2"


class TestTable1Replay:
    def test_table1_sequence_on_hardware(self, detector):
        """Drive the paper's Table 1 rows through the real datapath."""
        hw = HardwareFSM(detector)
        rows = [
            ReconCommand(ir="1", hf="S1", hg="0"),
            ReconCommand(ir="1", hf="S1", hg="0"),
            ReconCommand(ir="0", hf="S0", hg="0"),
            ReconCommand(ir="0", hf="S0", hg="1"),
        ]
        outputs = [hw.cycle(recon=row) for row in rows]
        assert outputs == ["0", "0", "0", "1"]
        assert hw.realises(table1_target())
        assert hw.state == "S0"


class TestProgramReplay:
    def test_jsr_program_on_hardware(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        hw.run_program(jsr_program(m, mp))
        assert hw.realises(mp)
        assert hw.state == mp.reset_state

    def test_post_migration_behaviour(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        hw.run_program(jsr_program(m, mp))
        word = list("1111011")
        assert hw.run(word) == mp.run(word)


class TestTrace:
    def test_trace_records_every_cycle(self, detector):
        hw = HardwareFSM(detector)
        hw.run(list("110"))
        hw.cycle(reset=True)
        assert len(hw.trace) == 4
        assert hw.trace.entries[-1].mode == "reset"

    def test_trace_modes(self, detector):
        hw = HardwareFSM(detector)
        hw.step("1")
        hw.cycle(recon=ReconCommand(ir="1", hf="S1", hg="0"))
        modes = hw.trace.column("mode")
        assert modes == ["normal", "reconf"]
        assert hw.trace.entries[1].write


class TestConcurrentUseGuard:
    def test_second_driver_rejected_mid_cycle(self, detector):
        import threading

        from repro.hw.machine import ConcurrentUseError

        hw = HardwareFSM(detector)
        # Deterministic interleaving: another thread holds the cycle
        # guard (as it would while mid-cycle), then we try to clock.
        held = threading.Event()
        release = threading.Event()

        def holder():
            hw._cycle_guard.acquire()
            hw._driver = threading.get_ident()
            held.set()
            release.wait(timeout=30)
            hw._driver = None
            hw._cycle_guard.release()

        thread = threading.Thread(target=holder)
        thread.start()
        try:
            assert held.wait(timeout=10)
            with pytest.raises(ConcurrentUseError, match="mid-cycle"):
                hw.cycle(i=detector.inputs[0])
        finally:
            release.set()
            thread.join(timeout=10)
        # the guard frees once the other driver finishes
        hw.cycle(i=detector.inputs[0])

    def test_error_names_machine_and_thread(self, detector):
        import threading

        from repro.hw.machine import ConcurrentUseError

        hw = HardwareFSM(detector, name="guarded")
        hw._cycle_guard.acquire()
        hw._driver = threading.get_ident()
        try:
            with pytest.raises(ConcurrentUseError, match="guarded"):
                hw.cycle(i=detector.inputs[0])
        finally:
            hw._driver = None
            hw._cycle_guard.release()

    def test_serial_use_unaffected(self, detector):
        hw = HardwareFSM(detector)
        word = [detector.inputs[0], detector.inputs[1]] * 10
        assert [hw.step(i) for i in word] == detector.run(word)

    def test_guard_releases_after_cycle_error(self, detector):
        hw = HardwareFSM(detector)
        with pytest.raises(ValueError):
            hw.cycle()  # no drive at all
        # a failed cycle must not leave the guard held
        hw.cycle(reset=True)

    def test_is_concurrent_use_error_a_runtime_error(self):
        from repro.hw.machine import ConcurrentUseError

        assert issubclass(ConcurrentUseError, RuntimeError)
