"""A14 — Energy cost of gradual reconfiguration (trace-driven).

RAM writes are the most expensive events in the datapath's energy model,
so shorter programs with fewer writes do not just save time — they save
energy.  This benchmark measures, from actual switching activity, the
energy of JSR vs EA migrations and puts both in context against the
traffic surrounding them.
"""

from repro.analysis.tables import format_table
from repro.core.ea import EAConfig, ea_program
from repro.core.jsr import jsr_program
from repro.hw.machine import HardwareFSM
from repro.hw.power import estimate_power, reconfiguration_energy_pj
from repro.workloads.mutate import workload_pair

TRAFFIC_CYCLES = 200


def run_cases():
    rows = []
    for n_deltas in (4, 8, 16):
        src, tgt = workload_pair(12, n_deltas, seed=7700 + n_deltas)
        programs = {
            "JSR": jsr_program(src, tgt),
            "EA": ea_program(
                src, tgt,
                config=EAConfig(population_size=24, generations=25, seed=0),
            ),
        }
        for name, program in programs.items():
            hw = HardwareFSM.for_migration(src, tgt)
            import random

            rng = random.Random(0)
            hw.run([rng.choice(src.inputs) for _ in range(TRAFFIC_CYCLES)])
            start = hw.cycles
            hw.run_program(program)
            end = hw.cycles
            hw.run([rng.choice(tgt.inputs) for _ in range(TRAFFIC_CYCLES)])
            reconf_pj = reconfiguration_energy_pj(hw, start, end)
            total_pj = estimate_power(hw).energy_pj
            rows.append(
                {
                    "|Td|": n_deltas,
                    "method": name,
                    "|Z|": len(program),
                    "writes": program.write_count,
                    "reconf energy (pJ)": reconf_pj,
                    "share of run": reconf_pj / total_pj,
                }
            )
    return rows


def test_reconfiguration_energy(once, record_table):
    rows = once(run_cases)

    by_key = {(row["|Td|"], row["method"]): row for row in rows}
    for n_deltas in (4, 8, 16):
        jsr = by_key[(n_deltas, "JSR")]
        ea = by_key[(n_deltas, "EA")]
        # Shorter programs with fewer writes cost less energy.
        assert ea["reconf energy (pJ)"] < jsr["reconf energy (pJ)"]
        # Migration is a small share of a modest traffic window.
        assert jsr["share of run"] < 0.5

    record_table(
        "energy",
        format_table(
            rows,
            title="A14 — trace-driven energy of gradual reconfiguration "
                  f"(embedded in 2x{TRAFFIC_CYCLES} cycles of traffic)",
            float_digits=3,
        ),
    )
