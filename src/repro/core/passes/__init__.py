"""Correctness-preserving optimization passes over reconfiguration programs.

Every pass maps a valid :class:`~repro.core.program.Program` to an
equivalent one that is no longer, and every pass application is gated by
:class:`PassPipeline` behind full replay validation — see
:mod:`repro.core.passes.pipeline` for the ``-O0`` / ``-O1`` / ``-O2``
level definitions and :mod:`repro.core.passes.chunks` for the
traffic-safe variant used on live-migration chunk plans.
"""

from .base import OptReport, Pass, PassResult, pre_states
from .chunks import optimise_chunks
from .coalesce import CoalesceRepairs
from .dead_writes import EliminateDeadWrites, value_dead
from .pipeline import (
    OPT_LEVELS,
    OptLevel,
    PassPipeline,
    normalise_level,
    optimise_program,
    passes_for_level,
)
from .resets import CollapseResets
from .traverse import ShortenTraverses

__all__ = [
    "OPT_LEVELS",
    "CoalesceRepairs",
    "CollapseResets",
    "EliminateDeadWrites",
    "OptLevel",
    "OptReport",
    "Pass",
    "PassPipeline",
    "PassResult",
    "ShortenTraverses",
    "normalise_level",
    "optimise_chunks",
    "optimise_program",
    "passes_for_level",
    "pre_states",
    "value_dead",
]
