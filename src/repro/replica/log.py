"""The replicated shard log: ordered commands, quorum, group status.

Everything a shard does to its architectural state is one of five
command kinds, and all five were already serialised through the shard's
single driver before replication existed:

* ``serve``     — a committed engine run (final state + cycles);
* ``ram_write`` — one migration chunk's worth of one-write-per-cycle
  RAM writes applied in a traffic gap;
* ``erase``     — an injected fault (erase/upset) with its seed;
* ``retarget``  — a migration commit: the shard now realises a new
  target machine (RST-MUX retargeted, blend invariant restored);
* ``membership`` — the group itself changed (add/remove/replace a
  replica) under a joint quorum.

A :class:`ShardLog` assigns each command a monotonic index at append
time and tracks the *commit index* — the highest entry applied on a
quorum of replicas.  Entries are retained in a bounded ring: a replica
whose applied index has fallen behind the oldest retained entry cannot
catch up by replay and must take the snapshot path (the group's
published tables + final state), which is exactly the
``ExecSnapshot`` / ``table_version`` contract the exec layer already
enforces.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from ..exec import killswitch
from ..obs import instruments as _instruments
from ..obs import journal as _journal

__all__ = [
    "ENTRY_KINDS",
    "LogEntry",
    "ReplicaConfig",
    "ReplicaGroupStatus",
    "ReplicaStatus",
    "ShardLog",
]

#: The closed vocabulary of replicated commands.
ENTRY_KINDS = frozenset(
    {"serve", "ram_write", "erase", "retarget", "membership"}
)

#: Entries retained for replay before a laggard must snapshot-catch-up.
DEFAULT_RETENTION = 1024


@dataclass(frozen=True)
class ReplicaConfig:
    """How many replicas a shard runs and how many must agree.

    ``quorum=None`` means majority (``n // 2 + 1``).  ``effective()``
    honours the ``REPRO_DISABLE_REPLICATION`` kill-switch by collapsing
    to a single replica, so a fleet built with replication configured
    still comes up (as plain shards) when the switch is thrown.
    """

    n: int = 3
    quorum: Optional[int] = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"replica count must be >= 1, got {self.n}")
        if self.quorum is not None and not (
            1 <= self.quorum <= self.n
        ):
            raise ValueError(
                f"quorum must be in [1, {self.n}], got {self.quorum}"
            )

    @property
    def majority(self) -> int:
        return self.n // 2 + 1

    def resolved_quorum(self) -> int:
        """The configured quorum, defaulting to majority."""
        return self.majority if self.quorum is None else self.quorum

    def effective(self) -> "ReplicaConfig":
        """This config with the replication kill-switch applied."""
        if killswitch.REPLICATION.disabled():
            return ReplicaConfig(n=1, quorum=1)
        return self


@dataclass(frozen=True)
class LogEntry:
    """One replicated command (immutable once appended)."""

    index: int
    kind: str
    payload: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "kind": self.kind,
            "payload": dict(self.payload),
        }


class ShardLog:
    """Ordered, bounded command log for one replica group.

    Appends are thread-safe (the shard thread appends; status readers
    may race harmlessly) and each append is journalled as a
    ``replica.append`` event so the flight recorder sees the exact
    command stream every replica applied.
    """

    def __init__(
        self,
        shard: str,
        retention: int = DEFAULT_RETENTION,
    ):
        self.shard = shard
        self.retention = retention
        self._lock = threading.Lock()
        self._entries: List[LogEntry] = []
        self._next_index = 1
        self._commit_index = 0
        self._dropped = 0
        self._appends = _instruments.REPLICA_LOG_APPENDS
        self._commits = _instruments.REPLICA_LOG_COMMITS.bind(shard=shard)

    # -- write side ----------------------------------------------------
    def append(self, kind: str, **payload: Any) -> LogEntry:
        """Assign the next index to one command and retain it."""
        if kind not in ENTRY_KINDS:
            raise ValueError(
                f"unknown log entry kind {kind!r}; expected one of "
                f"{tuple(sorted(ENTRY_KINDS))}"
            )
        with self._lock:
            entry = LogEntry(self._next_index, kind, payload)
            self._next_index += 1
            self._entries.append(entry)
            overflow = len(self._entries) - self.retention
            if overflow > 0:
                del self._entries[:overflow]
                self._dropped += overflow
        _journal.JOURNAL.record(
            _journal.REPLICA_APPEND,
            shard=self.shard,
            index=entry.index,
            kind=kind,
        )
        self._appends.inc(shard=self.shard, kind=kind)
        return entry

    def commit(self, index: int, kind: str = "", quorum: int = 1) -> int:
        """Advance the commit index (monotonic) to ``index``."""
        with self._lock:
            if index <= self._commit_index:
                return self._commit_index
            self._commit_index = index
        _journal.JOURNAL.record(
            _journal.REPLICA_COMMIT,
            shard=self.shard,
            index=index,
            kind=kind,
            quorum=quorum,
        )
        self._commits.inc()
        return index

    # -- read side -----------------------------------------------------
    @property
    def commit_index(self) -> int:
        return self._commit_index

    @property
    def next_index(self) -> int:
        return self._next_index

    @property
    def last_index(self) -> int:
        return self._next_index - 1

    @property
    def dropped(self) -> int:
        """Entries evicted from the ring (replay no longer possible)."""
        return self._dropped

    @property
    def oldest_index(self) -> int:
        """The oldest replayable index (0 when the log is empty)."""
        with self._lock:
            return self._entries[0].index if self._entries else 0

    def entries(
        self, since_index: int = 0, kind: Optional[str] = None
    ) -> Tuple[LogEntry, ...]:
        """Retained entries with ``index > since_index`` in order."""
        with self._lock:
            snapshot = tuple(self._entries)
        return tuple(
            e
            for e in snapshot
            if e.index > since_index and (kind is None or e.kind == kind)
        )

    def can_replay_from(self, applied_index: int) -> bool:
        """Whether a replica at ``applied_index`` can catch up by
        replaying retained entries (else it must snapshot)."""
        with self._lock:
            if not self._entries:
                return applied_index >= self._next_index - 1
            return applied_index >= self._entries[0].index - 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __repr__(self) -> str:
        return (
            f"ShardLog(shard={self.shard!r}, next={self._next_index}, "
            f"commit={self._commit_index}, retained={len(self)})"
        )


@dataclass
class ReplicaStatus:
    """One replica's view as the group reports it."""

    name: str
    applied_index: int
    in_sync: bool
    restarts: int = 0
    pid: Optional[int] = None
    fingerprint: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "applied_index": self.applied_index,
            "in_sync": self.in_sync,
            "restarts": self.restarts,
            "pid": self.pid,
            "fingerprint": self.fingerprint,
        }


@dataclass
class ReplicaGroupStatus:
    """A point-in-time summary of one shard's replica group."""

    shard: str
    n: int
    quorum: int
    commit_index: int
    replicas: List[ReplicaStatus]

    @property
    def in_sync(self) -> int:
        return sum(1 for r in self.replicas if r.in_sync)

    @property
    def quorum_ok(self) -> bool:
        return self.in_sync >= self.quorum

    @property
    def lag(self) -> int:
        """Commit index minus the slowest in-sync replica's applied
        index (0 when every in-sync replica is current)."""
        applied = [
            r.applied_index for r in self.replicas if r.in_sync
        ]
        if not applied:
            return self.commit_index
        return max(0, self.commit_index - min(applied))

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "n": self.n,
            "quorum": self.quorum,
            "commit_index": self.commit_index,
            "in_sync": self.in_sync,
            "quorum_ok": self.quorum_ok,
            "lag": self.lag,
            "replicas": [r.to_dict() for r in self.replicas],
        }
