"""Verilog-2001 backend for plain and reconfigurable FSMs.

Complements the VHDL backend (:mod:`repro.hw.vhdl`) for flows that use
Verilog toolchains.  Two architectures are generated:

* :func:`generate_fsm_verilog` — behavioural two-always-block style with
  localparam state encoding;
* :func:`generate_reconfigurable_verilog` — the Fig. 5 structure with
  inferred RAM arrays, one synchronous write port and write-first
  forwarding, IN-MUX/RST-MUX and the reconfigurator port interface.

As with the VHDL backend, the tests validate structure, not a simulator
run — no Verilog toolchain is assumed.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..core.alphabet import Alphabet, bits_for
from ..core.fsm import FSM

_IDENT = re.compile(r"[^A-Za-z0-9_$]")


def verilog_identifier(symbol: object, prefix: str = "s") -> str:
    """A legal Verilog identifier for an arbitrary symbol."""
    text = _IDENT.sub("_", str(symbol))
    if not text or not (text[0].isalpha() or text[0] == "_"):
        text = f"{prefix}_{text}" if text else prefix
    return text


def _unique(symbols, prefix: str) -> Dict[object, str]:
    mapping: Dict[object, str] = {}
    used = set()
    for sym in symbols:
        base = verilog_identifier(sym, prefix)
        candidate = base
        counter = 1
        while candidate.lower() in used:
            candidate = f"{base}_{counter}"
            counter += 1
        used.add(candidate.lower())
        mapping[sym] = candidate
    return mapping


def generate_fsm_verilog(machine: FSM, module: Optional[str] = None) -> str:
    """Behavioural Verilog: localparam states, two always blocks."""
    module = module or verilog_identifier(machine.name, "fsm")
    in_alpha = Alphabet(machine.inputs)
    out_alpha = Alphabet(machine.outputs)
    st_alpha = Alphabet(machine.states)
    states = _unique(machine.states, "ST")

    lines: List[str] = []
    emit = lines.append
    emit(f"module {module} (")
    emit(f"  input  wire [{in_alpha.width - 1}:0] din,")
    emit("  input  wire clk,")
    emit("  input  wire rst,")
    emit(f"  output reg  [{out_alpha.width - 1}:0] dout")
    emit(");")
    emit("")
    for s in machine.states:
        code = st_alpha.index(s)
        emit(
            f"  localparam [{st_alpha.width - 1}:0] {states[s].upper()} = "
            f"{st_alpha.width}'d{code};"
        )
    emit("")
    emit(f"  reg [{st_alpha.width - 1}:0] state;")
    emit("")
    emit("  always @(posedge clk) begin")
    emit("    if (rst) begin")
    emit(f"      state <= {states[machine.reset_state].upper()};")
    emit("      dout  <= 0;")
    emit("    end else begin")
    emit("      case (state)")
    for s in machine.states:
        emit(f"        {states[s].upper()}: begin")
        emit("          case (din)")
        for i in machine.inputs:
            target, output = machine.entry(i, s)
            in_code = in_alpha.index(i)
            out_code = out_alpha.index(output)
            emit(f"            {in_alpha.width}'d{in_code}: begin")
            emit(f"              state <= {states[target].upper()};")
            emit(f"              dout  <= {out_alpha.width}'d{out_code};")
            emit("            end")
        emit("            default: begin")
        emit(f"              state <= {states[machine.reset_state].upper()};")
        emit("              dout  <= 0;")
        emit("            end")
        emit("          endcase")
        emit("        end")
    emit("        default: begin")
    emit(f"          state <= {states[machine.reset_state].upper()};")
    emit("          dout  <= 0;")
    emit("        end")
    emit("      endcase")
    emit("    end")
    emit("  end")
    emit("")
    emit("endmodule")
    return "\n".join(lines) + "\n"


def generate_reconfigurable_verilog(
    machine: FSM,
    module: Optional[str] = None,
    extra_inputs: int = 0,
    extra_states: int = 0,
    extra_outputs: int = 0,
) -> str:
    """The Fig. 5 reconfigurable architecture as Verilog.

    Same structure as :func:`repro.hw.vhdl.generate_reconfigurable_vhdl`:
    RAM arrays with one synchronous write port and write-first read
    forwarding, IN-MUX, RST-MUX, and the reconfigurator ports.
    """
    module = module or verilog_identifier(f"{machine.name}_reconf", "fsm")
    i_bits = bits_for(len(machine.inputs) + extra_inputs)
    s_bits = bits_for(len(machine.states) + extra_states)
    o_bits = bits_for(len(machine.outputs) + extra_outputs)
    addr_bits = i_bits + s_bits
    depth = 2 ** addr_bits

    in_alpha = Alphabet(machine.inputs)
    out_alpha = Alphabet(machine.outputs)
    st_alpha = Alphabet(machine.states)
    reset_code = st_alpha.index(machine.reset_state)

    lines: List[str] = []
    emit = lines.append
    emit(f"module {module} (")
    emit(f"  input  wire [{i_bits - 1}:0] din,")
    emit("  input  wire clk,")
    emit("  input  wire rst,")
    emit("  input  wire mode,  // 0 = normal, 1 = reconfiguration")
    emit(f"  input  wire [{i_bits - 1}:0] ir,")
    emit(f"  input  wire [{s_bits - 1}:0] hf,")
    emit(f"  input  wire [{o_bits - 1}:0] hg,")
    emit("  input  wire we,")
    emit(f"  output wire [{o_bits - 1}:0] dout")
    emit(");")
    emit("")
    emit(f"  reg [{s_bits - 1}:0] f_ram [0:{depth - 1}];")
    emit(f"  reg [{o_bits - 1}:0] g_ram [0:{depth - 1}];")
    emit(f"  reg [{s_bits - 1}:0] state;")
    emit("")
    emit("  // IN-MUX: external input in normal mode, ir while reconfiguring")
    emit(f"  wire [{i_bits - 1}:0] i_int = mode ? ir : din;")
    emit(f"  wire [{addr_bits - 1}:0] addr = {{i_int, state}};")
    emit("")
    emit("  // write-first forwarding: the written transition is taken")
    emit("  // in the same cycle it is written")
    emit(f"  wire [{s_bits - 1}:0] f_out = (we && mode) ? hf : f_ram[addr];")
    emit("  assign dout = (we && mode) ? hg : g_ram[addr];")
    emit("")
    emit("  integer k;")
    emit("  initial begin")
    emit(f"    state = {s_bits}'d{reset_code};")
    emit("    for (k = 0; k < " + str(depth) + "; k = k + 1) begin")
    emit("      f_ram[k] = 0;")
    emit("      g_ram[k] = 0;")
    emit("    end")
    for trans in machine.transitions():
        addr = (in_alpha.index(trans.input) << s_bits) | st_alpha.index(
            trans.source
        )
        emit(
            f"    f_ram[{addr}] = {s_bits}'d{st_alpha.index(trans.target)}; "
            f"g_ram[{addr}] = {o_bits}'d{out_alpha.index(trans.output)};"
        )
    emit("  end")
    emit("")
    emit("  always @(posedge clk) begin")
    emit("    if (we && mode) begin")
    emit("      f_ram[addr] <= hf;")
    emit("      g_ram[addr] <= hg;")
    emit("    end")
    emit("    // RST-MUX: reset wins over the F-RAM next state")
    emit(f"    state <= rst ? {s_bits}'d{reset_code} : f_out;")
    emit("  end")
    emit("")
    emit("endmodule")
    return "\n".join(lines) + "\n"
