"""The built-in execution backends: the netlist and the table kernels.

Both implement :class:`~repro.exec.protocol.ExecutionBackend`; the
dispatcher and the fleet hot path only ever see that contract.

* :class:`CycleBackend` wraps a live
  :class:`~repro.hw.machine.HardwareFSM`: every step is a real clocked
  cycle (traces, probe counters, exact fault behaviour).  It reads the
  live blend table, so it is the one backend that may serve while a
  migration mutates the RAMs entry by entry.
* :class:`TableBackend` wraps a :class:`~repro.engine.CompiledFSM`
  snapshot of the tables (pure-Python or numpy kernel).  Batched runs
  commit their architectural effect back to the source hardware through
  ``commit_engine_run``; anything the tables cannot serve raises
  :class:`~repro.exec.protocol.TableMiss` *before* the hardware is
  touched, so the caller can replay cycle-accurately from the exact
  same state.

:func:`compile_tables` is the one compilation entry point
(``api.compile_fsm`` delegates here): it owns the FSM-vs-hardware
dispatch and the "compiling with the engine off is a contradiction"
rejection that used to live in ``api.py``.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..core.fsm import FSM, Input, Output, State
from ..engine.compiled import CompiledFSM, EngineError, WordRun
from ..engine.streams import StreamBatch
from ..hw.machine import HardwareFSM
from ..obs import journal as _journal
from ..obs.tracing import span as _span
from .protocol import Capabilities, ExecSnapshot, StaleSnapshot, TableMiss
from .registry import TABLE_KERNELS, canonical, resolve_tables

__all__ = ["CycleBackend", "TableBackend", "compile_tables"]


class CycleBackend:
    """The Fig. 5 netlist as an execution backend.

    Stateless beyond the hardware it wraps: the datapath *is* the
    state.  Never stale (it reads the live RAMs), never batchable (the
    value of the netlist is the per-cycle fidelity), and the only
    backend that serves mid-migration.
    """

    name = "cycle"
    capabilities = Capabilities(
        batchable=False,
        cycle_accurate=True,
        serves_mid_migration=True,
        needs_numpy=False,
        batchable_streams=False,
    )

    def __init__(self, hardware: HardwareFSM):
        self.hardware = hardware

    def step(self, symbol: Input) -> Optional[Output]:
        """One real clocked cycle; hardware faults raise out unwrapped
        (an injected SRAM erasure must quarantine, not fall back)."""
        return self.hardware.step(symbol)

    def run_batch(
        self,
        symbols: Sequence[Input],
        start: Optional[State] = None,
        commit: bool = True,
    ) -> WordRun:
        hw = self.hardware
        snap = None if commit else self.snapshot()
        with _span("engine.run_batch", backend=self.name, symbols=len(symbols)):
            if start is not None and start != hw.state:
                hw.restore_state(start)
            outputs = []
            visits: Dict[State, int] = {}
            try:
                for symbol in symbols:
                    outputs.append(hw.step(symbol))
                    state = hw.state
                    visits[state] = visits.get(state, 0) + 1
                final = hw.state
            finally:
                # A pure query must not leave the machine mid-word, even
                # when a symbol raised; cycle/visit probe counters keep
                # the work that really happened.
                if snap is not None:
                    hw.restore_state(snap.state)
            return WordRun(outputs=outputs, final_state=final, visits=visits)

    def run_streams(
        self,
        words: Sequence[Sequence[Input]],
        starts: Optional[Sequence[Optional[State]]] = None,
    ):
        """A per-stream loop of pure-query :meth:`run_batch` calls: the
        netlist has no lane parallelism (``batchable_streams`` is
        False), but the contract holds — identical results, no commit.
        """
        reset = self.hardware.reset_state
        if starts is None:
            starts = [reset] * len(words)
        return [
            self.run_batch(
                word, start=reset if start is None else start, commit=False
            )
            for word, start in zip(words, starts)
        ]

    def snapshot(self) -> ExecSnapshot:
        return ExecSnapshot(
            state=self.hardware.state,
            table_version=self.hardware.table_version,
        )

    def restore(self, snap: ExecSnapshot) -> None:
        hw = self.hardware
        if (
            snap.table_version is not None
            and snap.table_version != hw.table_version
        ):
            _journal.JOURNAL.record(
                _journal.EXEC_STALE_SNAPSHOT,
                snapshot_version=snap.table_version,
                live_version=hw.table_version,
            )
            raise StaleSnapshot(
                f"snapshot of {hw.name} at table version "
                f"{snap.table_version} cannot be restored at version "
                f"{hw.table_version}: the tables changed underneath it"
            )
        hw.restore_state(snap.state)

    def invalidate(self, reason: str = "explicit") -> None:
        """No-op: the netlist reads the live tables, nothing is cached."""

    def is_stale(self, hw: Optional[HardwareFSM] = None) -> bool:
        return hw is not None and hw is not self.hardware

    def __repr__(self) -> str:
        return f"CycleBackend({self.hardware.name!r})"


class TableBackend:
    """A dense-table snapshot (``repro.engine``) as an execution backend.

    ``table-py`` and ``table-numpy`` are the same class over the two
    engine kernels; the name is derived from the compiled view.  When
    bound to live hardware, committed runs fast-forward the datapath's
    architectural state; when lowered straight from a behavioural FSM
    (``hardware is None``) the backend is a pure function of
    ``(start, symbols)``.
    """

    CAPABILITIES = {
        "table-py": Capabilities(
            batchable=True,
            cycle_accurate=False,
            serves_mid_migration=False,
            needs_numpy=False,
            batchable_streams=True,
        ),
        "table-numpy": Capabilities(
            batchable=True,
            cycle_accurate=False,
            serves_mid_migration=False,
            needs_numpy=True,
            batchable_streams=True,
            max_stream_dtype="int32",
        ),
    }

    def __init__(
        self,
        compiled: CompiledFSM,
        hardware: Optional[HardwareFSM] = None,
    ):
        self.compiled = compiled
        self.hardware = hardware
        self.name = (
            "table-numpy" if compiled.backend == "numpy" else "table-py"
        )
        self.capabilities = self.CAPABILITIES[self.name]

    # -- construction --------------------------------------------------
    @classmethod
    def from_hardware(
        cls, hw: HardwareFSM, backend: str = "auto"
    ) -> "TableBackend":
        """Snapshot a live datapath's RAMs (version-stamped)."""
        kernel = _table_kernel(backend)
        return cls(CompiledFSM.from_hardware(hw, backend=kernel), hw)

    @classmethod
    def from_fsm(cls, fsm: FSM, backend: str = "auto") -> "TableBackend":
        """Lower a behavioural machine (no hardware binding)."""
        kernel = _table_kernel(backend)
        return cls(CompiledFSM.from_fsm(fsm, backend=kernel), None)

    # -- protocol ------------------------------------------------------
    def step(self, symbol: Input) -> Optional[Output]:
        return self.run_batch([symbol]).outputs[0]

    def run_batch(
        self,
        symbols: Sequence[Input],
        start: Optional[State] = None,
        commit: bool = True,
    ) -> WordRun:
        hw = self.hardware
        if start is None:
            start = hw.state if hw is not None else None
        with _span("engine.run_batch", backend=self.name, symbols=len(symbols)):
            try:
                run = self.compiled.run_word(symbols, start=start)
            except EngineError as exc:
                # The table run mutated nothing: the caller may replay
                # the identical symbols cycle-accurately from the same
                # state.
                raise TableMiss(str(exc)) from exc
            if commit and hw is not None:
                hw.commit_engine_run(run.final_state, len(run), run.visits)
            return run

    def run_many(
        self,
        words: Sequence[Sequence[Input]],
        start: Optional[State] = None,
    ):
        """Run many independent words (no commit; lane-parallel on
        numpy).  :class:`TableMiss` on anything the tables lack."""
        try:
            return self.compiled.run_words(words, start=start)
        except EngineError as exc:
            raise TableMiss(str(exc)) from exc

    def run_streams(
        self,
        words: Sequence[Sequence[Input]],
        starts: Optional[Sequence[Optional[State]]] = None,
    ):
        """Serve many independent streams through the stream plane.

        Per-stream start states (``None`` entries mean reset), never
        commits, results in submission order.  On the numpy kernel the
        whole call is a handful of packed-table gathers
        (:meth:`repro.engine.CompiledFSM.run_stream_batch`); the python
        kernel serves the identical contract as a ``run_word`` loop.
        Anything any stream cannot serve raises :class:`TableMiss` for
        the whole call — the table run mutated nothing, so the caller
        replays per-stream to isolate and reproduce the exact failure.
        ``words`` may be a pre-encoded
        :class:`~repro.engine.StreamBatch` — encoded once, replayed
        against every compiled view that shares the input alphabet (the
        EA scores whole populations this way).
        """
        batched = isinstance(words, StreamBatch)
        with _span(
            "engine.run_streams",
            backend=self.name,
            streams=words.n if batched else len(words),
        ):
            try:
                if batched:
                    run = self.compiled.run_stream_batch(
                        words, starts=starts
                    )
                else:
                    run = self.compiled.run_streams(words, starts=starts)
                return run.word_runs()
            except EngineError as exc:
                raise TableMiss(str(exc)) from exc

    def run_stream_plane(
        self,
        batch: StreamBatch,
        starts: Optional[Sequence[Optional[State]]] = None,
    ):
        """Run a pre-encoded batch and return the *un-materialised*
        :class:`~repro.engine.StreamRun`.

        For vectorized consumers — the EA's population scorer — that
        read final states or :meth:`~repro.engine.StreamRun.match_counts`
        straight off the packed matrices and must not pay the
        per-symbol ``WordRun`` materialisation that
        :meth:`run_streams` performs.
        """
        with _span(
            "engine.run_streams", backend=self.name, streams=batch.n
        ):
            try:
                return self.compiled.run_stream_batch(batch, starts=starts)
            except EngineError as exc:
                raise TableMiss(str(exc)) from exc

    def snapshot(self) -> ExecSnapshot:
        hw = self.hardware
        return ExecSnapshot(
            state=hw.state if hw is not None else self.compiled.reset_state,
            table_version=(
                hw.table_version if hw is not None
                else self.compiled.source_version
            ),
        )

    def restore(self, snap: ExecSnapshot) -> None:
        hw = self.hardware
        if hw is None:
            return  # pure-FSM tables carry no architectural state
        if (
            snap.table_version is not None
            and snap.table_version != hw.table_version
        ):
            _journal.JOURNAL.record(
                _journal.EXEC_STALE_SNAPSHOT,
                snapshot_version=snap.table_version,
                live_version=hw.table_version,
            )
            raise StaleSnapshot(
                f"snapshot of {hw.name} at table version "
                f"{snap.table_version} cannot be restored at version "
                f"{hw.table_version}: the tables changed underneath it"
            )
        hw.restore_state(snap.state)

    def invalidate(self, reason: str = "explicit") -> None:
        self.compiled.invalidate(reason=reason)

    def is_stale(self, hw: Optional[HardwareFSM] = None) -> bool:
        """Staleness against ``hw`` (default: the bound hardware)."""
        return self.compiled.is_stale(
            hw if hw is not None else self.hardware
        )

    def __repr__(self) -> str:
        return f"TableBackend({self.name!r}, {self.compiled!r})"


def _table_kernel(backend: str) -> str:
    """Backend spelling (any alias) → engine kernel name."""
    name = canonical(backend)
    if name == "auto":
        return resolve_tables("auto")
    if name not in TABLE_KERNELS:
        raise EngineError(
            f"backend {backend!r} has no dense tables to compile; "
            f"pick one of {tuple(TABLE_KERNELS)} (or their engine-mode "
            "aliases)"
        )
    return resolve_tables(TABLE_KERNELS[name])


def compile_tables(machine, preference: str = "auto") -> CompiledFSM:
    """Lower ``machine`` into dense tables (``api.compile_fsm`` core).

    Accepts a behavioural :class:`FSM` or a live :class:`HardwareFSM`;
    ``preference`` takes backend names and engine-mode aliases.
    ``"off"`` / ``"cycle"`` is rejected — compiling with the engine off
    is a contradiction — and a forced-unavailable table backend raises
    :class:`~repro.exec.protocol.BackendUnavailable` at this boundary,
    not deep inside a kernel.
    """
    name = canonical(preference)
    if name == "cycle":
        raise EngineError("cannot compile with engine mode 'off'")
    kernel = _table_kernel(preference)
    if isinstance(machine, FSM):
        return CompiledFSM.from_fsm(machine, backend=kernel)
    if isinstance(machine, HardwareFSM):
        return CompiledFSM.from_hardware(machine, backend=kernel)
    raise TypeError(
        f"compile_fsm expects an FSM or HardwareFSM, not "
        f"{type(machine).__name__}"
    )
