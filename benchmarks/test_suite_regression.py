"""S2 — Full-suite regression: every named workload through every method.

The kitchen-sink bench: all named migration pairs
(:mod:`repro.workloads.suite`) through JSR, greedy and the EA, each
program replay-validated and bound-checked, each migration additionally
replayed on the cycle-accurate hardware.  A single failing cell fails
the bench — this is the harness that keeps the whole stack honest as it
grows.
"""

from repro.analysis.tables import format_table
from repro.core.bounds import check_program
from repro.core.delta import delta_count
from repro.core.ea import EAConfig, ea_program
from repro.core.greedy import greedy_program
from repro.core.jsr import jsr_program
from repro.hw.machine import HardwareFSM
from repro.workloads.suite import migration_suite

EA_CONFIG = EAConfig(population_size=24, generations=25, seed=0)


def run_suite():
    rows = []
    for name, factory in sorted(migration_suite().items()):
        source, target = factory()
        td = delta_count(source, target)
        lengths = {}
        for method, program in (
            ("jsr", jsr_program(source, target)),
            ("greedy", greedy_program(source, target)),
            ("ea", ea_program(source, target, config=EA_CONFIG)),
        ):
            report = check_program(program)
            assert report.valid, f"{name}/{method} invalid"
            assert report.length >= td, f"{name}/{method} beats Thm 4.3"
            lengths[method] = report.length
        # hardware replay of the best program
        best = min(lengths, key=lengths.get)
        program = {
            "jsr": jsr_program,
            "greedy": greedy_program,
            "ea": lambda s, t: ea_program(s, t, config=EA_CONFIG),
        }[best](source, target)
        hw = HardwareFSM.for_migration(source, target)
        hw.run_program(program)
        assert hw.realises(target), f"{name} hardware replay failed"
        rows.append(
            {
                "workload": name,
                "|S|": f"{len(source.states)}->{len(target.states)}",
                "|Td|": td,
                "JSR": lengths["jsr"],
                "greedy": lengths["greedy"],
                "EA": lengths["ea"],
            }
        )
    return rows


def test_suite_regression(once, record_table):
    rows = once(run_suite)

    assert len(rows) >= 15  # the suite spans all workload families
    for row in rows:
        assert row["EA"] <= row["JSR"]
        assert row["greedy"] <= row["JSR"]

    record_table(
        "suite_regression",
        format_table(
            rows,
            title="S2 — full-suite regression "
                  "(every workload x every heuristic, hardware-verified)",
        ),
    )
