"""Workload generation: the paper's figure machines, random machines and
controlled migration pairs."""

from .library import (
    PAPER_PAIRS,
    elevator_controller,
    fig6_m,
    fig6_m_prime,
    fig7_m,
    fig7_m_prime,
    fig9_delta_order,
    gray_counter,
    ones_detector,
    parity_checker,
    sequence_detector,
    table1_target,
    traffic_light,
    zeros_detector,
)
from .mutate import grow_target, mutate_target, workload_pair
from .random_fsm import RandomFSMSpec, random_fsm
from .suite import migration_suite, suite_names

__all__ = [
    "PAPER_PAIRS",
    "RandomFSMSpec",
    "elevator_controller",
    "fig6_m",
    "fig6_m_prime",
    "fig7_m",
    "fig7_m_prime",
    "fig9_delta_order",
    "gray_counter",
    "grow_target",
    "migration_suite",
    "suite_names",
    "mutate_target",
    "ones_detector",
    "parity_checker",
    "random_fsm",
    "sequence_detector",
    "table1_target",
    "traffic_light",
    "workload_pair",
    "zeros_detector",
]
