"""Clocked register and multiplexer primitives of the Fig. 5 datapath."""

from __future__ import annotations

from typing import Optional

from .signals import BitVector


class Register:
    """Edge-triggered D register bank (the paper's ST-REG).

    The D input is driven combinationally during the cycle; the Q output
    changes only on :meth:`clock`.  Construction fixes the width and the
    power-up value.
    """

    def __init__(self, width: int, initial: BitVector, name: str = "reg"):
        if initial.width != width:
            raise ValueError("initial value width mismatch")
        self.width = width
        self.name = name
        self._q = initial
        self._d: Optional[BitVector] = None

    @property
    def q(self) -> BitVector:
        """The registered output (stable within a cycle)."""
        return self._q

    def drive(self, value: BitVector) -> None:
        """Drive the D input for this cycle."""
        if value.width != self.width:
            raise ValueError(f"{self.name}: D width {value.width} != {self.width}")
        self._d = value

    def clock(self) -> None:
        """Rising edge: latch D into Q.  D must have been driven."""
        if self._d is None:
            raise RuntimeError(f"{self.name}: clocked with undriven D input")
        self._q = self._d
        self._d = None

    def __repr__(self) -> str:
        return f"Register(name={self.name!r}, q={self._q})"


def mux2(select: bool, when_true: BitVector, when_false: BitVector) -> BitVector:
    """2:1 multiplexer (IN-MUX / RST-MUX of Fig. 5).

    ``select`` chooses ``when_true``; widths must agree.
    """
    if when_true.width != when_false.width:
        raise ValueError("mux input widths differ")
    return when_true if select else when_false
