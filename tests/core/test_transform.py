"""Unit tests for machine transformations (Mealy/Moore, composition)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fsm import FSM, FSMError, MooreFSM
from repro.core.transform import (
    cascade_compose,
    mealy_to_moore,
    moore_to_mealy,
    parallel_compose,
    relabel_outputs,
)
from repro.workloads.library import (
    ones_detector,
    parity_checker,
    sequence_detector,
    traffic_light,
    zeros_detector,
)
from repro.workloads.random_fsm import random_fsm


class TestMealyToMoore:
    def test_preserves_behaviour(self, detector):
        moore = mealy_to_moore(detector)
        for word in (list("110111"), list("000"), []):
            assert moore.run(word) == detector.run(word)

    def test_result_is_moore(self, detector):
        assert mealy_to_moore(detector).is_moore()

    def test_state_splitting_bounds(self, detector):
        moore = mealy_to_moore(detector)
        assert len(moore.states) <= len(detector.states) * len(
            detector.outputs
        ) + 1

    def test_initial_output_choice(self, detector):
        moore = mealy_to_moore(detector, initial_output="1")
        assert moore.state_output(moore.reset_state) == "1"

    def test_initial_output_validated(self, detector):
        with pytest.raises(FSMError):
            mealy_to_moore(detector, initial_output="x")

    def test_roundtrip_behaviour(self, detector):
        roundtrip = moore_to_mealy(mealy_to_moore(detector))
        word = list("1011011")
        assert roundtrip.run(word) == detector.run(word)

    def test_moore_input_stays_moore_sized(self):
        moore = traffic_light()
        again = mealy_to_moore(
            moore.to_mealy(), initial_output=moore.state_output("RED")
        )
        # converting an (edge-sampled) Moore machine adds no states
        assert len(again.states) <= len(moore.states) + 1


class TestParallelCompose:
    def test_outputs_paired(self, detector):
        both = parallel_compose(detector, parity_checker())
        outs = both.run(list("110"))
        assert outs == [
            ("0", "1"),
            ("1", "0"),
            ("0", "0"),
        ]

    def test_state_space_is_product(self, detector):
        both = parallel_compose(detector, parity_checker())
        assert len(both.states) == 4

    def test_requires_same_inputs(self, detector):
        with pytest.raises(FSMError):
            parallel_compose(detector, traffic_light().to_mealy())

    def test_component_projection(self, detector):
        second = parity_checker()
        both = parallel_compose(detector, second)
        word = list("101101")
        lefts = [o[0] for o in both.run(word)]
        rights = [o[1] for o in both.run(word)]
        assert lefts == detector.run(word)
        assert rights == second.run(word)


class TestCascadeCompose:
    def test_series_semantics(self, detector):
        chain = cascade_compose(detector, parity_checker())
        word = list("110111")
        inner = detector.run(word)
        assert chain.run(word) == parity_checker().run(inner)

    def test_requires_alphabet_match(self):
        with pytest.raises(FSMError):
            cascade_compose(traffic_light().to_mealy(), parity_checker())

    def test_double_detector(self):
        # detector >> detector: ones-runs of the match indicator
        chain = cascade_compose(ones_detector(), ones_detector())
        word = list("111100")
        assert chain.run(word) == ones_detector().run(
            ones_detector().run(word)
        )


class TestRelabelOutputs:
    def test_inversion(self, detector, mirror):
        inverted = relabel_outputs(
            detector, lambda o: "1" if o == "0" else "0"
        )
        word = list("11011")
        assert inverted.run(word) == [
            "1" if o == "0" else "0" for o in detector.run(word)
        ]

    def test_merging_outputs(self, detector):
        merged = relabel_outputs(detector, lambda _o: "x")
        assert merged.outputs == ("x",)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 7), st.integers(0, 2000),
       st.lists(st.integers(0, 3), max_size=20))
def test_property_moore_conversion_exact(n_states, seed, raw_word):
    machine = random_fsm(n_states=n_states, n_outputs=3, seed=seed)
    moore = mealy_to_moore(machine)
    word = [machine.inputs[v % len(machine.inputs)] for v in raw_word]
    assert moore.run(word) == machine.run(word)
    assert moore.is_moore()
