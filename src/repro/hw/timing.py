"""Critical-path timing model for the Fig. 5 datapath.

The datapath's cycle time is set by the registered loop

    ST-REG (clk→Q) → IN-MUX → F-RAM read → RST-MUX → ST-REG setup

plus, in reconfiguration cycles, the RAM write path (which is parallel
to the read in a write-first RAM and therefore does not lengthen the
loop).  The constants are datasheet-scale values for a Virtex-era part;
as everywhere in :mod:`repro.hw.fpga`, absolute nanoseconds matter only
for ratio-style conclusions — the model's purpose is to turn "cycles"
into comparable wall-clock numbers and to expose how machine size
(through RAM depth) erodes the clock.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.alphabet import bits_for
from ..core.fsm import FSM


@dataclass(frozen=True)
class TimingParameters:
    """Technology constants of the timing model (nanoseconds).

    ``ram_access_base_ns`` covers the smallest Block-RAM configuration;
    ``ram_access_per_addr_bit_ns`` adds the decoder/column-mux cost of
    deeper memories.  Virtex-1 scale defaults.
    """

    clk_to_q_ns: float = 1.2
    mux_ns: float = 0.6
    ram_access_base_ns: float = 3.2
    ram_access_per_addr_bit_ns: float = 0.25
    setup_ns: float = 1.0
    routing_overhead: float = 1.25  # net delays as a factor on logic


@dataclass(frozen=True)
class TimingEstimate:
    """Critical path and resulting clock limits of one implementation."""

    critical_path_ns: float
    f_max_hz: float
    address_bits: int

    def cycles_to_seconds(self, cycles: int) -> float:
        """Wall-clock time of ``cycles`` at the estimated maximum clock."""
        return cycles / self.f_max_hz


def estimate_timing(
    machine: FSM,
    params: TimingParameters = TimingParameters(),
    extra_inputs: int = 0,
    extra_states: int = 0,
) -> TimingEstimate:
    """Critical-path estimate of the Fig. 5 datapath for ``machine``.

    ``extra_*`` add Def. 4.1 superset headroom before sizing (bigger
    supersets mean deeper RAMs mean slower clocks — the price of
    migration headroom, quantified).

    >>> from repro.workloads.library import ones_detector
    >>> est = estimate_timing(ones_detector())
    >>> 10e6 < est.f_max_hz < 500e6
    True
    """
    i_bits = bits_for(len(machine.inputs) + extra_inputs)
    s_bits = bits_for(len(machine.states) + extra_states)
    address_bits = i_bits + s_bits
    ram_ns = (
        params.ram_access_base_ns
        + params.ram_access_per_addr_bit_ns * address_bits
    )
    path_ns = (
        params.clk_to_q_ns
        + params.mux_ns  # IN-MUX
        + ram_ns
        + params.mux_ns  # RST-MUX
        + params.setup_ns
    ) * params.routing_overhead
    return TimingEstimate(
        critical_path_ns=path_ns,
        f_max_hz=1e9 / path_ns,
        address_bits=address_bits,
    )


def headroom_cost(
    machine: FSM,
    extra_states: int,
    params: TimingParameters = TimingParameters(),
) -> float:
    """Fractional clock-frequency loss caused by superset headroom.

    0.0 when the headroom does not change the RAM depth; grows stepwise
    with every extra address bit.
    """
    base = estimate_timing(machine, params=params)
    grown = estimate_timing(machine, params=params, extra_states=extra_states)
    return 1.0 - grown.f_max_hz / base.f_max_hz
