"""The ingestion socket server and its frame protocol.

Covers the wire layer (:mod:`repro.aio.frames`: length-prefixed JSON,
size bound, clean EOF), the server's frame vocabulary (submit / ping /
health, in-band errors, ``id`` echo), and the asyncio obs endpoint
riding the same loop.
"""

import asyncio
import json
import struct

import pytest

from repro.aio import (
    FrameError,
    IngestServer,
    MAX_FRAME,
    decode_frame,
    encode_frame,
)
from repro.aio.frames import read_frame, write_frame
from repro.fleet import FSMFleet
from repro.workloads.library import ones_detector

MODES = ("thread", "process")


class TestFrameCodec:
    def test_round_trip(self):
        frame = {"op": "submit", "key": 7, "symbols": ["1", "0"]}
        assert decode_frame(encode_frame(frame)[4:]) == frame

    def test_length_prefix_is_big_endian_u32(self):
        raw = encode_frame({"a": 1})
        (length,) = struct.unpack(">I", raw[:4])
        assert length == len(raw) - 4

    def test_oversized_frame_refused_on_encode(self):
        with pytest.raises(FrameError):
            encode_frame({"blob": "x" * MAX_FRAME})

    def test_stream_round_trip_and_clean_eof(self):
        frames = [{"op": "ping"}, {"op": "submit", "id": 1}]

        async def run():
            reader = asyncio.StreamReader()
            for frame in frames:
                reader.feed_data(encode_frame(frame))
            reader.feed_eof()
            got = []
            while True:
                frame = await read_frame(reader)
                if frame is None:
                    break
                got.append(frame)
            return got

        assert asyncio.run(run()) == frames

    def test_truncated_frame_raises_incomplete(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame({"op": "ping"})[:-2])
            reader.feed_eof()
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame(reader)

        asyncio.run(run())

    def test_oversized_length_prefix_raises_frame_error(self):
        async def run():
            reader = asyncio.StreamReader()
            reader.feed_data(struct.pack(">I", MAX_FRAME + 1))
            with pytest.raises(FrameError):
                await read_frame(reader)

        asyncio.run(run())


async def _roundtrip(host, port, *frames):
    """Send ``frames`` on one connection; returns the replies."""
    reader, writer = await asyncio.open_connection(host, port)
    replies = []
    try:
        for frame in frames:
            await write_frame(writer, frame)
            replies.append(await read_frame(reader))
    finally:
        writer.close()
    return replies


class TestIngestServer:
    @pytest.mark.parametrize("mode", MODES)
    def test_submit_round_trips_both_modes(self, mode):
        machine = ones_detector()
        word = ["0", "1", "1", "0"]

        async def run(fleet):
            async with IngestServer(fleet) as server:
                (reply,) = await _roundtrip(
                    *server.address,
                    {"op": "submit", "id": 42, "key": "c", "symbols": word},
                )
            return reply

        with FSMFleet(machine, fleet_mode=mode, n_workers=2) as fleet:
            reply = asyncio.run(run(fleet))
        assert reply == {
            "ok": True, "outputs": machine.run(word), "id": 42,
        }

    def test_connection_survives_in_band_errors(self):
        async def run(fleet):
            async with IngestServer(fleet) as server:
                return await _roundtrip(
                    *server.address,
                    {"op": "submit", "key": "c", "symbols": ["x"]},
                    {"op": "submit", "key": "c"},
                    {"op": "bogus", "id": 9},
                    {"op": "ping"},
                )

        with FSMFleet(ones_detector(), n_workers=1) as fleet:
            alphabet, missing, bogus, ping = asyncio.run(run(fleet))
        assert alphabet["ok"] is False
        assert alphabet["error"] == "ValueError"
        assert missing["ok"] is False
        assert missing["error"] == "FrameError"
        assert bogus == {
            "ok": False, "error": "FrameError",
            "message": "unknown op 'bogus'", "id": 9,
        }
        assert ping == {"ok": True, "pong": True}

    def test_health_op_reports_the_fleet(self):
        async def run(fleet):
            async with IngestServer(fleet) as server:
                (reply,) = await _roundtrip(
                    *server.address, {"op": "health"}
                )
            return reply

        with FSMFleet(ones_detector(), n_workers=1) as fleet:
            reply = asyncio.run(run(fleet))
        assert reply["ok"] is True
        assert reply["health"]["status"] in ("ok", "degraded", "critical")

    def test_many_connections_one_loop(self):
        machine = ones_detector()
        word = ["1", "0", "1", "1"]

        async def run(fleet):
            async with IngestServer(fleet) as server:
                replies = await asyncio.gather(*[
                    _roundtrip(
                        *server.address,
                        {"op": "submit", "key": f"conn-{i}",
                         "symbols": word, "session": f"s-{i}"},
                    )
                    for i in range(16)
                ])
            return [r for (r,) in replies]

        with FSMFleet(machine, n_workers=2) as fleet:
            replies = asyncio.run(run(fleet))
        # Independent sessions all start at reset: identical runs.
        for reply in replies:
            assert reply == {"ok": True, "outputs": machine.run(word)}

    def test_reject_ingest_surfaces_overload_in_band(self):
        async def run(fleet):
            server = IngestServer(fleet, ingest="reject")
            async with server:
                replies = await asyncio.gather(*[
                    _roundtrip(
                        *server.address,
                        {"op": "submit", "key": "k",
                         "symbols": ["1"] * 4},
                    )
                    for i in range(32)
                ])
            return [r for (r,) in replies]

        with FSMFleet(
            ones_detector(), n_workers=1, queue_depth=1,
            link_latency_s=0.005,
        ) as fleet:
            replies = asyncio.run(run(fleet))
        outcomes = {r["ok"] for r in replies}
        for reply in replies:
            if not reply["ok"]:
                assert reply["error"] == "FleetOverloaded"
        # With a depth-1 queue and latency per batch, 32 concurrent
        # submitters cannot all be admitted instantly.
        assert False in outcomes


class TestAsyncObsEndpoint:
    def test_obs_rides_the_ingestion_loop(self):
        async def run(fleet):
            server = IngestServer(fleet, obs_port=0)
            async with server:
                obs_host, obs_port = "127.0.0.1", server.obs.port
                reader, writer = await asyncio.open_connection(
                    obs_host, obs_port
                )
                writer.write(b"GET /healthz HTTP/1.1\r\n\r\n")
                raw = await reader.read()
                writer.close()
                # Ingestion still answers on the same loop.
                (pong,) = await _roundtrip(
                    *server.address, {"op": "ping"}
                )
            return raw, pong

        with FSMFleet(ones_detector(), n_workers=1) as fleet:
            raw, pong = asyncio.run(run(fleet))
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Type: application/json" in head
        payload = json.loads(body)
        assert payload["status"] in ("ok", "degraded", "critical")
        assert pong == {"ok": True, "pong": True}

    def test_routes_match_the_threaded_server(self):
        from repro import obs

        async def fetch(port, target):
            reader, writer = await asyncio.open_connection(
                "127.0.0.1", port
            )
            writer.write(
                f"GET {target} HTTP/1.1\r\n\r\n".encode()
            )
            raw = await reader.read()
            writer.close()
            return raw

        async def run(fleet):
            server = IngestServer(fleet, obs_port=0)
            async with server:
                port = server.obs.port
                # One served frame so the registry has aio counters.
                await _roundtrip(*server.address, {"op": "ping"})
                metrics = await fetch(port, "/metrics")
                journal = await fetch(port, "/journal?limit=5")
                missing = await fetch(port, "/nope")
            return metrics, journal, missing

        obs.configure(metrics=True, journal=True)
        try:
            with FSMFleet(ones_detector(), n_workers=1) as fleet:
                metrics, journal, missing = asyncio.run(run(fleet))
        finally:
            obs.configure()
        assert metrics.startswith(b"HTTP/1.1 200")
        assert b"repro_aio_frames_total" in metrics
        assert journal.startswith(b"HTTP/1.1 200")
        assert b"events" in journal
        assert missing.startswith(b"HTTP/1.1 404")

    def test_non_get_is_405(self):
        async def run(fleet):
            server = IngestServer(fleet, obs_port=0)
            async with server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.obs.port
                )
                writer.write(b"POST /metrics HTTP/1.1\r\n\r\n")
                raw = await reader.read()
                writer.close()
            return raw

        with FSMFleet(ones_detector(), n_workers=1) as fleet:
            raw = asyncio.run(run(fleet))
        assert raw.startswith(b"HTTP/1.1 405")

    def test_failed_obs_bind_closes_the_ingestion_socket(self):
        async def run(fleet):
            blocker = await asyncio.start_server(
                lambda r, w: None, "127.0.0.1", 0
            )
            taken = blocker.sockets[0].getsockname()[1]
            server = IngestServer(fleet, obs_port=taken)
            try:
                with pytest.raises(OSError):
                    await server.start()
                assert server._server is None  # nothing half-started
            finally:
                blocker.close()
                await blocker.wait_closed()

        with FSMFleet(ones_detector(), n_workers=1) as fleet:
            asyncio.run(run(fleet))
