"""Span nesting, attribute capture and JSONL round-trip."""

import io

import pytest

from repro.obs.tracing import Tracer, load_jsonl, render_tree


@pytest.fixture
def tracer():
    return Tracer(enabled=True)


class TestNesting:
    def test_depth_and_parent_links(self, tracer):
        with tracer.span("outer"):
            with tracer.span("middle"):
                with tracer.span("inner"):
                    pass
            with tracer.span("sibling"):
                pass
        by_name = {s.name: s for s in tracer.spans}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].parent is None
        assert by_name["middle"].parent == by_name["outer"].index
        assert by_name["inner"].depth == 2
        assert by_name["inner"].parent == by_name["middle"].index
        assert by_name["sibling"].parent == by_name["outer"].index

    def test_durations_recorded_and_nested_spans_shorter(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer, inner = tracer.spans
        assert outer.duration is not None and inner.duration is not None
        assert inner.duration <= outer.duration

    def test_attrs_captured_and_updatable(self, tracer):
        with tracer.span("work", n=4) as sp:
            sp.attrs["result"] = "ok"
        assert tracer.spans[0].attrs == {"n": 4, "result": "ok"}

    def test_exception_marks_span_and_propagates(self, tracer):
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        span = tracer.spans[0]
        assert span.attrs["error"] == "RuntimeError"
        assert span.duration is not None


class TestDisabled:
    def test_disabled_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("work") as sp:
            sp.attrs["ignored"] = 1  # absorbed by the null span
        assert tracer.spans == []

    def test_reenable_mid_process(self):
        tracer = Tracer(enabled=False)
        with tracer.span("skipped"):
            pass
        tracer.enable()
        with tracer.span("kept"):
            pass
        assert [s.name for s in tracer.spans] == ["kept"]


class TestJsonlRoundTrip:
    def test_export_and_load(self, tracer, tmp_path):
        with tracer.span("outer", machine="fig6"):
            with tracer.span("inner"):
                pass
        path = str(tmp_path / "trace.jsonl")
        tracer.export(path)
        loaded = load_jsonl(path)
        assert len(loaded) == 2
        assert [s.name for s in loaded] == ["outer", "inner"]
        assert loaded[0].attrs == {"machine": "fig6"}
        assert loaded[1].parent == loaded[0].index
        assert loaded[1].depth == 1
        assert loaded[1].duration == tracer.spans[1].duration

    def test_export_to_stream(self, tracer):
        with tracer.span("work"):
            pass
        buffer = io.StringIO()
        tracer.export(buffer)
        assert buffer.getvalue().count("\n") == 1

    def test_non_json_attrs_stringified(self, tracer, tmp_path):
        with tracer.span("work", obj=frozenset({"a"})):
            pass
        path = str(tmp_path / "trace.jsonl")
        tracer.export(path)
        assert isinstance(load_jsonl(path)[0].attrs["obj"], str)


class TestRenderTree:
    def test_indentation_follows_depth(self, tracer):
        with tracer.span("outer"):
            with tracer.span("inner", n=2):
                pass
        text = tracer.render_tree()
        lines = text.splitlines()
        assert lines[0].startswith("outer")
        assert lines[1].startswith("  inner")
        assert "n=2" in lines[1]
        assert "ms" in lines[0]

    def test_empty_trace(self):
        assert render_tree([]) == "(empty trace)"
