"""Reset collapsing.

A reset cycle forces the machine into the (retargeted) reset state.  When
the machine is *already there*, the cycle is a no-op that still costs a
clock edge — and the other passes routinely manufacture such no-ops by
deleting the write steps between two resets.  This pass drops every reset
that fires from the reset state itself.

The program's *first* step is deliberately exempt: synthesisers open with
a reset so the program is valid from **any** runtime state ("no matter
what state the given machine M is in, we step into the reset state
first", Sec. 4.4).  Replay validation starts from the source's reset
state and could not see the difference, but a self-reconfiguration
trigger can fire anywhere — position independence is part of the
program's contract, so the leading reset stays.
"""

from __future__ import annotations

from ..program import Program, StepKind
from .base import Pass, pre_states


class CollapseResets(Pass):
    """Drop interior reset steps that fire from the reset state."""

    name = "collapse-resets"

    def run(self, program: Program) -> Program:
        states = pre_states(program)
        reset_target = program.target.reset_state
        keep = [
            step
            for idx, step in enumerate(program.steps)
            if not (
                idx > 0
                and step.kind is StepKind.RESET
                and states[idx] == reset_target
            )
        ]
        if len(keep) == len(program.steps):
            return program
        return program.with_steps(keep)
