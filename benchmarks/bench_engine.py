"""Batch-engine throughput benchmark and regression gate.

Measures symbols/second through three serving paths on the same
workload:

* **per-cycle** — clocking the cycle-accurate Fig. 5 datapath one
  symbol at a time (the pre-engine serving hot path);
* **python** — the compiled dense-table kernel, pure-Python backend
  (sequential stream, ``CompiledFSM.run_word``);
* **numpy** — the vectorized lane-batch kernel
  (``CompiledFSM.run_words``), when numpy is importable.

plus one dispatcher-driven serving row per *registered* execution
backend (``repro.exec``: select → run_batch → commit, the fleet's hot
path without the threads; unavailable backends record why they were
skipped), and end-to-end fleet serving throughput with 1 and 4
workers, engine on vs off.  Writes ``BENCH_engine_throughput.json`` at
the repository root and exits non-zero (the CI ``engine`` job's gate)
if:

* the pure-Python batch kernel is *slower* than per-cycle serving
  (speedup < 1x — the engine must never be a pessimisation), or
* numpy is available but its batch kernel fails a 5x speedup over
  per-cycle serving.

Run with ``make bench-engine``.
"""

from __future__ import annotations

import json
import pathlib
import sys
import time

from repro.engine import CompiledFSM, numpy_available
from repro.exec import Dispatcher, specs
from repro.fleet import FSMFleet
from repro.hw.machine import HardwareFSM
from repro.workloads.library import sequence_detector
from repro.workloads.suite import traffic_words

N_WORDS = 256
WORD_LEN = 64
REPEATS = 3
MIN_PY_SPEEDUP = 1.0
MIN_NUMPY_SPEEDUP = 5.0

# Multi-stream plane: lane counts swept, and the CI gate — the numpy
# stream kernel must beat the per-stream pure-Python loop by 5x once
# 64 independent streams amortize the lane kernel.
STREAM_COUNTS = (1, 8, 64, 512)
STREAM_WORD_LEN = 64
STREAM_GATE_AT = 64
MIN_STREAM_SPEEDUP = 5.0
EA_POPULATION = 16
EA_TRACES = 64


def _best_seconds(fn, repeats: int = REPEATS) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def kernel_rows(machine, words):
    n_symbols = sum(len(w) for w in words)
    rows = {}

    def per_cycle():
        hw = HardwareFSM(machine, trace_max_entries=16)
        for word in words:
            hw.run(word)

    seconds = _best_seconds(per_cycle)
    rows["per_cycle"] = {
        "seconds": seconds, "symbols_per_s": n_symbols / seconds,
    }

    compiled_py = CompiledFSM.from_fsm(machine, backend="python")

    def python_kernel():
        state = machine.reset_state
        for word in words:
            state = compiled_py.run_word(word, start=state).final_state

    seconds = _best_seconds(python_kernel)
    rows["python"] = {
        "seconds": seconds, "symbols_per_s": n_symbols / seconds,
    }

    if numpy_available():
        compiled_np = CompiledFSM.from_fsm(machine, backend="numpy")

        def numpy_kernel():
            compiled_np.run_words(words)

        seconds = _best_seconds(numpy_kernel)
        rows["numpy"] = {
            "seconds": seconds, "symbols_per_s": n_symbols / seconds,
        }
    return n_symbols, rows


def backend_rows(machine, words):
    """Dispatcher-driven serving throughput, one row per registered
    backend (the exec layer's view: select → run_batch → commit)."""
    n_symbols = sum(len(w) for w in words)
    rows = {}
    for spec in specs():
        if not spec.available():
            rows[spec.name] = {
                "skipped": spec.unavailable_reason() or "unavailable",
            }
            continue

        def serve(mode=spec.name):
            hw = HardwareFSM(machine, trace_max_entries=16)
            dispatcher = Dispatcher(mode)
            for word in words:
                dispatcher.select(hw).backend.run_batch(word)

        seconds = _best_seconds(serve)
        rows[spec.name] = {
            "seconds": seconds, "symbols_per_s": n_symbols / seconds,
        }
    return rows


def stream_rows(machine):
    """The multi-stream plane: (n_streams × n_symbols) batches.

    For each lane count, rows over the *same* words: the per-stream
    baseline (a ``run_word`` loop — the pre-stream serving shape, which
    eagerly builds per-symbol output lists), the stream plane on both
    kernels (state propagation + final states, the product vectorized
    consumers like the EA's ``match_counts`` scoring read), and the
    numpy plane *with* full per-stream ``WordRun`` materialisation
    (what the fleet pays when it must hand output lists to futures).
    The CI gate is on the kernel row: per-symbol output-list building
    is O(n_symbols) Python work common to every path that needs it.
    """
    compiled_py = CompiledFSM.from_fsm(machine, backend="python")
    compiled_np = (
        CompiledFSM.from_fsm(machine, backend="numpy")
        if numpy_available()
        else None
    )
    rows = []
    for n in STREAM_COUNTS:
        words = traffic_words(machine, n, STREAM_WORD_LEN, seed=1)
        n_symbols = sum(len(w) for w in words)
        row = {"streams": n, "n_symbols": n_symbols}

        def per_stream():
            for word in words:
                compiled_py.run_word(word)

        seconds = _best_seconds(per_stream)
        row["per_stream_python"] = {
            "seconds": seconds, "symbols_per_s": n_symbols / seconds,
        }

        batch = compiled_py.encode_streams(words)

        def py_streams():
            compiled_py.run_stream_batch(batch).final_states()

        seconds = _best_seconds(py_streams)
        row["stream_python"] = {
            "seconds": seconds, "symbols_per_s": n_symbols / seconds,
        }

        if compiled_np is not None:
            # The encoded batch is alphabet-bound, not kernel-bound:
            # the same packed matrix replays on the numpy view.
            def np_streams():
                compiled_np.run_stream_batch(batch).final_states()

            seconds = _best_seconds(np_streams)
            row["stream_numpy"] = {
                "seconds": seconds,
                "symbols_per_s": n_symbols / seconds,
                "speedup_vs_per_stream": (
                    row["per_stream_python"]["seconds"] / seconds
                ),
            }

            def np_streams_materialised():
                compiled_np.run_stream_batch(batch).word_runs()

            seconds = _best_seconds(np_streams_materialised)
            row["stream_numpy_materialised"] = {
                "seconds": seconds,
                "symbols_per_s": n_symbols / seconds,
            }
        else:
            row["stream_numpy"] = {
                "skipped": "numpy unavailable: stream-kernel gate "
                "not applicable",
            }
        rows.append(row)
    return rows


def ea_rows(machine):
    """EA population scoring, before/after the stream plane.

    *before* — the pre-stream seam: every (candidate, trace) pair is a
    sequential ``run_word`` replay; *after* —
    :func:`repro.core.ea.evaluate_population`, one stream batch per
    candidate over a once-encoded trace set.
    """
    from repro.core.ea import evaluate_population

    words = traffic_words(machine, EA_TRACES, STREAM_WORD_LEN, seed=2)
    traces = [(word, machine.run(word)) for word in words]
    candidates = [machine] * EA_POPULATION
    compiled = [
        CompiledFSM.from_fsm(c, backend="python") for c in candidates
    ]

    def before():
        scores = []
        for view in compiled:
            matched = total = 0
            for word, expected in traces:
                outputs = view.run_word(word).outputs
                total += len(expected)
                matched += sum(
                    1 for got, want in zip(outputs, expected)
                    if got == want
                )
            scores.append(matched / total)
        return scores

    seconds_before = _best_seconds(before)
    seconds_after = _best_seconds(
        lambda: evaluate_population(candidates, traces)
    )
    return {
        "population": EA_POPULATION,
        "traces": EA_TRACES,
        "per_trace_python": {"seconds": seconds_before},
        "stream_plane": {
            "seconds": seconds_after,
            "speedup": seconds_before / seconds_after,
        },
    }


def fleet_row(machine, words, n_workers: int, engine: str):
    n_symbols = sum(len(w) for w in words)
    fleet = FSMFleet(
        machine, n_workers=n_workers, queue_depth=len(words) + 1,
        engine=engine, name=f"bench-{engine}-{n_workers}",
    )
    try:
        started = time.perf_counter()
        futures = [
            fleet.submit(key, word) for key, word in enumerate(words)
        ]
        for future in futures:
            future.result(timeout=60)
        seconds = time.perf_counter() - started
        totals = fleet.totals()
        return {
            "workers": n_workers,
            "engine": engine,
            "seconds": seconds,
            "symbols_per_s": n_symbols / seconds,
            "engine_symbols": totals.engine_symbols,
            "engine_fallbacks": totals.engine_fallbacks,
        }
    finally:
        fleet.close()


def main() -> int:
    machine = sequence_detector("1011")
    words = traffic_words(machine, N_WORDS, WORD_LEN, seed=0)
    n_symbols, kernels = kernel_rows(machine, words)
    backends = backend_rows(machine, words)
    streams = stream_rows(machine)
    ea = ea_rows(machine)

    fleet_words = words[:128]
    fleets = [
        fleet_row(machine, fleet_words, workers, engine)
        for workers in (1, 4)
        for engine in ("off", "auto")
    ]

    per_cycle = kernels["per_cycle"]["symbols_per_s"]
    speedups = {
        name: row["symbols_per_s"] / per_cycle
        for name, row in kernels.items()
        if name != "per_cycle"
    }

    failures = []
    if speedups["python"] < MIN_PY_SPEEDUP:
        failures.append(
            f"pure-Python batch kernel is a pessimisation: "
            f"{speedups['python']:.2f}x < {MIN_PY_SPEEDUP}x per-cycle"
        )
    if "numpy" in speedups and speedups["numpy"] < MIN_NUMPY_SPEEDUP:
        failures.append(
            f"numpy batch kernel speedup {speedups['numpy']:.2f}x < "
            f"{MIN_NUMPY_SPEEDUP}x per-cycle"
        )
    for row in streams:
        gate = row["stream_numpy"]
        if row["streams"] < STREAM_GATE_AT or "skipped" in gate:
            continue
        if gate["speedup_vs_per_stream"] < MIN_STREAM_SPEEDUP:
            failures.append(
                f"numpy stream kernel at {row['streams']} streams: "
                f"{gate['speedup_vs_per_stream']:.2f}x < "
                f"{MIN_STREAM_SPEEDUP}x over the per-stream python loop"
            )

    payload = {
        "benchmark": "engine_throughput",
        "workload": machine.name,
        "n_symbols": n_symbols,
        "numpy_available": numpy_available(),
        "kernels": kernels,
        "backends": backends,
        "speedups_vs_per_cycle": {
            k: round(v, 2) for k, v in speedups.items()
        },
        "multi_stream": streams,
        "ea_evaluate_population": ea,
        "fleet": fleets,
        "criteria": {
            "python_min_speedup": MIN_PY_SPEEDUP,
            "numpy_min_speedup": MIN_NUMPY_SPEEDUP,
            "stream_min_speedup": MIN_STREAM_SPEEDUP,
            "stream_gate_at": STREAM_GATE_AT,
        },
        "failures": failures,
    }
    out = pathlib.Path(__file__).resolve().parent.parent
    out = out / "BENCH_engine_throughput.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")

    print(f"engine throughput over {n_symbols} symbols ({machine.name}):")
    for name, row in kernels.items():
        speedup = (
            f" ({speedups[name]:.1f}x)" if name in speedups else " (1.0x)"
        )
        print(
            f"  {name:10s}: {row['symbols_per_s']:12,.0f} symbols/s"
            f"{speedup}"
        )
    for name, row in backends.items():
        if "skipped" in row:
            print(f"  backend {name:12s}: skipped ({row['skipped']})")
        else:
            print(
                f"  backend {name:12s}: {row['symbols_per_s']:12,.0f} "
                f"symbols/s (dispatcher-driven)"
            )
    for row in streams:
        numpy_part = (
            f"skipped ({row['stream_numpy']['skipped']})"
            if "skipped" in row["stream_numpy"]
            else (
                f"{row['stream_numpy']['symbols_per_s']:12,.0f} symbols/s "
                f"({row['stream_numpy']['speedup_vs_per_stream']:.2f}x "
                f"vs per-stream)"
            )
        )
        print(
            f"  streams {row['streams']:4d}: numpy {numpy_part}; "
            f"python "
            f"{row['stream_python']['symbols_per_s']:12,.0f} symbols/s"
        )
    print(
        f"  ea evaluate_population ({ea['population']} candidates x "
        f"{ea['traces']} traces): "
        f"{ea['stream_plane']['speedup']:.2f}x over per-trace replay"
    )
    for row in fleets:
        print(
            f"  fleet {row['workers']}w engine={row['engine']:4s}: "
            f"{row['symbols_per_s']:12,.0f} symbols/s "
            f"({row['engine_symbols']} via engine)"
        )
    print(f"written: {out}")
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
