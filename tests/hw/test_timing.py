"""Unit tests for the critical-path timing model."""

import pytest

from repro.hw.timing import TimingParameters, estimate_timing, headroom_cost
from repro.workloads.library import ones_detector
from repro.workloads.random_fsm import random_fsm


class TestEstimateTiming:
    def test_small_machine_reasonable_clock(self, detector):
        est = estimate_timing(detector)
        assert 10e6 < est.f_max_hz < 500e6
        assert est.address_bits == 2

    def test_deeper_rams_are_slower(self):
        small = estimate_timing(random_fsm(n_states=4, seed=0))
        big = estimate_timing(random_fsm(n_states=64, n_inputs=8, seed=0))
        assert big.critical_path_ns > small.critical_path_ns
        assert big.f_max_hz < small.f_max_hz

    def test_headroom_slows_clock_stepwise(self, detector):
        # +1 state fits the same address bits -> no cost; +14 adds bits.
        assert headroom_cost(detector, 0) == pytest.approx(0.0)
        assert headroom_cost(detector, 14) > 0

    def test_cycles_to_seconds(self, detector):
        est = estimate_timing(detector)
        assert est.cycles_to_seconds(100) == pytest.approx(100 / est.f_max_hz)

    def test_custom_parameters(self, detector):
        slow = TimingParameters(ram_access_base_ns=30.0)
        assert (
            estimate_timing(detector, params=slow).f_max_hz
            < estimate_timing(detector).f_max_hz
        )

    def test_routing_overhead_scales_path(self, detector):
        lean = TimingParameters(routing_overhead=1.0)
        fat = TimingParameters(routing_overhead=2.0)
        assert estimate_timing(detector, params=fat).critical_path_ns == (
            pytest.approx(
                2 * estimate_timing(detector, params=lean).critical_path_ns
            )
        )
