"""Flight recorder: sequencing, drop accounting, export, timelines."""

import io

import pytest
from hypothesis import given, settings, strategies as st

from repro.obs import context as _context
from repro.obs import journal as jr
from repro.obs.journal import Event, Journal, load_jsonl, migration_timeline


@pytest.fixture
def journal():
    return Journal(capacity=16, enabled=True)


class TestRecording:
    def test_disabled_records_nothing(self):
        j = Journal(capacity=4)
        assert j.record("serve.batch") is None
        assert len(j) == 0

    def test_sequence_is_monotonic(self, journal):
        events = [journal.record("serve.batch", shard=0) for _ in range(5)]
        assert [e.seq for e in events] == [0, 1, 2, 3, 4]

    def test_shard_labels_stringified(self, journal):
        event = journal.record("serve.batch", shard=3)
        assert event.shard == "3"

    def test_capture_active_trace_id(self, journal):
        ctx = _context.new_trace()
        with _context.activate(ctx):
            event = journal.record("dispatch.decision")
        assert event.trace_id == ctx.trace_id
        assert journal.record("dispatch.decision").trace_id is None

    def test_ring_drops_oldest_and_counts(self):
        j = Journal(capacity=4, enabled=True)
        for _ in range(10):
            j.record("serve.batch")
        assert len(j) == 4
        assert j.dropped == 6
        # The retained window is contiguous and starts at the drop count.
        seqs = [e.seq for e in j.events()]
        assert seqs == [6, 7, 8, 9]

    def test_clear_resets_everything(self, journal):
        for _ in range(3):
            journal.record("serve.batch")
        journal.clear()
        assert len(journal) == 0
        assert journal.dropped == 0
        assert journal.record("serve.batch").seq == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Journal(capacity=0)

    def test_event_types_documented(self, journal):
        # Every constant used by the instrumentation has a taxonomy row.
        for name in dir(jr):
            value = getattr(jr, name)
            if name.isupper() and isinstance(value, str) and "." in value:
                assert value in jr.EVENT_TYPES, name


class TestFiltering:
    def test_filters_by_type_shard_and_seq(self, journal):
        journal.record("serve.batch", shard=0)
        journal.record("serve.batch", shard=1)
        journal.record("fleet.quarantine", shard=1)
        assert len(journal.events(type="serve.batch")) == 2
        assert len(journal.events(shard=1)) == 2
        assert len(journal.events(type="serve.batch", shard=1)) == 1
        assert [e.seq for e in journal.events(since_seq=1)] == [1, 2]

    def test_limit_keeps_newest(self, journal):
        for i in range(6):
            journal.record("serve.batch", idx=i)
        tail = journal.events(limit=2)
        assert [e.fields["idx"] for e in tail] == [4, 5]


class TestExport:
    def test_jsonl_round_trip(self, journal):
        ctx = _context.new_trace()
        with _context.activate(ctx):
            journal.record("serve.batch", shard=2, symbols=7)
        buffer = io.StringIO()
        journal.export(buffer)
        events = load_jsonl(buffer.getvalue().splitlines())
        assert len(events) == 1
        event = events[0]
        assert event.type == "serve.batch"
        assert event.shard == "2"
        assert event.trace_id == ctx.trace_id
        assert event.fields["symbols"] == 7

    def test_non_json_fields_stringified(self, journal):
        journal.record("serve.batch", machine=object())
        text = journal.to_jsonl()
        events = load_jsonl(text.splitlines())
        assert isinstance(events[0].fields["machine"], str)


class TestSequenceProperty:
    @settings(max_examples=60, deadline=None)
    @given(
        capacity=st.integers(min_value=1, max_value=32),
        total=st.integers(min_value=0, max_value=120),
    )
    def test_seqs_gap_free_except_counted_drops(self, capacity, total):
        # Property (journal invariant): the retained events are a
        # contiguous, gap-free suffix of the full sequence, and the
        # explicit drop count names exactly the missing prefix.
        j = Journal(capacity=capacity, enabled=True)
        for _ in range(total):
            j.record("serve.batch")
        events = j.events()
        seqs = [e.seq for e in events]
        assert seqs == list(range(j.dropped, total))
        assert j.dropped == max(0, total - capacity)
        assert j.next_seq == total


def _mk(seq, type, shard=None, **fields):
    return Event(seq=seq, ts=float(seq), type=type, shard=shard,
                 fields=fields)


class TestTimeline:
    def test_reconstructs_zero_downtime_window(self):
        events = [
            _mk(0, jr.MIGRATION_ROLLOUT_BEGIN, target="m2", shards=2,
                chunks=3, stall_budget=12),
            _mk(1, jr.MIGRATION_SHARD_BEGIN, shard="0", target="m2",
                chunks=3),
            _mk(2, jr.SERVE_BATCH, shard="0", batches=1, symbols=8,
                downtime_delta=0),
            _mk(3, jr.MIGRATION_CHUNK, shard="0", cycles=6),
            _mk(4, jr.SERVE_BATCH, shard="0", batches=2, symbols=16,
                downtime_delta=0),
            _mk(5, jr.MIGRATION_SHARD_COMMIT, shard="0", target="m2",
                verified=True),
            _mk(6, jr.MIGRATION_SHARD_BEGIN, shard="1", target="m2",
                chunks=3),
            _mk(7, jr.MIGRATION_CHUNK, shard="1", cycles=6),
            _mk(8, jr.MIGRATION_SHARD_COMMIT, shard="1", target="m2",
                verified=True),
            _mk(9, jr.MIGRATION_ROLLOUT_COMMIT, target="m2",
                verified=True, downtime_cycles=0),
        ]
        timeline = migration_timeline(events)
        assert timeline.completed and timeline.verified
        assert timeline.zero_downtime
        shard0 = timeline.shards["0"]
        assert shard0.batches_during == 3
        assert shard0.symbols_during == 24
        assert shard0.migration_cycles == 6
        assert shard0.served_live
        assert not timeline.shards["1"].served_live
        rendered = timeline.render()
        assert "zero-downtime: True" in rendered
        assert "m2" in rendered

    def test_downtime_inside_window_breaks_the_proof(self):
        events = [
            _mk(0, jr.MIGRATION_SHARD_BEGIN, shard="0", target="m2"),
            _mk(1, jr.SERVE_BATCH, shard="0", batches=1, symbols=4,
                downtime_delta=5),
            _mk(2, jr.MIGRATION_SHARD_COMMIT, shard="0", verified=True),
        ]
        timeline = migration_timeline(events)
        assert timeline.completed
        assert not timeline.zero_downtime
        assert timeline.shards["0"].downtime_cycles == 5

    def test_serve_outside_window_does_not_count(self):
        events = [
            _mk(0, jr.SERVE_BATCH, shard="0", downtime_delta=9),
            _mk(1, jr.MIGRATION_SHARD_BEGIN, shard="0", target="m2"),
            _mk(2, jr.MIGRATION_SHARD_COMMIT, shard="0", verified=True),
            _mk(3, jr.SERVE_BATCH, shard="0", downtime_delta=9),
        ]
        timeline = migration_timeline(events)
        assert timeline.zero_downtime

    def test_incomplete_migration_is_not_zero_downtime(self):
        events = [_mk(0, jr.MIGRATION_SHARD_BEGIN, shard="0", target="m")]
        timeline = migration_timeline(events)
        assert not timeline.completed
        assert not timeline.zero_downtime

    def test_rollback_counted(self):
        events = [
            _mk(0, jr.MIGRATION_SHARD_BEGIN, shard="0", target="m"),
            _mk(1, jr.MIGRATION_ROLLBACK, shard="0", restarts=1),
            _mk(2, jr.MIGRATION_SHARD_COMMIT, shard="0", verified=True),
        ]
        assert migration_timeline(events).shards["0"].rollbacks == 1

    def test_empty_renders_gracefully(self):
        assert "no migration events" in migration_timeline([]).render()
