"""Trace propagation across the process boundary.

Two properties, checked under hypothesis-generated traffic:

* every worker-side journal event and span that crosses the pipe
  carries the originating request's trace id — the parent's carrier
  context survives inject → IPC → extract → serve → absorb;
* a remote context's span id is *never* dereferenced: the worker and
  the absorbing parent treat it as opaque, so even an absurd foreign
  index can never crash a serve or corrupt the local span tree.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.obs import configure
from repro.obs import context as obs_context
from repro.obs.journal import JOURNAL, PROCFLEET_WORKER_BATCH
from repro.obs.tracing import TRACER, span
from repro.procfleet import ControlBlock, ShmTableBackend, WorkerSession
from repro.workloads.library import ones_detector

words = st.lists(st.sampled_from(["0", "1"]), min_size=1, max_size=12)


@pytest.fixture(scope="module")
def backend():
    ctl = ControlBlock.create(1)
    session = WorkerSession(ctl, slot=0, label="t")
    backend = ShmTableBackend(ones_detector(), session)
    yield backend
    session.close()
    ctl.close()


def _worker_spans():
    return [s for s in TRACER.spans if s.name == "procfleet.worker.serve"]


def _assert_no_foreign_parent_indexes(spans):
    # Absorbed spans may only parent within the local list; a parent
    # carried from another process must have been dropped to None.
    for record in spans:
        assert record.parent is None or 0 <= record.parent < len(spans)


class TestTraceCrossesThePipe:
    def setup_method(self):
        configure(tracing=True, journal=True)

    def teardown_method(self):
        configure()

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(word=words)
    def test_worker_events_carry_the_request_trace_id(self, backend, word):
        configure(tracing=True, journal=True)  # fresh per example
        with span("client.request") as root:
            run = backend.run_batch(
                word, start=backend.compiled.reset_state, commit=False
            )
        assert run.outputs == ones_detector().run(word)

        batches = [
            e for e in JOURNAL.events()
            if e.type == PROCFLEET_WORKER_BATCH
        ]
        assert batches, "worker batch event did not cross the pipe"
        for event in batches:
            assert event.trace_id == root.trace_id
            assert event.fields["pid"] != 0

        serves = _worker_spans()
        assert serves, "worker serve span did not cross the pipe"
        for record in serves:
            assert record.trace_id == root.trace_id
        _assert_no_foreign_parent_indexes(TRACER.spans)

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(word=words, foreign_span=st.integers(0, 10**9))
    def test_foreign_span_indexes_are_never_dereferenced(
        self, backend, word, foreign_span
    ):
        configure(tracing=True, journal=True)
        # Simulate a request whose carrier points at a parent span index
        # valid only in some other process — e.g. far beyond any local
        # list.  Serving must neither crash nor adopt the index.
        ctx = obs_context.TraceContext(
            trace_id="feedfacefeedface",
            span_id=foreign_span,
            remote=True,
        )
        token = obs_context.attach(ctx)
        try:
            run = backend.run_batch(
                word, start=backend.compiled.reset_state, commit=False
            )
        finally:
            obs_context.detach(token)
        assert run.outputs == ones_detector().run(word)

        serves = _worker_spans()
        assert serves
        for record in serves:
            assert record.trace_id == "feedfacefeedface"
        _assert_no_foreign_parent_indexes(TRACER.spans)


class TestAbsorbSemantics:
    def test_absorbed_tree_stays_connected_locally(self):
        # A worker-side tree (root + child) absorbed into a non-empty
        # local tracer is re-indexed; intra-batch parents remap, the
        # foreign parent of the batch root drops to None.
        configure(tracing=True)
        try:
            with span("local.noise"):
                pass
            absorbed = TRACER.absorb([
                {"name": "w.root", "index": 0, "parent": 999,
                 "depth": 0, "start": 0.0, "duration": 0.1,
                 "trace_id": "t1"},
                {"name": "w.child", "index": 1, "parent": 0,
                 "depth": 1, "start": 0.0, "duration": 0.05,
                 "trace_id": "t1"},
            ])
            root, child = absorbed
            assert root.parent is None  # foreign 999 dropped
            assert child.parent == root.index
            assert root.index == 1 and child.index == 2
        finally:
            configure()

    def test_absorb_noop_when_disabled(self):
        configure()
        assert TRACER.absorb([{"name": "x", "index": 0, "parent": None,
                               "depth": 0, "start": 0.0}]) == []
        assert JOURNAL.absorb([{"type": "x", "seq": 0, "ts": 0.0,
                                "fields": {}}]) == []
