"""Unit tests for repro.hw.signals."""

import pytest

from repro.core.alphabet import Alphabet
from repro.hw.signals import BitVector, SymbolEncoder, ram_address


class TestBitVector:
    def test_value_and_width(self):
        v = BitVector(5, 4)
        assert v.value == 5 and v.width == 4

    def test_rejects_overflow(self):
        with pytest.raises(ValueError):
            BitVector(4, 2)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            BitVector(-1, 2)

    def test_rejects_zero_width(self):
        with pytest.raises(ValueError):
            BitVector(0, 0)

    def test_bits_msb_first(self):
        assert BitVector(6, 3).bits == (1, 1, 0)

    def test_from_bits_roundtrip(self):
        v = BitVector(11, 4)
        assert BitVector.from_bits(v.bits) == v

    def test_from_bits_rejects_garbage(self):
        with pytest.raises(ValueError):
            BitVector.from_bits((1, 2))

    def test_concatenation(self):
        high = BitVector(0b10, 2)
        low = BitVector(0b1, 1)
        joined = high @ low
        assert joined.value == 0b101 and joined.width == 3

    def test_indexing(self):
        v = BitVector(0b101, 3)
        assert v[0] == 1 and v[1] == 0 and v[2] == 1

    def test_slicing_returns_bitvector(self):
        v = BitVector(0b1101, 4)
        assert v[1:3] == BitVector(0b10, 2)

    def test_str_binary(self):
        assert str(BitVector(5, 4)) == "0101"

    def test_equality_includes_width(self):
        assert BitVector(1, 2) != BitVector(1, 3)

    def test_hashable(self):
        assert len({BitVector(1, 2), BitVector(1, 2)}) == 1


class TestSymbolEncoder:
    def test_roundtrip(self):
        enc = SymbolEncoder(Alphabet(["a", "b", "c"]))
        for sym in "abc":
            assert enc.decode(enc.encode(sym)) == sym

    def test_width(self):
        assert SymbolEncoder(Alphabet(range(5))).width == 3

    def test_decode_rejects_wrong_width(self):
        enc = SymbolEncoder(Alphabet(["a", "b"]))
        with pytest.raises(ValueError):
            enc.decode(BitVector(0, 2))

    def test_decode_rejects_garbage_code(self):
        enc = SymbolEncoder(Alphabet(["a", "b", "c"]))
        with pytest.raises(ValueError, match="names no symbol"):
            enc.decode(BitVector(3, 2))


class TestRamAddress:
    def test_input_is_high_bits(self):
        addr = ram_address(BitVector(1, 1), BitVector(0b10, 2))
        assert addr.value == 0b110 and addr.width == 3

    def test_matches_fig5_addressing(self):
        # addr = {i, s}: distinct (i, s) pairs map to distinct addresses.
        seen = set()
        for i in range(2):
            for s in range(4):
                seen.add(ram_address(BitVector(i, 1), BitVector(s, 2)).value)
        assert len(seen) == 8
