"""Unit tests for repro.core.program (programs, steps, replay physics)."""

import pytest

from repro.core.delta import delta_transitions
from repro.core.fsm import Transition
from repro.core.program import (
    Program,
    ReplayError,
    ReplayMachine,
    Step,
    StepKind,
    concatenate,
    reset_step,
    traverse_step,
    write_step,
)
from repro.workloads.library import fig6_m, fig6_m_prime, fig7_m, fig7_m_prime


class TestStep:
    def test_reset_step_carries_no_transition(self):
        step = reset_step()
        assert step.kind is StepKind.RESET and step.transition is None

    def test_reset_step_rejects_transition(self):
        with pytest.raises(ValueError):
            Step(StepKind.RESET, Transition("0", "A", "B", "x"))

    def test_non_reset_requires_transition(self):
        with pytest.raises(ValueError):
            Step(StepKind.TRAVERSE)

    def test_write_kinds(self):
        assert StepKind.WRITE_DELTA.writes
        assert StepKind.WRITE_TEMPORARY.writes
        assert StepKind.WRITE_REPAIR.writes
        assert not StepKind.TRAVERSE.writes
        assert not StepKind.RESET.writes

    def test_write_step_rejects_non_write_kind(self):
        with pytest.raises(ValueError):
            write_step(Transition("0", "A", "B", "x"), StepKind.TRAVERSE)

    def test_str_forms(self):
        t = Transition("0", "S0", "S3", "0")
        assert str(reset_step()) == "rst-transition"
        assert "[temp]" in str(write_step(t, StepKind.WRITE_TEMPORARY))
        assert "[delta]" in str(write_step(t))
        assert "[repair]" in str(write_step(t, StepKind.WRITE_REPAIR))
        assert str(traverse_step(t)) == "(0, S0, S3, 0)"


class TestReplayMachine:
    def test_for_migration_extends_domain(self, fig6_pair):
        m, mp = fig6_pair
        machine = ReplayMachine.for_migration(m, mp)
        assert ("0", "S3") in machine.table
        assert machine.table[("0", "S3")] is None
        assert machine.table[("1", "S0")] == ("S1", "0")

    def test_reset_targets_target_reset_state(self, fig6_pair):
        m, mp = fig6_pair
        machine = ReplayMachine.for_migration(m, mp)
        machine.state = "S2"
        machine.apply(reset_step())
        assert machine.state == mp.reset_state

    def test_traverse_requires_matching_source(self, fig6_pair):
        m, mp = fig6_pair
        machine = ReplayMachine.for_migration(m, mp)
        with pytest.raises(ReplayError, match="fires from"):
            machine.apply(traverse_step(Transition("1", "S1", "S2", "0")))

    def test_traverse_requires_matching_entry(self, fig6_pair):
        m, mp = fig6_pair
        machine = ReplayMachine.for_migration(m, mp)
        with pytest.raises(ReplayError, match="disagrees"):
            machine.apply(traverse_step(Transition("1", "S0", "S2", "0")))

    def test_traverse_rejects_unconfigured_entry(self, fig6_pair):
        m, mp = fig6_pair
        machine = ReplayMachine.for_migration(m, mp)
        machine.state = "S3"
        with pytest.raises(ReplayError, match="unconfigured"):
            machine.apply(traverse_step(Transition("1", "S3", "S3", "1")))

    def test_write_updates_table_and_moves(self, fig6_pair):
        m, mp = fig6_pair
        machine = ReplayMachine.for_migration(m, mp)
        machine.apply(write_step(Transition("1", "S0", "S2", "0"),
                                 StepKind.WRITE_TEMPORARY))
        assert machine.state == "S2"
        assert machine.table[("1", "S0")] == ("S2", "0")
        assert machine.writes == 1

    def test_write_outside_domain_rejected(self, fig6_pair):
        m, mp = fig6_pair
        machine = ReplayMachine.for_migration(m, mp)
        with pytest.raises(ReplayError, match="outside table domain"):
            machine.apply(write_step(Transition("7", "S0", "S0", "0")))

    def test_history_records_every_cycle(self, fig6_pair):
        m, mp = fig6_pair
        machine = ReplayMachine.for_migration(m, mp)
        machine.apply(reset_step())
        machine.apply(traverse_step(Transition("1", "S0", "S1", "0")))
        assert machine.cycles == 2
        assert [before for before, _s, _a in machine.history] == ["S0", "S0"]


class TestProgram:
    def _manual_fig7_program(self):
        """The Example 4.2 three-step program, hand-written."""
        m, mp = fig7_m(), fig7_m_prime()
        steps = [
            write_step(Transition("0", "S0", "S3", "0"), StepKind.WRITE_TEMPORARY),
            write_step(Transition("0", "S3", "S0", "0"), StepKind.WRITE_DELTA),
            write_step(Transition("0", "S0", "S0", "0"), StepKind.WRITE_REPAIR),
        ]
        return Program(steps, m, mp, method="example-4.2")

    def test_example42_program_is_valid(self):
        program = self._manual_fig7_program()
        assert len(program) == 3
        result = program.replay()
        assert result.ok
        assert result.final_state == "S0"
        assert result.writes == 3

    def test_example42_without_temporaries_is_four_cycles(self):
        m, mp = fig7_m(), fig7_m_prime()
        steps = [
            traverse_step(Transition("1", "S0", "S1", "0")),
            traverse_step(Transition("1", "S1", "S2", "0")),
            traverse_step(Transition("1", "S2", "S3", "0")),
            write_step(Transition("0", "S3", "S0", "0")),
        ]
        program = Program(steps, m, mp)
        assert len(program) == 4
        assert program.is_valid()

    def test_incomplete_program_fails_validation(self, fig6_pair):
        m, mp = fig6_pair
        program = Program([reset_step()], m, mp)
        result = program.replay()
        assert not result.ok
        assert result.mismatches

    def test_wrong_terminal_state_fails(self):
        m, mp = fig7_m(), fig7_m_prime()
        steps = [
            write_step(Transition("0", "S0", "S3", "0"), StepKind.WRITE_TEMPORARY),
            write_step(Transition("0", "S3", "S0", "0"), StepKind.WRITE_DELTA),
            write_step(Transition("0", "S0", "S0", "0"), StepKind.WRITE_REPAIR),
            traverse_step(Transition("1", "S0", "S1", "0")),
        ]
        result = Program(steps, m, mp).replay()
        assert not result.ok
        assert any("terminal state" in reason for *_e, reason in result.mismatches)

    def test_illegal_step_reported_not_raised(self, fig6_pair):
        m, mp = fig6_pair
        program = Program(
            [traverse_step(Transition("1", "S2", "S0", "1"))], m, mp
        )
        result = program.replay()
        assert not result.ok
        assert "fires from" in result.mismatches[0][2]

    def test_counters(self):
        program = self._manual_fig7_program()
        assert program.write_count == 3
        assert program.reset_count == 0

    def test_replay_from_alternate_start(self):
        m, mp = fig7_m(), fig7_m_prime()
        steps = [
            reset_step(),
            write_step(Transition("0", "S0", "S3", "0"), StepKind.WRITE_TEMPORARY),
            write_step(Transition("0", "S3", "S0", "0"), StepKind.WRITE_DELTA),
            write_step(Transition("0", "S0", "S0", "0"), StepKind.WRITE_REPAIR),
        ]
        program = Program(steps, m, mp)
        assert program.is_valid(start="S2")

    def test_to_sequence_matches_steps(self):
        program = self._manual_fig7_program()
        rows = program.to_sequence()
        assert len(rows) == 3
        assert rows[0].hi == "0" and rows[0].hf == "S3" and rows[0].write
        assert not rows[0].reset

    def test_to_sequence_reset_rows(self, fig6_pair):
        m, mp = fig6_pair
        rows = Program([reset_step()], m, mp).to_sequence()
        assert rows[0].reset and rows[0].hi is None
        assert "<reset>" in str(rows[0])

    def test_render_lists_steps(self):
        text = self._manual_fig7_program().render()
        assert "|Z| = 3" in text
        assert "z0" in text and "z2" in text

    def test_concatenate_requires_same_pair(self, fig6_pair):
        m, mp = fig6_pair
        p1 = Program([reset_step()], m, mp, method="a")
        p2 = Program([reset_step()], m, mp, method="b")
        joined = concatenate(p1, p2)
        assert len(joined) == 2 and joined.method == "a+b"
        other = Program([reset_step()], fig7_m(), fig7_m_prime())
        with pytest.raises(ValueError):
            concatenate(p1, other)

    def test_iteration_and_indexing(self):
        program = self._manual_fig7_program()
        assert list(program)[0] is program[0]


class TestProgramEquality:
    """Structural __eq__/__hash__: same steps + same migration pair."""

    def _program(self, method="jsr"):
        return Program(
            [reset_step()], fig6_m(), fig6_m_prime(), method=method
        )

    def test_equal_programs_compare_equal(self):
        assert self._program() == self._program()

    def test_method_and_meta_do_not_affect_equality(self):
        a = self._program(method="jsr")
        b = self._program(method="ea")
        b.meta["opt"] = {"level": "O2"}
        assert a == b
        assert hash(a) == hash(b)

    def test_different_steps_differ(self):
        m, mp = fig6_m(), fig6_m_prime()
        a = Program([reset_step()], m, mp)
        b = Program([reset_step(), reset_step()], m, mp)
        assert a != b

    def test_different_pair_differs(self):
        a = self._program()
        b = Program([reset_step()], fig7_m(), fig7_m_prime())
        assert a != b

    def test_renamed_machines_still_equal(self):
        # fingerprinting is structural: machine names are irrelevant
        m, mp = fig6_m(), fig6_m_prime()
        renamed_m = m.renamed({}, name="other-name")
        a = Program([reset_step()], m, mp)
        b = Program([reset_step()], renamed_m, mp)
        assert a == b
        assert hash(a) == hash(b)

    def test_hashable_in_sets(self):
        programs = {self._program(), self._program(), self._program("ea")}
        assert len(programs) == 1

    def test_not_equal_to_other_types(self):
        assert self._program() != "a program"
        assert self._program() != 42
