"""Unit tests for repro.hw.memory (F-RAM / G-RAM model)."""

import pytest

from repro.hw.memory import SyncRAM
from repro.hw.signals import BitVector


def addr(v, w=3):
    return BitVector(v, w)


def data(v, w=2):
    return BitVector(v, w)


class TestGeometry:
    def test_depth_and_bits(self):
        ram = SyncRAM(3, 2)
        assert ram.depth == 8 and ram.bits == 16

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            SyncRAM(0, 2)
        with pytest.raises(ValueError):
            SyncRAM(3, 0)


class TestReadWrite:
    def test_unwritten_reads_none(self):
        ram = SyncRAM(3, 2)
        assert ram.read(addr(0)) is None

    def test_write_not_visible_before_clock_elsewhere(self):
        ram = SyncRAM(3, 2)
        ram.write(addr(1), data(3))
        assert ram.read(addr(2)) is None

    def test_write_first_read_during_write(self):
        # The paper's semantics: the newly written transition is taken in
        # the same cycle, so the read port must return the pending word.
        ram = SyncRAM(3, 2)
        ram.load({1: 0})
        ram.write(addr(1), data(3))
        assert ram.read(addr(1)) == 3

    def test_read_first_mode(self):
        ram = SyncRAM(3, 2, write_first=False)
        ram.load({1: 0})
        ram.write(addr(1), data(3))
        assert ram.read(addr(1)) == 0
        ram.clock()
        assert ram.read(addr(1)) == 3

    def test_clock_commits(self):
        ram = SyncRAM(3, 2)
        ram.write(addr(4), data(2))
        ram.clock()
        assert ram.read(addr(4)) == 2
        assert ram.write_count == 1

    def test_single_write_port(self):
        # One write per cycle: the physical constraint behind Thm. 4.3.
        ram = SyncRAM(3, 2)
        ram.write(addr(0), data(1))
        with pytest.raises(RuntimeError, match="second write"):
            ram.write(addr(1), data(1))

    def test_write_port_frees_after_clock(self):
        ram = SyncRAM(3, 2)
        ram.write(addr(0), data(1))
        ram.clock()
        ram.write(addr(1), data(2))
        ram.clock()
        assert ram.dump() == {0: 1, 1: 2}

    def test_clock_without_write_is_noop(self):
        ram = SyncRAM(3, 2)
        ram.clock()
        assert ram.write_count == 0


class TestValidation:
    def test_address_width_checked(self):
        ram = SyncRAM(3, 2)
        with pytest.raises(ValueError, match="address width"):
            ram.read(BitVector(0, 2))

    def test_data_width_checked(self):
        ram = SyncRAM(3, 2)
        with pytest.raises(ValueError, match="data width"):
            ram.write(addr(0), BitVector(0, 3))

    def test_load_validates_ranges(self):
        ram = SyncRAM(2, 2)
        with pytest.raises(ValueError):
            ram.load({9: 0})
        with pytest.raises(ValueError):
            ram.load({0: 9})

    def test_peek_returns_committed_only(self):
        ram = SyncRAM(2, 2)
        ram.write(addr(1, 2), data(3))
        assert ram.peek(1) is None
        ram.clock()
        assert ram.peek(1) == 3


class TestErase:
    def test_erase_written_word(self):
        ram = SyncRAM(address_width=3, data_width=2)
        ram.load({2: 1})
        assert ram.erase(2) is True
        assert ram.peek(2) is None
        assert 2 not in ram.dump()

    def test_erase_unwritten_word_is_noop(self):
        ram = SyncRAM(address_width=3, data_width=2)
        assert ram.erase(5) is False

    def test_read_after_erase_is_uninitialised(self):
        ram = SyncRAM(address_width=3, data_width=2)
        ram.load({2: 1})
        assert ram.read(addr(2)) == 1
        ram.erase(2)
        assert ram.read(addr(2)) is None

    def test_erase_leaves_other_words(self):
        ram = SyncRAM(address_width=3, data_width=2)
        ram.load({1: 1, 2: 2, 3: 3})
        ram.erase(2)
        assert ram.dump() == {1: 1, 3: 3}
