"""Rolling, zero-downtime migration of a whole fleet.

The scheduler upgrades a fleet one shard at a time.  Each shard executes
its migration as safe incremental chunks in the gaps between batches
(:class:`~repro.core.incremental.IncrementalMigrator`), so the paper's
per-cycle gradual reconfiguration happens *under live traffic*: at no
point is a shard's table anything but a clean old/new blend, and at no
point is more than one shard reconfiguring — the rest of the fleet
serves at full capacity throughout.

**Feasibility** (checked up front, :meth:`MigrationScheduler.analyse`):

* the stall budget must fit the largest single chunk (6 cycles), or the
  migrator can never make progress;
* when the target's reset state is a *new* state, every chunk parks the
  machine there — so all of that state's rows must fit in *one* gap
  (they are ordered first by the plan cache), or traffic between the
  first gaps could read an unconfigured row.

**Downtime** is taken from the existing hardware probes: workers
snapshot the reconf/reset cycle counters around each batch, so a
reconfiguration cycle counts as downtime exactly when it delayed
traffic.  For a feasible plan the rollout asserts this is zero on every
shard; an infeasible plan refuses to start (``force=True`` overrides and
reports the measured, non-zero downtime instead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, TYPE_CHECKING

from ..core.fsm import FSM
from ..core.incremental import Chunk
from ..obs import instruments as _instruments
from ..obs import journal as _journal
from ..obs.tracing import span as _span
from .pool import FleetError
from .worker import MigrationJob

if TYPE_CHECKING:  # pragma: no cover
    from .pool import FSMFleet


class InfeasiblePlanError(FleetError):
    """The plan cannot run with zero downtime under the stall budget."""


@dataclass(frozen=True)
class PlanAnalysis:
    """Feasibility verdict for one (source, target, budget) triple."""

    chunks_total: int
    total_cycles: int
    max_chunk_cycles: int
    priming_cycles: int
    stall_budget: int

    @property
    def feasible(self) -> bool:
        return (
            self.stall_budget >= self.max_chunk_cycles
            and self.stall_budget >= self.priming_cycles
        )

    @property
    def reason(self) -> Optional[str]:
        if self.stall_budget < self.max_chunk_cycles:
            return (
                f"stall budget {self.stall_budget} < largest chunk "
                f"({self.max_chunk_cycles} cycles): no progress possible"
            )
        if self.stall_budget < self.priming_cycles:
            return (
                f"stall budget {self.stall_budget} < priming group "
                f"({self.priming_cycles} cycles): the new reset state's "
                "rows cannot go live atomically"
            )
        return None


@dataclass
class ShardRollout:
    """One shard's slice of a rollout."""

    shard: int
    migration_cycles: int
    service_downtime_cycles: int
    batches_served_during: int
    verified: bool
    restarts: int
    wall_seconds: float


@dataclass
class RolloutReport:
    """Outcome of one fleet-wide rolling migration."""

    target_name: str
    stall_budget: int
    analysis: PlanAnalysis
    shards: List[ShardRollout] = field(default_factory=list)
    wall_seconds: float = 0.0

    @property
    def verified(self) -> bool:
        """Every shard's RAMs hold the target table (hardware-checked)."""
        return bool(self.shards) and all(s.verified for s in self.shards)

    @property
    def service_downtime_cycles(self) -> int:
        """Probe-measured cycles traffic was delayed by reconfiguration."""
        return sum(s.service_downtime_cycles for s in self.shards)

    @property
    def zero_downtime(self) -> bool:
        return self.service_downtime_cycles == 0

    @property
    def migration_cycles(self) -> int:
        """Total reconfiguration cycles spent (across all shards)."""
        return sum(s.migration_cycles for s in self.shards)


class MigrationScheduler:
    """Rolls a fleet to a new target machine, one shard at a time."""

    def __init__(
        self,
        fleet: "FSMFleet",
        stall_budget: Optional[int] = None,
        shard_timeout_s: float = 60.0,
    ):
        self.fleet = fleet
        self.stall_budget = (
            fleet.stall_budget if stall_budget is None else stall_budget
        )
        self.shard_timeout_s = shard_timeout_s

    # ------------------------------------------------------------------
    def analyse(self, target: FSM) -> PlanAnalysis:
        """Feasibility analysis of migrating the fleet to ``target``."""
        chunks = self.fleet.plan_cache.chunks(self.fleet.machine, target)
        return self._analyse_chunks(chunks, self.fleet.machine, target)

    def _analyse_chunks(
        self, chunks: List[Chunk], source: FSM, target: FSM
    ) -> PlanAnalysis:
        new_states = set(target.states) - set(source.states)
        priming = 0
        if target.reset_state in new_states:
            priming = sum(
                len(chunk)
                for chunk in chunks
                if chunk.delta is not None
                and chunk.delta.source == target.reset_state
            )
        return PlanAnalysis(
            chunks_total=len(chunks),
            total_cycles=sum(len(chunk) for chunk in chunks),
            max_chunk_cycles=max((len(c) for c in chunks), default=0),
            priming_cycles=priming,
            stall_budget=self.stall_budget,
        )

    # ------------------------------------------------------------------
    def rollout(self, target: FSM, force: bool = False) -> RolloutReport:
        """Migrate every shard to ``target``; blocks until complete.

        Raises :class:`InfeasiblePlanError` before touching any shard
        when the plan cannot run with zero downtime (unless ``force``).
        """
        fleet = self.fleet
        source = fleet.machine
        chunks = fleet.plan_cache.chunks(source, target)
        analysis = self._analyse_chunks(chunks, source, target)
        if not analysis.feasible and not force:
            raise InfeasiblePlanError(analysis.reason)

        report = RolloutReport(
            target_name=target.name,
            stall_budget=self.stall_budget,
            analysis=analysis,
        )
        started = time.perf_counter()
        _journal.JOURNAL.record(
            _journal.MIGRATION_ROLLOUT_BEGIN,
            target=target.name,
            shards=fleet.n_workers,
            chunks=analysis.chunks_total,
            stall_budget=self.stall_budget,
        )
        with _span(
            "fleet.rollout",
            fleet=fleet.name,
            target=target.name,
            shards=fleet.n_workers,
            chunks=analysis.chunks_total,
        ) as sp:
            for shard in fleet.shards:
                shard_started = time.perf_counter()
                cycles_before = shard.stats.migration_cycles
                downtime_before = shard.stats.service_downtime_cycles
                batches_before = shard.stats.batches_ok
                job = shard.begin_migration(
                    MigrationJob(
                        target=target,
                        chunks=list(chunks),
                        stall_budget=self.stall_budget,
                    )
                )
                if not job.done.wait(timeout=self.shard_timeout_s):
                    raise FleetError(
                        f"shard {shard.index} migration timed out after "
                        f"{self.shard_timeout_s}s"
                    )
                report.shards.append(
                    ShardRollout(
                        shard=shard.index,
                        migration_cycles=(
                            shard.stats.migration_cycles - cycles_before
                        ),
                        service_downtime_cycles=(
                            shard.stats.service_downtime_cycles
                            - downtime_before
                        ),
                        batches_served_during=(
                            shard.stats.batches_ok - batches_before
                        ),
                        verified=bool(job.verified),
                        restarts=job.restarts,
                        wall_seconds=time.perf_counter() - shard_started,
                    )
                )
            fleet.machine = target
            report.wall_seconds = time.perf_counter() - started
            sp.attrs["verified"] = report.verified
            sp.attrs["downtime_cycles"] = report.service_downtime_cycles
        _instruments.FLEET_SERVICE_DOWNTIME.inc(
            report.service_downtime_cycles, fleet=fleet.name
        )
        _journal.JOURNAL.record(
            _journal.MIGRATION_ROLLOUT_COMMIT,
            target=target.name,
            verified=report.verified,
            downtime_cycles=report.service_downtime_cycles,
        )
        return report
