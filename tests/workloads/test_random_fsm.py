"""Unit tests for the seeded random FSM generator."""

import pytest

from repro.workloads.random_fsm import RandomFSMSpec, random_fsm


class TestSpec:
    def test_defaults(self):
        spec = RandomFSMSpec()
        assert spec.n_states == 8 and spec.connect

    def test_validates_sizes(self):
        with pytest.raises(ValueError):
            RandomFSMSpec(n_states=0)
        with pytest.raises(ValueError):
            RandomFSMSpec(n_inputs=0)

    def test_validates_bias(self):
        with pytest.raises(ValueError):
            RandomFSMSpec(self_loop_bias=2.0)


class TestGenerator:
    def test_deterministic_per_seed(self):
        assert random_fsm(seed=5) == random_fsm(seed=5)

    def test_different_seeds_differ(self):
        assert random_fsm(seed=1) != random_fsm(seed=2)

    def test_shape(self):
        m = random_fsm(n_states=6, n_inputs=3, n_outputs=4, seed=0)
        assert len(m.states) == 6
        assert len(m.inputs) == 3
        assert len(m.outputs) == 4
        assert len(m.table) == 18

    def test_strong_connectivity_guaranteed(self):
        for seed in range(10):
            assert random_fsm(n_states=12, seed=seed).is_strongly_connected()

    def test_unconnected_variant_allowed(self):
        # connect=False machines are valid FSMs even if not strongly
        # connected; determinism and completeness still hold (checked by
        # the FSM constructor itself).
        m = random_fsm(n_states=12, connect=False, seed=3)
        assert len(m.table) == 24

    def test_self_loop_bias_increases_self_loops(self):
        def loops(machine):
            return sum(1 for t in machine.transitions() if t.source == t.target)

        free = random_fsm(n_states=12, connect=False, seed=7, self_loop_bias=0.0)
        biased = random_fsm(n_states=12, connect=False, seed=7, self_loop_bias=0.9)
        assert loops(biased) > loops(free)

    def test_single_state_machine(self):
        m = random_fsm(n_states=1, seed=0)
        assert m.states == ("q0",)
        assert m.is_strongly_connected()

    def test_spec_and_kwargs_mutually_exclusive(self):
        with pytest.raises(TypeError):
            random_fsm(RandomFSMSpec(), n_states=4)

    def test_reset_state_is_first(self):
        assert random_fsm(seed=9).reset_state == "q0"
