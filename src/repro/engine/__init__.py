"""Vectorized batch execution engine (the serving fast path).

Public surface:

* :class:`CompiledFSM` — an FSM / live RAM snapshot lowered to dense
  next-state and output tables, with ``step_batch`` / ``run_word`` /
  ``run_words`` kernels;
* :func:`resolve_backend` / :func:`numpy_available` — backend selection
  (pure Python always works; numpy is the optional ``fast`` extra and is
  honoured only when importable and ``REPRO_DISABLE_NUMPY`` is unset);
* :class:`StreamBatch` / :class:`StreamRun` / :class:`StreamTables` —
  the multi-stream plane: many independent sessions encoded once and
  stepped together through dtype-packed tables
  (``CompiledFSM.run_streams`` / ``run_stream_batch``);
* :class:`EngineError` / :class:`UnconfiguredEntry` — failure modes that
  mirror the cycle-accurate datapath's, so callers can fall back to it.

See ``docs/engine.md`` for the compile/invalidate lifecycle and the
fleet integration (when batching kicks in, when serving falls back to
the cycle-accurate netlist).
"""

from .compiled import (
    BACKENDS,
    CompiledFSM,
    EngineError,
    UnconfiguredEntry,
    WordRun,
    numpy_available,
    resolve_backend,
)
from .streams import (
    ExpectedOutputs,
    StreamBatch,
    StreamRun,
    StreamTables,
    stream_dtype_name,
)

__all__ = [
    "BACKENDS",
    "CompiledFSM",
    "EngineError",
    "ExpectedOutputs",
    "StreamBatch",
    "StreamRun",
    "StreamTables",
    "UnconfiguredEntry",
    "WordRun",
    "numpy_available",
    "resolve_backend",
    "stream_dtype_name",
]
