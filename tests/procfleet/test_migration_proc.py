"""Rolling migration across worker *processes*: the zero-downtime proof.

The process fleet reuses the thread fleet's migration machinery — each
shard's chunks replay on the parent's canonical datapath while
mid-migration traffic degrades to the cycle backend — so the journal's
``migration_timeline()`` reconstruction must prove zero downtime exactly
as it does in thread mode, with the added cross-process evidence that
post-cutover serving happened in the worker processes against the *new*
tables (a fresh epoch per shard).
"""

import threading

import pytest

from repro.fleet import FSMFleet, MigrationScheduler
from repro.obs import configure
from repro.obs.journal import (
    JOURNAL,
    PROCFLEET_PUBLISH,
    PROCFLEET_WORKER_BATCH,
    migration_timeline,
)
from repro.workloads.library import sequence_detector
from repro.workloads.suite import traffic_words


def pattern_pair():
    return sequence_detector("1011"), sequence_detector("0110")


@pytest.fixture(autouse=True)
def journal_on():
    configure(journal=True)
    yield
    configure()


class TestProcessRollout:
    def test_zero_downtime_under_traffic(self):
        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=2, family=[target],
                         queue_depth=256, fleet_mode="process")
        try:
            common = [i for i in source.inputs if i in set(target.inputs)]
            words = traffic_words(source, 40, 12, seed=5, inputs=common)
            holder = {}

            def rollout():
                holder["report"] = MigrationScheduler(
                    fleet, stall_budget=12
                ).rollout(target)

            thread = threading.Thread(target=rollout)
            futures = []
            for index, word in enumerate(words):
                if index == 10:
                    thread.start()
                futures.append(fleet.submit(index, word))
            thread.join(timeout=120)
            for future in futures:
                assert future.result(timeout=30) is not None

            report = holder["report"]
            assert report.verified
            assert report.zero_downtime
            assert report.service_downtime_cycles == 0
            assert fleet.machine == target
            for shard in fleet.shards:
                assert shard.hardware.realises(target)

            # The journal's independent reconstruction agrees.
            timeline = migration_timeline(JOURNAL.events())
            assert timeline.completed
            assert timeline.verified
            assert timeline.zero_downtime

            # Post-cutover traffic served in the worker processes
            # against the target's tables.  The publish of the
            # migrated tables is lazy, on each shard's next
            # *worker-bound* serve — and a shard whose whole
            # pre-migration backlog landed in the cycle-fallback
            # window publishes for the first time only now — so drive
            # every shard until the latest publish it journaled
            # carries the migrated hardware's table_version (bounded;
            # each batch must still answer with target behaviour).
            def _published():
                per_shard = {}
                for event in JOURNAL.events():
                    if event.type == PROCFLEET_PUBLISH:
                        per_shard.setdefault(event.shard, []).append(
                            event.fields
                        )
                return per_shard

            def _current(per_shard):
                return set(per_shard) == {"0", "1"} and all(
                    per_shard[str(index)][-1]["table_version"]
                    == shard.hardware.table_version
                    for index, shard in enumerate(fleet.shards)
                )

            session_lanes = {shard: [] for shard in range(fleet.n_workers)}
            for key in range(64):
                if _current(_published()):
                    break
                shard = fleet.shard_for(f"post-{key}")
                lane = session_lanes[shard]
                lane.extend("0110")
                got = fleet.submit(
                    f"post-{key}", list("0110")
                ).result(timeout=30)
                assert got == target.run(lane)[-4:]

            per_shard = _published()
            assert _current(per_shard), per_shard
            for shard, publishes in per_shard.items():
                epochs = [p["epoch"] for p in publishes]
                assert epochs == sorted(epochs)

            pids = {
                e.fields["pid"]
                for e in JOURNAL.events()
                if e.type == PROCFLEET_WORKER_BATCH
            }
            assert pids, "no worker-process batches recorded"
            assert pids.issubset(set(fleet.worker_pids().values()))
        finally:
            fleet.close()

    def test_quiet_rollout_completes_and_verifies(self):
        source, target = pattern_pair()
        fleet = FSMFleet(source, n_workers=2, family=[target],
                         fleet_mode="process")
        try:
            report = MigrationScheduler(fleet, stall_budget=12).rollout(
                target
            )
            assert report.verified
            assert report.zero_downtime
            timeline = migration_timeline(JOURNAL.events())
            assert timeline.completed and timeline.verified
        finally:
            fleet.close()
