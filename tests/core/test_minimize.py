"""Unit tests for Mealy-machine state minimisation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.fsm import FSM
from repro.core.minimize import (
    equivalence_classes,
    is_minimal,
    minimize,
    redundancy,
)
from repro.workloads.library import (
    fig6_m,
    ones_detector,
    parity_checker,
    sequence_detector,
)
from repro.workloads.random_fsm import random_fsm


def duplicated(machine: FSM) -> FSM:
    """A behaviourally equivalent machine with every state doubled."""
    clone = {s: f"{s}_dup" for s in machine.states}
    transitions = []
    for t in machine.transitions():
        transitions.append((t.input, t.source, clone[t.target], t.output))
        transitions.append((t.input, clone[t.source], t.target, t.output))
    return FSM(
        machine.inputs,
        machine.outputs,
        list(machine.states) + [clone[s] for s in machine.states],
        machine.reset_state,
        transitions,
        name=f"{machine.name}_doubled",
    )


class TestEquivalenceClasses:
    def test_minimal_machine_all_singletons(self):
        classes = equivalence_classes(ones_detector())
        assert all(len(block) == 1 for block in classes)

    def test_doubled_machine_pairs(self):
        doubled = duplicated(parity_checker())
        classes = equivalence_classes(doubled)
        assert len(classes) == 2
        assert all(len(block) == 2 for block in classes)

    def test_classes_partition_states(self):
        machine = duplicated(fig6_m())
        classes = equivalence_classes(machine)
        union = set().union(*classes)
        assert union == set(machine.states)
        assert sum(len(b) for b in classes) == len(machine.states)

    def test_output_distinguishes_immediately(self):
        machine = FSM(
            ["a"],
            ["x", "y"],
            ["P", "Q"],
            "P",
            [("a", "P", "P", "x"), ("a", "Q", "Q", "y")],
        )
        assert len(equivalence_classes(machine)) == 2

    def test_deep_distinction(self):
        # States distinguishable only by a length-3 word.
        machine = FSM(
            ["a"],
            ["0", "1"],
            ["A", "B", "C", "D"],
            "A",
            [
                ("a", "A", "B", "0"),
                ("a", "B", "C", "0"),
                ("a", "C", "D", "0"),
                ("a", "D", "D", "1"),
            ],
        )
        assert len(equivalence_classes(machine)) == 4


class TestMinimize:
    def test_idempotent_on_minimal(self):
        machine = ones_detector()
        assert minimize(machine) == machine.renamed({}, name="x") or (
            minimize(machine).states == machine.states
        )

    def test_halves_doubled_machines(self):
        for base in (ones_detector(), parity_checker(), fig6_m()):
            doubled = duplicated(base)
            minimal = minimize(doubled)
            assert len(minimal.states) == len(base.states)
            assert minimal.behaviourally_equivalent(base)

    def test_preserves_behaviour(self):
        machine = duplicated(sequence_detector("101"))
        assert minimize(machine).behaviourally_equivalent(machine)

    def test_reset_state_representative(self):
        machine = duplicated(parity_checker())
        minimal = minimize(machine)
        assert minimal.reset_state == machine.reset_state

    def test_prunes_unused_outputs(self):
        machine = FSM(
            ["a"],
            ["x", "y", "unused"],
            ["P"],
            "P",
            [("a", "P", "P", "x")],
        )
        assert minimize(machine).outputs == ("x",)

    def test_name(self):
        assert minimize(ones_detector()).name == "ones_detector_min"
        assert minimize(ones_detector(), name="tiny").name == "tiny"


class TestRedundancy:
    def test_zero_for_minimal(self):
        assert redundancy(ones_detector()) == 0
        assert is_minimal(ones_detector())

    def test_counts_duplicates(self):
        doubled = duplicated(parity_checker())
        assert redundancy(doubled) == 2
        assert not is_minimal(doubled)


@settings(max_examples=40, deadline=None)
@given(
    st.integers(2, 8),
    st.integers(1, 3),
    st.integers(0, 3000),
)
def test_property_minimize_preserves_behaviour(n_states, n_inputs, seed):
    machine = random_fsm(
        n_states=n_states, n_inputs=n_inputs, n_outputs=2, seed=seed
    )
    minimal = minimize(machine)
    assert minimal.behaviourally_equivalent(machine)
    assert is_minimal(minimal)
    assert len(minimal.states) <= len(machine.states)


@settings(max_examples=30, deadline=None)
@given(st.integers(2, 6), st.integers(0, 3000))
def test_property_doubling_then_minimizing_roundtrips(n_states, seed):
    base = random_fsm(n_states=n_states, n_outputs=2, seed=seed)
    base_min = minimize(base)
    doubled = duplicated(base_min)
    assert len(minimize(doubled).states) == len(base_min.states)
