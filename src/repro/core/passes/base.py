"""Pass protocol and cost reporting for the optimization pipeline.

A *pass* is a correctness-preserving rewrite of a reconfiguration
program: it takes a valid :class:`~repro.core.program.Program` and
returns one that migrates the same pair in no more cycles.  Passes never
self-certify — the :class:`~repro.core.passes.pipeline.PassPipeline`
replays every candidate and rejects any transform that fails validation
or lengthens the program, so a buggy pass degrades to a no-op instead of
shipping a broken migration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..fsm import State
from ..program import Program, ReplayMachine


class Pass:
    """Base class for program-optimization passes.

    Subclasses set :attr:`name` and implement :meth:`run`.  ``run`` may
    assume its input replays validly (the pipeline guarantees it) and
    should return either a rewritten program (use
    :meth:`Program.with_steps` to preserve provenance) or the input
    object unchanged when there is nothing to do.
    """

    name: str = "pass"

    def run(self, program: Program) -> Program:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


def pre_states(program: Program) -> List[State]:
    """The machine state *before* each step of a valid program.

    The shared simulation helper for passes that need trajectory
    information (which state a step fires from) without re-implementing
    replay.
    """
    machine = ReplayMachine.for_migration(program.source, program.target)
    states: List[State] = []
    for step in program.steps:
        states.append(machine.state)
        machine.apply(step)
    return states


@dataclass(frozen=True)
class PassResult:
    """Cost-report row for one pass execution inside a pipeline run."""

    name: str
    steps_before: int
    steps_after: int
    writes_before: int
    writes_after: int
    seconds: float
    accepted: bool
    reason: Optional[str] = None

    @property
    def eliminated(self) -> int:
        """Steps removed (0 for a no-op or rejected pass)."""
        return self.steps_before - self.steps_after if self.accepted else 0

    def to_json(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "steps_before": self.steps_before,
            "steps_after": self.steps_after,
            "writes_before": self.writes_before,
            "writes_after": self.writes_after,
            "seconds": self.seconds,
            "accepted": self.accepted,
            "reason": self.reason,
        }


@dataclass
class OptReport:
    """Per-pass cost report of one full pipeline run."""

    level: str
    steps_before: int
    steps_after: int = 0
    writes_before: int = 0
    writes_after: int = 0
    seconds: float = 0.0
    rounds: int = 0
    results: List[PassResult] = field(default_factory=list)

    @property
    def eliminated(self) -> int:
        return self.steps_before - self.steps_after

    @property
    def rejected(self) -> List[PassResult]:
        """Results of passes the validation gate refused to ship."""
        return [r for r in self.results if not r.accepted and r.reason]

    def to_json(self) -> Dict[str, Any]:
        return {
            "level": self.level,
            "steps_before": self.steps_before,
            "steps_after": self.steps_after,
            "writes_before": self.writes_before,
            "writes_after": self.writes_after,
            "seconds": self.seconds,
            "rounds": self.rounds,
            "passes": [r.to_json() for r in self.results],
        }

    def render(self) -> str:
        """Human-readable multi-line cost report."""
        lines = [
            f"pass pipeline -{self.level}: |Z| {self.steps_before} -> "
            f"{self.steps_after} ({self.eliminated} steps eliminated), "
            f"writes {self.writes_before} -> {self.writes_after}, "
            f"{self.rounds} round{'s' if self.rounds != 1 else ''}, "
            f"{self.seconds * 1e3:.2f} ms"
        ]
        for r in self.results:
            verdict = "ok" if r.accepted else f"REJECTED ({r.reason})"
            delta = r.steps_before - r.steps_after
            lines.append(
                f"  {r.name:<20} -{delta:>3} steps  "
                f"({r.steps_before} -> {r.steps_after})  "
                f"{r.seconds * 1e3:8.3f} ms  {verdict}"
            )
        if not self.results:
            lines.append("  (no passes at this level)")
        return "\n".join(lines)
