"""Unit tests for the JSR heuristic (paper Sec. 4.4, Example 4.3, Fig. 9)."""

import pytest

from repro.core.delta import delta_count, delta_transitions
from repro.core.jsr import jsr_length, jsr_program, jsr_trace
from repro.core.program import StepKind
from repro.workloads.library import (
    fig6_m,
    fig6_m_prime,
    fig9_delta_order,
    ones_detector,
    table1_target,
    zeros_detector,
)
from repro.workloads.mutate import workload_pair
from repro.workloads.random_fsm import random_fsm


class TestJSRLength:
    def test_fig6_exact_length(self, fig6_pair):
        m, mp = fig6_pair
        assert len(jsr_program(m, mp)) == 3 * (4 + 1) == 15

    def test_formula_matches_program(self):
        for seed in range(5):
            src, tgt = workload_pair(8, 5, seed=seed)
            assert len(jsr_program(src, tgt)) == jsr_length(src, tgt)

    def test_length_independent_of_transition_structure(self):
        # Thm. 4.2's proof: the JSR length depends only on |Td| (and on
        # whether the home entry is itself a delta), never on F's shape.
        for seed in (1, 2, 3):
            src, tgt = workload_pair(10, 7, seed=seed)
            length = len(jsr_program(src, tgt))
            assert length in (3 * 7, 3 * (7 + 1))
            assert length == jsr_length(src, tgt)

    def test_trivial_migration_still_three_cycles(self, detector):
        # The algorithm always emits reset + home repair + reset.
        program = jsr_program(detector, detector)
        assert len(program) == 3
        assert program.is_valid()

    def test_home_entry_delta_shortens_program(self):
        # When (i0, S0') is itself a delta it is absorbed by the final
        # repair, giving 3*|Td| instead of 3*(|Td|+1).
        src, tgt = ones_detector(), zeros_detector()
        deltas = delta_transitions(src, tgt)
        i0 = "0"
        assert any(t.entry == (i0, tgt.reset_state) for t in deltas)
        program = jsr_program(src, tgt, i0=i0)
        assert len(program) == 3 * len(deltas)
        assert program.is_valid()


class TestJSRValidity:
    def test_always_valid_on_paper_pairs(self, fig6_pair, fig7_pair, table1_pair):
        for src, tgt in (fig6_pair, fig7_pair, table1_pair):
            assert jsr_program(src, tgt).is_valid()

    def test_valid_from_any_start_state(self, fig6_pair):
        m, mp = fig6_pair
        program = jsr_program(m, mp)
        for start in m.states:
            assert program.is_valid(start=start)

    def test_valid_for_every_choice_of_i0(self, fig6_pair):
        m, mp = fig6_pair
        for i0 in mp.inputs:
            assert jsr_program(m, mp, i0=i0).is_valid()

    def test_rejects_foreign_i0(self, fig6_pair):
        m, mp = fig6_pair
        with pytest.raises(ValueError, match="not an input symbol"):
            jsr_program(m, mp, i0="banana")

    def test_rejects_non_permutation_order(self, fig6_pair):
        m, mp = fig6_pair
        deltas = delta_transitions(m, mp)
        with pytest.raises(ValueError, match="permutation"):
            jsr_program(m, mp, order=deltas[:2])


class TestJSRStructure:
    def test_step_pattern(self, fig6_pair):
        m, mp = fig6_pair
        program = jsr_program(m, mp)
        kinds = [step.kind for step in program]
        assert kinds[0] is StepKind.RESET
        assert kinds[-1] is StepKind.RESET
        assert kinds[-2] is StepKind.WRITE_REPAIR
        # Between: repeating (temporary, delta, reset) triples.
        body = kinds[1:-2]
        for idx in range(0, len(body), 3):
            assert body[idx] is StepKind.WRITE_TEMPORARY
            assert body[idx + 1] is StepKind.WRITE_DELTA
            assert body[idx + 2] is StepKind.RESET

    def test_all_temporaries_reuse_home_entry(self, fig6_pair):
        m, mp = fig6_pair
        program = jsr_program(m, mp, i0="1")
        temps = [
            s.transition for s in program if s.kind is StepKind.WRITE_TEMPORARY
        ]
        assert all(t.entry == ("1", mp.reset_state) for t in temps)

    def test_every_delta_written_exactly_once(self, fig6_pair):
        m, mp = fig6_pair
        program = jsr_program(m, mp)
        written = [
            s.transition for s in program if s.kind is StepKind.WRITE_DELTA
        ]
        assert sorted(map(str, written)) == sorted(
            map(str, delta_transitions(m, mp))
        )


class TestFig9Walkthrough:
    def test_reproduces_paper_program_verbatim(self, fig6_pair):
        m, mp = fig6_pair
        program = jsr_program(m, mp, i0="1", order=fig9_delta_order())
        rendered = [str(s) for s in program]
        assert rendered == [
            "rst-transition",
            "(1, S0, S2, 0) [temp]",
            "(1, S2, S3, 0) [delta]",
            "rst-transition",
            "(1, S0, S3, 0) [temp]",
            "(1, S3, S3, 1) [delta]",
            "rst-transition",
            "(1, S0, S1, 0) [temp]",
            "(0, S1, S0, 0) [delta]",
            "rst-transition",
            "(1, S0, S3, 0) [temp]",
            "(0, S3, S0, 0) [delta]",
            "rst-transition",
            "(1, S0, S1, 0) [repair]",
            "rst-transition",
        ]

    def test_trace_narrates_each_step(self, fig6_pair):
        m, mp = fig6_pair
        lines = jsr_trace(m, mp, i0="1", order=fig9_delta_order())
        assert len(lines) == 15
        assert "jump via temporary transition" in lines[1]
        assert "reconfigure delta transition" in lines[2]
        assert "repair home entry" in lines[13]


class TestJSRScaling:
    @pytest.mark.parametrize("n_deltas", [1, 2, 4, 8, 12])
    def test_random_workloads(self, n_deltas):
        src, tgt = workload_pair(10, n_deltas, seed=100 + n_deltas)
        program = jsr_program(src, tgt)
        assert program.is_valid()
        assert len(program) == 3 * (n_deltas + 1)

    def test_growing_state_space(self):
        src = random_fsm(n_states=6, seed=1)
        from repro.workloads.mutate import grow_target

        tgt = grow_target(src, 3, seed=1)
        program = jsr_program(src, tgt)
        assert program.is_valid()
        assert len(program) == 3 * (delta_count(src, tgt) + 1)
