"""One fleet shard: a datapath, a bounded FIFO queue, a worker thread.

A shard owns exactly one :class:`~repro.hw.machine.HardwareFSM` (sized
for the fleet's whole machine family, Def. 4.1 supersets) and is the
*only* thread that ever clocks it — the pool's concurrency story is
"share nothing", which is also what the single-driver guard on the
datapath enforces.  The worker loop interleaves three duties:

* **serving** — pop a batch, run its symbols, resolve its future.  The
  worker never picks an execution backend itself: it asks its
  :class:`~repro.exec.Dispatcher` (which owns every staleness /
  mid-migration / availability rule) and then drives whatever backend
  comes back through the :class:`~repro.exec.ExecutionBackend`
  protocol.  A batchable backend serves coalesced runs of queued
  batches in one call (committing the architectural state back to the
  datapath); a :class:`~repro.exec.TableMiss` replays the same batches
  through the cycle-accurate backend from the exact same state, so
  behaviour (including fault semantics and quarantine) is identical
  whichever backend serves;
* **migrating** — between batches (and in idle gaps) run whole safe
  chunks of the pending gradual migration, never exceeding the stall
  budget per gap, exactly the paper's one-entry-per-cycle rollout;
* **healing** — a batch that raises (e.g. an injected SRAM fault)
  quarantines the shard: the future gets the error, the datapath is
  re-seeded from the reset state of the committed machine, an active
  migration restarts from its first chunk, and the incident is counted.

Downtime is measured with the existing observability probes: the
reconf/reset cycle counters are snapshotted around the serving section,
so any reconfiguration cycle that delays a batch shows up in
``service_downtime_cycles``.  A feasible plan keeps that at zero.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.fsm import FSM, Input, Output, State
from ..core.incremental import Chunk, IncrementalMigrator
from ..exec import Dispatcher, TableMiss
from ..exec import batching as _batching
from ..hw.machine import HardwareFSM
from ..obs import context as _context
from ..obs import instruments as _instruments
from ..obs import journal as _journal
from ..obs.probes import ProbeReport, probe_hardware
from ..obs.tracing import span as _span

#: Queue sentinel asking the worker thread to exit.
_STOP = object()

#: Upper bound on batches coalesced into one backend run (handed to the
#: dispatcher, which owns the coalescing policy).
_MAX_COALESCE = 32


@dataclass
class ShardStats:
    """Monotonic per-shard counters (read from any thread)."""

    batches_ok: int = 0
    batches_failed: int = 0
    symbols_served: int = 0
    rejected: int = 0
    cancelled: int = 0
    incidents: int = 0
    migrations_done: int = 0
    migration_cycles: int = 0
    service_downtime_cycles: int = 0
    engine_batches: int = 0
    engine_symbols: int = 0
    engine_fallbacks: int = 0
    last_error: Optional[str] = None


@dataclass
class _Batch:
    symbols: Tuple[Input, ...]
    future: Future
    #: The submitting thread's trace context, captured at submit() and
    #: re-activated by the worker so the serve joins the client's tree.
    ctx: Optional[_context.TraceContext] = None
    #: Which state chain this batch extends.  ``None`` is the shard's
    #: datapath lane (the pre-session contract: runs from the live
    #: ST-REG state and commits back).  Any other hashable names an
    #: independent *session*: its own state chain beside the datapath,
    #: starting from the committed machine's reset state.  Batches from
    #: different sessions are independent streams, which is what lets a
    #: quiescent queue coalesce *across* sessions into one stream batch.
    session: Optional[Hashable] = None


@dataclass
class _Fault:
    """Control item: apply a fault injector to the shard's datapath."""

    inject: Callable[[HardwareFSM], object]
    future: Future


@dataclass
class _Membership:
    """Control item: change the shard's replica-group membership.

    Applied by the shard's own thread between batches, so membership
    entries serialise with every other log entry and no future is ever
    in flight on a replica being swapped out.
    """

    op: str
    replica: Optional[str]
    future: Future


@dataclass
class MigrationJob:
    """One shard's share of a rolling migration."""

    target: FSM
    chunks: List[Chunk]
    stall_budget: int
    done: threading.Event = field(default_factory=threading.Event)
    verified: Optional[bool] = None
    restarts: int = 0
    _migrator: Optional[IncrementalMigrator] = None


class ShardWorker(threading.Thread):
    """The serving thread of one shard (see module docstring)."""

    def __init__(
        self,
        index: int,
        machine: FSM,
        extra_inputs: Sequence[Input] = (),
        extra_outputs: Sequence = (),
        extra_states: Sequence = (),
        queue_depth: int = 64,
        poll_interval_s: float = 0.002,
        link_latency_s: float = 0.0,
        trace_max_entries: int = 256,
        fleet_name: str = "fleet",
        engine: str = "auto",
        replication=None,
    ):
        super().__init__(name=f"{fleet_name}-shard-{index}", daemon=True)
        # Validates the mode and fails fast on an impossible request
        # (e.g. a forced numpy backend without numpy installed).
        self.dispatcher = self._make_dispatcher(engine, index)
        self.engine_mode = engine
        self.index = index
        self.machine = machine
        self._extras = (
            tuple(extra_inputs), tuple(extra_outputs), tuple(extra_states)
        )
        self._trace_max = trace_max_entries
        self._fleet_name = fleet_name
        self.queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self.poll_interval_s = poll_interval_s
        self.link_latency_s = link_latency_s
        self.stats = ShardStats()
        self.serving_inputs = frozenset(machine.inputs)
        self.hardware = self._build_hardware(machine)
        #: The shard's replica group (None: classic single-replica
        #: shard, zero hot-path overhead).  Built after the leader
        #: datapath exists — followers replicate it.
        self.replica_group = self._make_replica_group(replication)
        #: Per-session state chains (session key -> current state).
        #: Only the worker thread touches this.  Session states are
        #: symbolic, so they survive quarantine (the rebuilt datapath
        #: serves the same machine); a migration commit prunes sessions
        #: whose state does not exist in the new machine — those
        #: restart from the new reset state on their next batch.
        self._sessions: Dict[Hashable, State] = {}
        self._job: Optional[MigrationJob] = None
        self._stopping = threading.Event()
        # Pre-bound metric handles: the serving loop publishes the same
        # label sets thousands of times per second, so validate and
        # canonicalise them once here.  The timing histograms sample
        # 1-in-8 (recorded with weight 8, still unbiased) — duration
        # distributions need far fewer points than counters need counts.
        label = str(index)
        self._m_batches_ok = _instruments.FLEET_BATCHES.bind(
            outcome="ok", shard=label
        )
        self._m_batches_error = _instruments.FLEET_BATCHES.bind(
            outcome="error", shard=label
        )
        self._m_symbols = _instruments.FLEET_SYMBOLS.bind(shard=label)
        self._m_migration_cycles = _instruments.FLEET_MIGRATION_CYCLES.bind(
            shard=label
        )
        self._m_batch_seconds = _instruments.FLEET_BATCH_SECONDS.bind(
            sample_shift=3, shard=label
        )
        self._m_served = {}  # (path, backend) -> BoundCounter
        self._m_batch_size = {}  # backend -> BoundHistogram (sampled)

    # ------------------------------------------------------------------
    def _make_dispatcher(self, engine: str, index: int) -> Dispatcher:
        """The shard's dispatcher; the process-mode shard overrides this
        to pin ``table-shm`` and bind its worker session."""
        return Dispatcher(
            engine, coalesce_limit=_MAX_COALESCE, shard=str(index)
        )

    def _make_replica_group(self, replication):
        """The shard's replica group for ``replication`` (a
        :class:`~repro.replica.ReplicaConfig`), or ``None`` when the
        shard runs unreplicated.  The process-mode shard overrides this
        to adapt its worker-process group instead of building follower
        datapaths."""
        if replication is None:
            return None
        from ..replica.group import ReplicaGroup

        return ReplicaGroup(self, replication)

    def shutdown(self) -> None:
        """Release per-shard resources after the thread has exited
        (no-op in thread mode; process shards close their session)."""

    def _build_hardware(self, machine: FSM) -> HardwareFSM:
        extra_i, extra_o, extra_s = self._extras
        return HardwareFSM(
            machine,
            extra_inputs=extra_i,
            extra_outputs=extra_o,
            extra_states=extra_s,
            name=f"{self._fleet_name}-shard{self.index}_{machine.name}",
            trace_max_entries=self._trace_max,
        )

    def _downtime(self) -> int:
        return probe_hardware(self.hardware).downtime_cycles

    def probe(self) -> ProbeReport:
        """Probe snapshot of the shard's datapath (racy but read-only)."""
        return probe_hardware(self.hardware)

    @property
    def label(self) -> str:
        return str(self.index)

    def _served_handle(self, path: str, backend: str):
        key = (path, backend)
        handle = self._m_served.get(key)
        if handle is None:
            handle = self._m_served[key] = _instruments.ENGINE_SERVED.bind(
                path=path, backend=backend
            )
        return handle

    def _batch_size_handle(self, backend: str):
        handle = self._m_batch_size.get(backend)
        if handle is None:
            handle = self._m_batch_size[backend] = (
                _instruments.ENGINE_BATCH_SIZE.bind(
                    sample_shift=3, backend=backend
                )
            )
        return handle

    # -- migration -----------------------------------------------------
    def begin_migration(self, job: MigrationJob) -> MigrationJob:
        """Hand the shard its migration job (picked up between batches)."""
        if self._job is not None and not self._job.done.is_set():
            raise RuntimeError(
                f"shard {self.index} already has a migration in flight"
            )
        self._job = job
        return job

    def _migrating(self) -> bool:
        """Whether a migration job is in flight (dispatcher input)."""
        job = self._job
        return job is not None and not job.done.is_set()

    def _migration_tick(self) -> None:
        job = self._job
        if job is None or job.done.is_set():
            return
        try:
            self._migration_step(job)
        except Exception as exc:
            # A fault mid-reconfiguration must not kill the worker: the
            # shard quarantines (re-seed + restart the migration) like a
            # serving fault would.  Deterministic failures (an unsound
            # chunk list) would retry forever, so restarts are capped and
            # the job is surfaced as unverified instead of hanging the
            # rollout.
            self._quarantine(exc)
            if job.restarts > 5 and not job.done.is_set():
                job.verified = False
                job.done.set()

    def _migration_step(self, job: MigrationJob) -> None:
        if job._migrator is None:
            # Restrict traffic to the inputs both machines understand:
            # rows for target-only inputs go live chunk by chunk, and old
            # clients keep old symbols during an upgrade anyway.
            self.serving_inputs = frozenset(
                i for i in self.machine.inputs if i in set(job.target.inputs)
            )
            job._migrator = IncrementalMigrator(
                self.hardware, self.machine, job.target, chunks=job.chunks
            )
            _journal.JOURNAL.record(
                _journal.MIGRATION_SHARD_BEGIN,
                shard=self.label,
                target=job.target.name,
                chunks=len(job.chunks),
            )
        migrator = job._migrator
        if not migrator.done:
            used = migrator.stall(job.stall_budget)
            self.stats.migration_cycles += used
            self._m_migration_cycles.inc(used)
            _journal.JOURNAL.record(
                _journal.MIGRATION_CHUNK, shard=self.label, cycles=used
            )
            if used and self.replica_group is not None:
                # The same chunks in the same gap on every replica:
                # one identical one-write-per-cycle sequence group-wide.
                self.replica_group.on_chunk(job, used)
        if migrator.done:
            verified = self.hardware.realises(job.target)
            if self.replica_group is not None:
                # Before the machine swap: a follower that never saw a
                # chunk gap still migrates from the correct source.
                verified = self.replica_group.on_commit(job, verified)
            job.verified = verified
            self.machine = job.target
            self.serving_inputs = frozenset(job.target.inputs)
            if self._sessions:
                # Sessions parked on a state the new machine kept go on
                # seamlessly; ones whose state vanished restart from the
                # new reset state on their next batch.
                valid = frozenset(job.target.states)
                self._sessions = {
                    key: state
                    for key, state in self._sessions.items()
                    if state in valid
                }
            self.stats.migrations_done += 1
            _instruments.FLEET_SHARD_MIGRATIONS.inc(
                shard=self.label, verified=str(verified).lower()
            )
            _journal.JOURNAL.record(
                _journal.MIGRATION_SHARD_COMMIT,
                shard=self.label,
                target=job.target.name,
                verified=verified,
            )
            job.done.set()

    # -- failure handling ----------------------------------------------
    def _quarantine(self, exc: BaseException) -> None:
        """Re-seed the shard from the reset state of its committed machine.

        The corrupted datapath is replaced wholesale (the simulation
        equivalent of a full re-download plus reset); a migration in
        flight restarts from its first chunk against the fresh source
        table, which is sound because chunks assume nothing beyond the
        blend invariant the fresh table trivially satisfies.
        """
        self.stats.incidents += 1
        self.stats.last_error = f"{type(exc).__name__}: {exc}"
        _instruments.FLEET_INCIDENTS.inc(
            shard=self.label, error=type(exc).__name__
        )
        _journal.JOURNAL.record(
            _journal.FLEET_QUARANTINE,
            shard=self.label,
            error=type(exc).__name__,
        )
        self.hardware = self._build_hardware(self.machine)
        self.dispatcher.invalidate(reason="replaced")
        if self.replica_group is not None:
            # The whole group re-seeds together: followers replicate
            # the leader, and the leader just restarted from reset.
            self.replica_group.on_reseed(self.machine)
        _journal.JOURNAL.record(
            _journal.FLEET_RESEED,
            shard=self.label,
            machine=self.machine.name,
        )
        job = self._job
        if job is not None and not job.done.is_set():
            job._migrator = None
            job.restarts += 1
            _journal.JOURNAL.record(
                _journal.MIGRATION_ROLLBACK,
                shard=self.label,
                restarts=job.restarts,
            )

    # -- serving -------------------------------------------------------
    def _coalesce(self, first: _Batch):
        """Drain immediately-available batches behind ``first``.

        Stops at the first control item (_STOP / _Fault) so queue order
        is preserved: everything drained was submitted before it.
        Returns ``(batches, control_or_None)``.
        """
        batches = [first]
        control = None
        while len(batches) < self.dispatcher.coalesce_limit:
            try:
                item = self.queue.get_nowait()
            except queue.Empty:
                break
            if isinstance(item, _Batch):
                batches.append(item)
            else:
                control = item
                break
        return batches, control

    def _serve_run(self, batches: List[_Batch]) -> None:
        """Serve a coalesced run of batches through the dispatched backend.

        Futures resolve in submission order (per-shard FIFO is part of
        the pool's contract).  Which backend serves — and whether that
        is a degradation worth counting — is entirely the dispatcher's
        decision; the worker only drives the protocol.  A table miss
        (an entry the tables cannot serve, an out-of-alphabet symbol)
        replays the batches per-symbol from the exact same state, so
        fault behaviour and quarantine semantics are unchanged.
        """
        # Lock every batch into RUNNING before any symbol steps: a
        # future cancelled while queued is skipped here (its queue slot
        # is freed, nothing executes, no output is lost — the caller
        # asked for exactly that), and from this point on cancel()
        # returns False so a late cancellation can never race the
        # worker's set_result.
        batches = self._admit_running(batches)
        if not batches:
            return
        # Re-activate the submitting thread's trace context (the first
        # batch's — one coalesced run is one serve) so the serve span
        # and every journal event join the client's request tree.
        token = _context.attach(batches[0].ctx) if batches[0].ctx else None
        try:
            with _span(
                "fleet.serve", shard=self.label, batches=len(batches)
            ) as sp:
                self._serve_run_traced(batches, sp)
        finally:
            if token is not None:
                _context.detach(token)

    def _admit_running(self, batches: List[_Batch]) -> List[_Batch]:
        """Transition each batch's future to RUNNING; drop cancelled ones."""
        live = [
            b for b in batches if b.future.set_running_or_notify_cancel()
        ]
        skipped = len(batches) - len(live)
        if skipped:
            self.stats.cancelled += skipped
            _instruments.FLEET_CANCELLED.inc(skipped, shard=self.label)
            _journal.JOURNAL.record(
                _journal.FLEET_CANCELLED, shard=self.label, count=skipped
            )
        return live

    def _serve_run_traced(self, batches: List[_Batch], sp) -> None:
        # One lane per distinct session in this coalesced run (the
        # datapath lane None included); the lane count is what the
        # dispatcher's stream-aware auto resolution keys off.
        lanes: "Dict[Optional[Hashable], List[_Batch]]" = {}
        for batch in batches:
            lanes.setdefault(batch.session, []).append(batch)
        decision = self.dispatcher.select(
            self.hardware, migrating=self._migrating(), streams=len(lanes)
        )
        if decision.degraded:
            self.stats.engine_fallbacks += len(batches)
        backend = decision.backend
        sp.attrs["backend"] = backend.name
        if not backend.capabilities.batchable:
            for batch in batches:
                if batch.session is None:
                    self._serve(batch)
                else:
                    self._serve_session(batch)
            return
        if len(lanes) == 1 and batches[0].session is None:
            # The pre-session shape (every batch extends the datapath
            # lane): one committed run, no stream plane involved.
            self._serve_datapath_run(batches, backend)
            return
        self._serve_stream_run(batches, lanes, backend)

    def _serve_datapath_run(self, batches: List[_Batch], backend) -> None:
        """One coalesced committed run of datapath-lane batches."""
        started = time.perf_counter()
        downtime_before = self._downtime()
        symbols: List[Input] = []
        for batch in batches:
            symbols.extend(batch.symbols)
        try:
            # Commits the architectural state (ST-REG, cycle and visit
            # counters) back to the datapath in the same call.
            run = backend.run_batch(symbols)
        except TableMiss:
            self.dispatcher.miss(self.hardware)
            self.stats.engine_fallbacks += len(batches)
            for batch in batches:
                self._serve(batch)
            return
        if self.replica_group is not None:
            # Committed: the run is a log entry every replica applies.
            self.replica_group.on_serve(
                run.final_state, len(symbols), run.visits
            )
        if self.link_latency_s:
            # One device round-trip for the whole coalesced run — the
            # latency amortisation batching exists for.
            time.sleep(self.link_latency_s)
        downtime_delta = self._downtime() - downtime_before
        self.stats.service_downtime_cycles += downtime_delta
        cursor = 0
        for batch in batches:
            size = len(batch.symbols)
            batch.future.set_result(run.outputs[cursor:cursor + size])
            cursor += size
            self.stats.batches_ok += 1
            self._m_batches_ok.inc()
        self._count_compiled_run(
            backend, len(batches), len(symbols), downtime_delta,
            started, streams=1,
        )

    def _serve_stream_run(
        self,
        batches: List[_Batch],
        lanes: "Dict[Optional[Hashable], List[_Batch]]",
        backend,
    ) -> None:
        """Serve a multi-session coalesced run as one stream batch.

        Each lane concatenates one session's queued batches (FIFO
        within the lane); the whole run is one ``run_streams`` call on
        the dispatched backend.  Nothing commits until *every* lane has
        succeeded — a :class:`TableMiss` therefore replays from the
        exact pre-run states, and a partial success can never
        double-commit the datapath lane.
        """
        hw = self.hardware
        started = time.perf_counter()
        downtime_before = self._downtime()
        keys = list(lanes)
        words: List[List[Input]] = []
        starts: List[State] = []
        for key in keys:
            word: List[Input] = []
            for batch in lanes[key]:
                word.extend(batch.symbols)
            words.append(word)
            starts.append(
                hw.state if key is None
                else self._sessions.get(key, hw.reset_state)
            )
        try:
            if backend.capabilities.batchable_streams:
                runs = _batching.run_streams(
                    backend, words, starts=starts, site="fleet.serve"
                )
            else:
                # Batchable but stream-blind: per-lane pure queries,
                # same no-commit-until-all-succeed ordering.
                runs = [
                    backend.run_batch(word, start=start, commit=False)
                    for word, start in zip(words, starts)
                ]
        except TableMiss:
            self.dispatcher.miss(hw)
            self.stats.engine_fallbacks += len(batches)
            for batch in batches:
                if batch.session is None:
                    self._serve(batch)
                else:
                    self._serve_session(batch)
            return
        # Every lane succeeded: fast-forward the datapath lane's
        # architectural state and advance the session chains.
        for key, run in zip(keys, runs):
            if key is None:
                hw.commit_engine_run(run.final_state, len(run), run.visits)
                if self.replica_group is not None:
                    self.replica_group.on_serve(
                        run.final_state, len(run), run.visits
                    )
            else:
                self._sessions[key] = run.final_state
        if self.link_latency_s:
            time.sleep(self.link_latency_s)
        downtime_delta = self._downtime() - downtime_before
        self.stats.service_downtime_cycles += downtime_delta
        run_of = dict(zip(keys, runs))
        cursors = dict.fromkeys(keys, 0)
        n_symbols = 0
        for batch in batches:
            # Original submission order across lanes: per-shard FIFO is
            # part of the pool's contract, sessions or not.
            run = run_of[batch.session]
            cursor = cursors[batch.session]
            size = len(batch.symbols)
            batch.future.set_result(run.outputs[cursor:cursor + size])
            cursors[batch.session] = cursor + size
            n_symbols += size
            self.stats.batches_ok += 1
            self._m_batches_ok.inc()
        self._count_compiled_run(
            backend, len(batches), n_symbols, downtime_delta,
            started, streams=len(keys),
        )

    def _count_compiled_run(
        self,
        backend,
        n_batches: int,
        n_symbols: int,
        downtime_delta: int,
        started: float,
        streams: int,
    ) -> None:
        """Stats + metrics + journal for one compiled-path serve run."""
        self.stats.symbols_served += n_symbols
        self.stats.engine_batches += n_batches
        self.stats.engine_symbols += n_symbols
        self._m_symbols.inc(n_symbols)
        self._served_handle("compiled", backend.name).inc(n_symbols)
        self._batch_size_handle(backend.name).observe(n_symbols)
        self._m_batch_seconds.observe(time.perf_counter() - started)
        journal = _journal.JOURNAL
        if journal.enabled:
            journal.record(
                _journal.SERVE_BATCH,
                shard=self.label,
                backend=backend.name,
                path="compiled",
                batches=n_batches,
                symbols=n_symbols,
                downtime_delta=downtime_delta,
                streams=streams,
            )

    def _serve(self, batch: _Batch) -> None:
        """Serve one batch per-symbol on the cycle-accurate backend.

        Asks the dispatcher for the netlist backend each time so a
        quarantine mid-loop (which replaces the datapath wholesale)
        re-binds before the next batch — exactly the pre-exec
        behaviour of stepping ``self.hardware`` directly.
        """
        backend = self.dispatcher.cycle_backend(self.hardware)
        started = time.perf_counter()
        downtime_before = self._downtime()
        try:
            outputs: List[Output] = [
                backend.step(symbol) for symbol in batch.symbols
            ]
        except Exception as exc:
            self.stats.batches_failed += 1
            self._m_batches_error.inc()
            batch.future.set_exception(exc)
            self._quarantine(exc)
            return
        if self.replica_group is not None:
            self.replica_group.on_serve(
                self.hardware.state, len(batch.symbols), None
            )
        if self.link_latency_s:
            time.sleep(self.link_latency_s)
        downtime_delta = self._downtime() - downtime_before
        self.stats.service_downtime_cycles += downtime_delta
        self.stats.batches_ok += 1
        self.stats.symbols_served += len(batch.symbols)
        self._m_batches_ok.inc()
        self._m_symbols.inc(len(batch.symbols))
        self._served_handle("cycle", backend.name).inc(len(batch.symbols))
        self._m_batch_seconds.observe(time.perf_counter() - started)
        journal = _journal.JOURNAL
        if journal.enabled:
            journal.record(
                _journal.SERVE_BATCH,
                shard=self.label,
                backend=backend.name,
                path="cycle",
                batches=1,
                symbols=len(batch.symbols),
                downtime_delta=downtime_delta,
            )
        batch.future.set_result(outputs)

    def _serve_session(self, batch: _Batch) -> None:
        """Serve one session batch cycle-accurately (the fallback the
        stream path replays through).

        The session's state chain lives beside the datapath: the
        netlist replays the word from the session's state as a pure
        query (``commit=False`` restores the datapath lane's state
        afterwards), so the datapath lane's chain, its probes and an
        in-flight migration are undisturbed — while the replay still
        clocks the real netlist, so an injected fault raises out and
        quarantines exactly as on the datapath lane.
        """
        hw = self.hardware
        if self.replica_group is not None:
            # Pure queries route to any in-sync replica (leader
            # included, rotating) — followers carry read traffic, not
            # just the write stream.
            replica_hw = self.replica_group.read_hardware()
            if replica_hw is not None:
                hw = replica_hw
        backend = self.dispatcher.cycle_backend(hw)
        start = self._sessions.get(batch.session, hw.reset_state)
        started = time.perf_counter()
        downtime_before = self._downtime()
        try:
            run = backend.run_batch(
                batch.symbols, start=start, commit=False
            )
        except Exception as exc:
            self.stats.batches_failed += 1
            self._m_batches_error.inc()
            batch.future.set_exception(exc)
            self._quarantine(exc)
            return
        self._sessions[batch.session] = run.final_state
        if self.link_latency_s:
            time.sleep(self.link_latency_s)
        downtime_delta = self._downtime() - downtime_before
        self.stats.service_downtime_cycles += downtime_delta
        self.stats.batches_ok += 1
        self.stats.symbols_served += len(batch.symbols)
        self._m_batches_ok.inc()
        self._m_symbols.inc(len(batch.symbols))
        self._served_handle("cycle", backend.name).inc(len(batch.symbols))
        self._m_batch_seconds.observe(time.perf_counter() - started)
        journal = _journal.JOURNAL
        if journal.enabled:
            journal.record(
                _journal.SERVE_BATCH,
                shard=self.label,
                backend=backend.name,
                path="cycle",
                batches=1,
                symbols=len(batch.symbols),
                downtime_delta=downtime_delta,
                streams=1,
            )
        batch.future.set_result(run.outputs)

    # -- main loop -----------------------------------------------------
    def stop(self) -> None:
        """Ask the worker to exit once its queue (and migration) drain."""
        self._stopping.set()

    def _handle_control(self, item) -> None:
        if item is _STOP:
            self._stopping.set()
        elif isinstance(item, _Fault):
            try:
                result = item.inject(self.hardware)
            except Exception as exc:
                item.future.set_exception(exc)
                return
            if self.replica_group is not None:
                # The identically-seeded injector on every replica: a
                # logged erase is one radiation event the whole group
                # observed, not N independent ones.
                self.replica_group.on_fault(item.inject)
            item.future.set_result(result)
        elif isinstance(item, _Membership):
            if self.replica_group is None:
                item.future.set_exception(RuntimeError(
                    f"shard {self.index} has no replica group "
                    f"(fleet built without replication)"
                ))
                return
            try:
                item.future.set_result(
                    self.replica_group.membership(item.op, item.replica)
                )
            except Exception as exc:
                item.future.set_exception(exc)

    def run(self) -> None:  # pragma: no cover - exercised via the pool
        while True:
            try:
                item = self.queue.get(timeout=self.poll_interval_s)
            except queue.Empty:
                self._migration_tick()
                job = self._job
                if self._stopping.is_set() and (
                    job is None or job.done.is_set()
                ):
                    return
                continue
            if isinstance(item, _Batch):
                # Coalesce whatever is already waiting behind this batch
                # (up to the next control item, which arrived after them
                # and is handled after them) into one backend run.
                batches, control = self._coalesce(item)
                try:
                    self._migration_tick()
                    self._serve_run(batches)
                finally:
                    for _ in batches:
                        self.queue.task_done()
            else:
                control = item
            if control is not None:
                try:
                    self._handle_control(control)
                finally:
                    self.queue.task_done()
