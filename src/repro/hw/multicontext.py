"""Multi-context FPGA model: the related-work comparator of refs [8, 13].

Time-multiplexed / multi-context FPGAs (Trimberger's TM-FPGA, NEC's
DRAM-FPGA) hold ``N`` complete configuration planes on chip and switch
between them in a cycle or two — the "context swapping" the paper's
introduction positions itself against.  The trade-offs:

* **switch latency** — a context switch is nearly free (1-2 cycles),
  *much* faster than a gradual program;
* **capacity** — only ``N`` precompiled machines fit; a target outside
  the stored set needs a full plane download over the configuration
  port first;
* **memory** — every plane replicates the whole table storage.

:class:`MultiContextFSM` implements the model on top of the datapath's
RAM geometry, and :func:`compare_migration` works out, for a given
migration, which mechanism is cheaper — reproducing the niche the paper
claims for gradual self-reconfiguration: *unbounded* target sets at a
small per-migration cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.fsm import FSM, Input, Output, State
from ..core.program import Program
from .fpga import FPGADevice, XCV300


class ContextError(RuntimeError):
    """Raised on capacity violations or unknown contexts."""


class MultiContextFSM:
    """An FSM engine with ``n_contexts`` resident configuration planes.

    Each plane holds one complete machine; :meth:`switch` makes another
    plane active in ``switch_cycles`` cycles.  Loading a *new* machine
    into a plane models the configuration-port download and costs
    :meth:`load_cycles` cycles, during which the engine is stalled.
    """

    def __init__(
        self,
        machines: List[FSM],
        n_contexts: int = 8,
        switch_cycles: int = 1,
        load_overhead_cycles: int = 64,
        device: FPGADevice = XCV300,
    ):
        if not machines:
            raise ContextError("at least one resident machine is required")
        if len(machines) > n_contexts:
            raise ContextError(
                f"{len(machines)} machines exceed {n_contexts} contexts"
            )
        self.n_contexts = n_contexts
        self.switch_cycles = switch_cycles
        # Configuration ports pay a fixed command sequence per download
        # (sync words, frame addressing, CRC) before any payload moves.
        self.load_overhead_cycles = load_overhead_cycles
        self.device = device
        self._planes: Dict[str, FSM] = {m.name: m for m in machines}
        if len(self._planes) != len(machines):
            raise ContextError("resident machines must have unique names")
        self._active = machines[0].name
        self.state: State = machines[0].reset_state
        self.cycles = 0
        self.stall_cycles = 0

    @property
    def active(self) -> FSM:
        """The machine in the active plane."""
        return self._planes[self._active]

    @property
    def resident(self) -> List[str]:
        """Names of the machines currently stored on chip."""
        return sorted(self._planes)

    def step(self, i: Input) -> Output:
        """One normal-mode cycle of the active machine."""
        self.state, output = self.active.step(i, self.state)
        self.cycles += 1
        return output

    def switch(self, name: str) -> int:
        """Activate a resident plane; returns the cycles spent.

        The machine restarts in the new plane's reset state — context
        switching, like bitstream swapping, does not carry state across.
        """
        if name not in self._planes:
            raise ContextError(f"{name!r} is not resident")
        self._active = name
        self.state = self._planes[name].reset_state
        self.cycles += self.switch_cycles
        self.stall_cycles += self.switch_cycles
        return self.switch_cycles

    def plane_bits(self, machine: FSM) -> int:
        """Configuration bits one plane needs for ``machine``."""
        from ..core.alphabet import bits_for

        i_bits = bits_for(len(machine.inputs))
        s_bits = bits_for(len(machine.states))
        o_bits = bits_for(len(machine.outputs))
        return (2 ** (i_bits + s_bits)) * (s_bits + o_bits)

    def load_cycles(self, machine: FSM) -> int:
        """Download cycles to (re)fill one plane with ``machine``.

        Payload transfer over the configuration bus plus the fixed
        per-download command overhead.
        """
        bits = self.plane_bits(machine)
        return self.load_overhead_cycles + -(-bits // self.device.config_bus_bits)

    def load(self, machine: FSM, evict: Optional[str] = None) -> int:
        """Install a new machine, evicting ``evict`` if the chip is full.

        Returns the stall cycles charged for the download.
        """
        if machine.name in self._planes:
            return 0
        if len(self._planes) >= self.n_contexts:
            if evict is None:
                raise ContextError("all contexts occupied; name a victim")
            if evict not in self._planes:
                raise ContextError(f"victim {evict!r} is not resident")
            if evict == self._active:
                raise ContextError("cannot evict the active context")
            del self._planes[evict]
        self._planes[machine.name] = machine
        cycles = self.load_cycles(machine)
        self.cycles += cycles
        self.stall_cycles += cycles
        return cycles

    def total_memory_bits(self) -> int:
        """On-chip configuration storage across all planes (worst plane × N)."""
        if not self._planes:
            return 0
        widest = max(self.plane_bits(m) for m in self._planes.values())
        return widest * self.n_contexts


@dataclass(frozen=True)
class MigrationComparison:
    """Cycle/memory cost of one migration under both mechanisms."""

    gradual_cycles: int
    gradual_memory_bits: int
    context_cycles: int
    context_memory_bits: int
    target_was_resident: bool

    @property
    def context_wins_cycles(self) -> bool:
        return self.context_cycles < self.gradual_cycles

    @property
    def gradual_wins_memory(self) -> bool:
        return self.gradual_memory_bits < self.context_memory_bits


def compare_migration(
    program: Program,
    engine: MultiContextFSM,
) -> MigrationComparison:
    """Compare a gradual program against the multi-context alternative.

    If the target machine is resident, the context switch is essentially
    free (the multi-context design point); otherwise a plane download is
    charged first — the capacity cliff that gradual reconfiguration,
    with its single plane and arbitrary targets, does not have.
    """
    target = program.target
    resident = target.name in engine.resident
    context_cycles = engine.switch_cycles
    if not resident:
        context_cycles += engine.load_cycles(target)

    single_plane = engine.plane_bits(target)
    return MigrationComparison(
        gradual_cycles=len(program),
        gradual_memory_bits=single_plane,
        context_cycles=context_cycles,
        context_memory_bits=single_plane * engine.n_contexts,
        target_was_resident=resident,
    )
