#!/usr/bin/env python
"""Research sweeps with the campaign runner: your own Table 2.

The benchmark harness regenerates the paper's artifacts at pinned
seeds; for *new* questions the :mod:`repro.analysis.campaign` runner
executes full-factorial sweeps and exports CSV.  This example asks a
question the paper leaves open — how does the EA's advantage over JSR
depend on the machine's connectivity (self-loop-heavy machines have
longer travel distances)? — and answers it with a 2-factor campaign.

Run: ``python examples/research_sweep.py``
"""

from repro.analysis.campaign import Campaign, Factor
from repro.analysis.tables import format_table
from repro.core import EAConfig, evolve_program, jsr_program
from repro.workloads import mutate_target, random_fsm

EA_CONFIG = EAConfig(population_size=24, generations=25, seed=0)


def measure(n_deltas, self_loop_bias, repeat):
    source = random_fsm(
        n_states=10,
        seed=repeat,
        connect=False,
        self_loop_bias=self_loop_bias,
    )
    target = mutate_target(source, n_deltas, seed=repeat + 100)
    ea = evolve_program(source, target, config=EA_CONFIG).program
    jsr = jsr_program(source, target)
    assert ea.is_valid() and jsr.is_valid()
    return {
        "ea": len(ea),
        "jsr": len(jsr),
        "saving": len(jsr) - len(ea),
    }


def main():
    campaign = Campaign(
        "connectivity-vs-saving",
        factors=[
            Factor("n_deltas", (4, 8, 12)),
            Factor("self_loop_bias", (0.0, 0.5, 0.9)),
        ],
        measure=measure,
        repeats=3,
    )
    print(f"campaign: {campaign.name}")
    print(f"design points: {len(campaign.design_points())}, "
          f"repeats: {campaign.repeats}")

    results = campaign.run()
    print(f"rows collected: {len(results)}")

    summary = results.summary(
        by=["n_deltas", "self_loop_bias"], value="saving"
    )
    print("\n" + format_table(
        summary,
        title="mean cycles saved by the EA vs JSR",
        float_digits=1,
    ))

    csv_path = "benchmarks/results/research_sweep.csv"
    results.to_csv(csv_path)
    print(f"\nraw rows exported to {csv_path}")

    # A quick read of the answer:
    flat = results.summary(by=["self_loop_bias"], value="saving")
    print("\nby connectivity alone:")
    for row in flat:
        print(f"  self_loop_bias={row['self_loop_bias']}: "
              f"mean saving {row['mean(saving)']:.1f} cycles")


if __name__ == "__main__":
    main()
