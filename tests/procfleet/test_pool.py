"""The process-mode fleet honours the exact FSMFleet caller contract.

Most tests run parametrized over both fleet modes: the assertion that
matters is not just that process mode works, but that its observable
behaviour — outputs, FIFO ordering, backpressure, drain-on-close — is
indistinguishable from thread mode.
"""

import pytest

from repro.engine import EngineError
from repro.exec import BackendUnavailable
from repro.fleet import FleetClosed, FSMFleet
from repro.procfleet import ProcessFleet
from repro.workloads.library import ones_detector
from repro.workloads.suite import traffic_words

MODES = ("thread", "process")


def make_fleet(mode, machine=None, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("queue_depth", 64)
    return FSMFleet(machine or ones_detector(), fleet_mode=mode, **kwargs)


class TestModeDispatch:
    def test_thread_is_the_default(self):
        with FSMFleet(ones_detector(), n_workers=1) as fleet:
            assert type(fleet) is FSMFleet
            assert fleet.fleet_mode == "thread"

    def test_process_mode_builds_a_process_fleet(self):
        with make_fleet("process") as fleet:
            assert isinstance(fleet, ProcessFleet)
            assert fleet.fleet_mode == "process"
            assert "process" in repr(fleet)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="fleet_mode"):
            FSMFleet(ones_detector(), fleet_mode="fiber")

    def test_process_mode_rejects_foreign_engines(self):
        with pytest.raises(EngineError, match="table-shm"):
            FSMFleet(
                ones_detector(), fleet_mode="process", engine="table-numpy"
            )

    def test_process_mode_fails_fast_when_shm_disabled(self, monkeypatch):
        # Construction-time resolve: no process or segment is created
        # before the misconfiguration is reported.
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        with pytest.raises(BackendUnavailable, match="REPRO_DISABLE_SHM"):
            FSMFleet(ones_detector(), fleet_mode="process")


class TestServingContract:
    @pytest.mark.parametrize("mode", MODES)
    def test_outputs_match_reference_run(self, mode):
        machine = ones_detector()
        with make_fleet(mode, machine) as fleet:
            served = {index: [] for index in range(fleet.n_workers)}
            for key, word in enumerate(traffic_words(machine, 10, 8, seed=3)):
                shard = fleet.shard_for(key)
                got = fleet.submit(key, word).result(timeout=30)
                served[shard].extend(word)
                assert got == machine.run(served[shard])[-len(word):]

    @pytest.mark.parametrize("mode", MODES)
    def test_per_key_fifo_ordering(self, mode):
        machine = ones_detector()
        words = traffic_words(machine, 16, 5, seed=4)
        with make_fleet(mode, machine) as fleet:
            futures = [fleet.submit("conn-1", w) for w in words]
            outputs = []
            for future in futures:
                outputs.extend(future.result(timeout=30))
        flat = [symbol for word in words for symbol in word]
        assert outputs == machine.run(flat)

    @pytest.mark.parametrize("mode", MODES)
    def test_rejects_unknown_symbol(self, mode):
        with make_fleet(mode) as fleet:
            with pytest.raises(ValueError, match="not serveable"):
                fleet.submit("k", ["bogus"])

    @pytest.mark.parametrize("mode", MODES)
    def test_close_drains_queued_work(self, mode):
        fleet = make_fleet(mode)
        futures = [fleet.submit(key, ["1", "1", "0"]) for key in range(12)]
        fleet.close()
        assert all(f.result(timeout=30) is not None for f in futures)

    @pytest.mark.parametrize("mode", MODES)
    def test_closed_fleet_rejects(self, mode):
        fleet = make_fleet(mode)
        fleet.close()
        fleet.close()  # idempotent
        with pytest.raises(FleetClosed):
            fleet.submit("k", ["1"])


class TestProcessWorkers:
    def test_each_shard_has_its_own_live_process(self):
        import os

        with make_fleet("process", n_workers=2) as fleet:
            fleet.submit("warm", ["1"]).result(timeout=30)
            pids = fleet.worker_pids()
            assert len(pids) == 2
            assert None not in pids.values()
            assert len(set(pids.values())) == 2
            assert os.getpid() not in pids.values()

    def test_serving_runs_in_the_worker_process(self):
        from repro.obs import configure
        from repro.obs.journal import JOURNAL, PROCFLEET_WORKER_BATCH

        configure(journal=True)
        try:
            with make_fleet("process", n_workers=1) as fleet:
                fleet.submit("k", list("0110")).result(timeout=30)
                pid = fleet.worker_pids()[0]
            batches = [
                e for e in JOURNAL.events()
                if e.type == PROCFLEET_WORKER_BATCH
            ]
            assert batches, "no worker-side batch event crossed the pipe"
            assert {e.fields["pid"] for e in batches} == {pid}
        finally:
            configure()

    def test_totals_aggregate_across_processes(self):
        with make_fleet("process", n_workers=2) as fleet:
            for key in range(6):
                fleet.submit(key, ["1", "0"]).result(timeout=30)
            totals = fleet.totals()
            assert totals.batches_ok == 6
            assert totals.symbols_served == 12
