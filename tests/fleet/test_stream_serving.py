"""Fleet sessions and cross-session stream coalescing.

``submit(key, word, session=...)`` names an independent state chain on
the shard; a quiescent queue coalesces *across* sessions into one
multi-stream kernel call.  The pool contract must hold regardless:
per-session trace continuity, per-shard FIFO future order,
backpressure, session pruning at migration commit, symbolic session
state surviving quarantine — in thread AND process fleet modes, with
the engine on and off.
"""

import threading

import pytest

from repro.engine import numpy_available
from repro.fleet import FleetOverloaded, FSMFleet, MigrationScheduler
from repro.workloads.library import ones_detector, sequence_detector
from repro.workloads.suite import traffic_words

MODES = ("thread", "process")

ENGINE_MODES_HERE = [
    m for m in ("off", "python", "auto")
    if m != "numpy" or numpy_available()
]


def make_fleet(mode, machine=None, **kwargs):
    kwargs.setdefault("n_workers", 2)
    kwargs.setdefault("queue_depth", 256)
    return FSMFleet(machine or ones_detector(), fleet_mode=mode, **kwargs)


@pytest.mark.parametrize("mode", MODES)
class TestSessionChains:
    def test_sessions_are_independent_streams(self, mode):
        machine = ones_detector()
        with make_fleet(mode, machine) as fleet:
            chains = {name: [] for name in ("a", "b", "c")}
            for round_ in range(6):
                for name in chains:
                    word = traffic_words(
                        machine, 1, 7, seed=hash(name) % 1000 + round_
                    )[0]
                    got = fleet.submit(0, word, session=name).result(
                        timeout=10
                    )
                    chains[name].extend(word)
                    # Each session continues its OWN chain, unaffected
                    # by the interleaved batches of the other sessions.
                    assert got == machine.run(chains[name])[-len(word):]

    def test_datapath_lane_unaffected_by_sessions(self, mode):
        machine = ones_detector()
        with make_fleet(mode, machine, n_workers=1) as fleet:
            served = []
            for key, word in enumerate(traffic_words(machine, 8, 6, seed=2)):
                fleet.submit(key, word, session="s").result(timeout=10)
                got = fleet.submit(key, word).result(timeout=10)
                served.extend(word)
                assert got == machine.run(served)[-len(word):]

    def test_fifo_completion_order_with_mixed_sessions(self, mode):
        machine = ones_detector()
        with make_fleet(mode, machine, n_workers=1) as fleet:
            completions = []
            lock = threading.Lock()
            futures = []
            words = traffic_words(machine, 24, 5, seed=4)
            for index, word in enumerate(words):
                session = ("x", "y", None)[index % 3]
                future = fleet.submit(index, word, session=session)

                def on_done(_f, index=index):
                    with lock:
                        completions.append(index)

                future.add_done_callback(on_done)
                futures.append(future)
            for future in futures:
                assert future.result(timeout=10) is not None
            assert completions == sorted(completions)

    def test_backpressure_counts_session_batches(self, mode):
        with make_fleet(mode, n_workers=1, queue_depth=2) as fleet:
            with pytest.raises(FleetOverloaded):
                for i in range(200):
                    fleet.submit(0, ["1"], session=i)


@pytest.mark.parametrize("engine", ENGINE_MODES_HERE)
class TestSessionsAcrossEngineModes:
    def test_chains_identical_with_engine_on_and_off(self, engine):
        machine = sequence_detector("1011")
        with FSMFleet(
            machine, n_workers=1, queue_depth=256, engine=engine
        ) as fleet:
            chain = []
            for round_ in range(10):
                word = traffic_words(machine, 1, 9, seed=round_)[0]
                got = fleet.submit(0, word, session="s").result(timeout=10)
                chain.extend(word)
                assert got == machine.run(chain)[-len(word):]

    def test_sessions_survive_quarantine(self, engine):
        # Session state is symbolic, so a re-seeded datapath (same
        # machine) picks every chain up exactly where it stopped.
        machine = sequence_detector("1011")
        with FSMFleet(machine, n_workers=1, engine=engine) as fleet:
            chain = list("1011")
            assert fleet.submit("k", chain[:], session="s").result(
                timeout=10
            ) == machine.run(chain)
            fleet.inject_fault(0, kind="erase", seed=1).result(10)
            for key in range(80):
                word = traffic_words(machine, 1, 8, seed=100 + key)[0]
                try:
                    fleet.submit("k", word).result(timeout=10)
                except Exception:
                    break  # the erased entry was hit; shard re-seeded
            word = list("1011")
            got = fleet.submit("k", word, session="s").result(timeout=10)
            chain.extend(word)
            assert got == machine.run(chain)[-len(word):]


class TestSessionsUnderMigration:
    def test_rollout_prunes_vanished_session_states(self):
        source = sequence_detector("1011")
        target = sequence_detector("0110")
        fleet = FSMFleet(
            source, n_workers=2, family=[target], queue_depth=256,
            engine="auto",
        )
        try:
            common = [i for i in source.inputs if i in set(target.inputs)]
            chains = {}
            for name in ("a", "b"):
                word = traffic_words(source, 1, 8, seed=ord(name))[0]
                fleet.submit(0, word, session=name).result(timeout=10)
                chains[name] = list(word)

            holder = {}

            def rollout():
                holder["report"] = MigrationScheduler(
                    fleet, stall_budget=12
                ).rollout(target)

            thread = threading.Thread(target=rollout)
            thread.start()
            # Keep session traffic flowing during the rollout; every
            # batch must come back (zero downtime).
            for index in range(30):
                word = traffic_words(
                    source, 1, 6, seed=index, inputs=common
                )[0]
                name = ("a", "b")[index % 2]
                assert fleet.submit(
                    0, word, session=name
                ).result(timeout=10) is not None
            thread.join(timeout=60)
            report = holder["report"]
            assert report.verified and report.zero_downtime
            assert fleet.machine == target

            # After commit a session whose parked state vanished from
            # the target restarts from the new reset state; one whose
            # state survived would continue.  Either way the chain the
            # fleet serves now is the *target's*.
            word = traffic_words(target, 1, 8, seed=99)[0]
            got = fleet.submit(0, word, session="fresh").result(timeout=10)
            assert got == target.run(word)
        finally:
            fleet.close()


class TestCoalescingAcrossSessions:
    def test_blocked_worker_coalesces_sessions_into_one_stream_run(self):
        # Stall the single worker so distinct sessions pile up, then
        # release: the drain serves them as one multi-lane stream batch
        # (visible as an ``exec.stream_batch`` journal event with more
        # than one lane) while every future resolves with its session's
        # own outputs.
        from concurrent.futures import Future

        from repro import obs
        from repro.fleet.worker import _Fault
        from repro.obs import journal as _journal

        machine = ones_detector()
        obs.configure(journal=True)
        fleet = FSMFleet(
            machine, n_workers=1, queue_depth=256, engine="python"
        )
        try:
            gate = threading.Event()
            entered = threading.Event()

            def blocker(_hw):
                entered.set()
                gate.wait(timeout=30)
                return None

            fleet.shards[0].queue.put(_Fault(inject=blocker, future=Future()))
            assert entered.wait(timeout=10)
            futures = []
            words = {}
            for i in range(12):
                word = traffic_words(machine, 1, 6, seed=i)[0]
                words[i] = word
                futures.append(fleet.submit(0, word, session=i))
            gate.set()
            for i, future in enumerate(futures):
                assert future.result(timeout=10) == machine.run(words[i])
            assert fleet.shards[0].stats.batches_ok >= 12
            lanes = [
                event.fields["streams"]
                for event in _journal.JOURNAL.events(
                    type=_journal.EXEC_STREAM_BATCH
                )
            ]
            assert lanes and max(lanes) > 1  # sessions shared one run
        finally:
            fleet.close()
            obs.configure()
