"""A3 — Gradual reconfiguration vs context swapping (Sec. 1 motivation).

Paper claim: full-bitstream reconfiguration costs milliseconds, so
swapping complete configurations is expensive; gradual in-circuit
reconfiguration takes |Z| machine cycles instead.  We quantify the
crossover on the XCV300 model: how large would a reconfiguration program
have to be before a context swap wins?
"""

from repro.analysis.tables import format_table
from repro.core.ea import EAConfig, ea_program
from repro.core.jsr import jsr_program
from repro.hw.fpga import ReconfigurationCostModel
from repro.protocols.packet import revision
from repro.protocols.parser import build_parser
from repro.workloads.library import fig6_m, fig6_m_prime

MODEL = ReconfigurationCostModel()  # XCV300, 50 MHz machine clock


def build_rows():
    rows = []
    cases = {
        "fig6 (JSR)": jsr_program(fig6_m(), fig6_m_prime()),
        "fig6 (EA)": ea_program(
            fig6_m(), fig6_m_prime(),
            config=EAConfig(population_size=24, generations=25, seed=0),
        ),
    }
    old = revision("old", 4, {0x8, 0x6})
    new = revision("new", 4, {0x8, 0x6, 0xD})
    cases["parser upgrade (JSR)"] = jsr_program(
        build_parser(old), build_parser(new)
    )
    for name, program in cases.items():
        gradual = MODEL.gradual_seconds(program)
        rows.append(
            {
                "migration": name,
                "|Z| cycles": len(program),
                "gradual (us)": gradual * 1e6,
                "full swap (ms)": MODEL.full_swap_seconds() * 1e3,
                "partial swap (us)": MODEL.partial_swap_seconds(
                    program.target
                ) * 1e6,
                "speedup vs full": MODEL.speedup_vs_full_swap(program),
            }
        )
    return rows


def test_context_swap_comparison(once, record_table):
    rows = once(build_rows)

    for row in rows:
        # Sec. 1: swaps are milliseconds, gradual is sub-microsecond here.
        assert row["full swap (ms)"] > 1.0
        assert row["gradual (us)"] < 1.0
        assert row["speedup vs full"] > 1_000
        # even an optimistic partial swap loses on these programs
        assert row["partial swap (us)"] > row["gradual (us)"]

    crossover = MODEL.crossover_cycles_full()
    assert crossover > 100_000  # gradual wins until ~2*10^5 cycles
    footer = (
        f"\ncrossover: a context swap only wins once |Z| exceeds "
        f"{crossover} cycles at 50 MHz"
    )
    record_table(
        "context_swap",
        format_table(
            rows,
            title="A3 — gradual reconfiguration vs bitstream context swap "
                  "(XCV300 model)",
            float_digits=2,
        )
        + footer,
    )
