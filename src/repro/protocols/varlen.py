"""Variable-length (prefix-free) header parsing.

Real protocol stacks rarely use fixed-width type fields: instruction
sets, Huffman-coded headers and option fields use *prefix-free* codes of
varying length.  The parser FSM for such a code is a trie whose leaves
sit at different depths — the verdict fires as soon as a complete code
has been read, and the machine returns to the idle state for the next
header.

Policy upgrades on such parsers are still just migrations; because the
trie shape depends on the *code set* (not only the verdicts), upgrades
that add or remove codes change the machine's structure — exercising the
grow-the-state-space migration path (Fig. 6's shape) on a realistic
workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.delta import delta_transitions
from ..core.fsm import FSM, Transition
from .parser import ACCEPT, REJECT, SCAN


class CodebookError(ValueError):
    """The code set is empty, non-binary, or not prefix-free."""


@dataclass(frozen=True)
class Codebook:
    """A prefix-free set of binary codewords with per-code verdicts.

    ``verdicts`` maps each codeword (a '0'/'1' string) to ``True``
    (accept) or ``False`` (reject).  Prefix-freedom guarantees the
    parser can decide at the final bit of each codeword; *completeness*
    is not required — an input path that falls off the codebook rejects
    at the point it becomes impossible to complete any codeword.
    """

    name: str
    verdicts: "Tuple[Tuple[str, bool], ...]"

    @classmethod
    def of(cls, name: str, verdicts: Dict[str, bool]) -> "Codebook":
        items = tuple(sorted(verdicts.items()))
        book = cls(name, items)
        book.validate()
        return book

    def validate(self) -> None:
        codes = [code for code, _v in self.verdicts]
        if not codes:
            raise CodebookError("codebook is empty")
        for code in codes:
            if not code or any(c not in "01" for c in code):
                raise CodebookError(f"codeword {code!r} is not binary")
        for a in codes:
            for b in codes:
                if a != b and b.startswith(a):
                    raise CodebookError(
                        f"codeword {a!r} is a prefix of {b!r}"
                    )

    @property
    def codes(self) -> List[str]:
        return [code for code, _v in self.verdicts]

    def verdict(self, code: str) -> bool:
        for known, verdict in self.verdicts:
            if known == code:
                return verdict
        raise KeyError(code)

    def classify_stream(self, bits: str) -> List[bool]:
        """Reference decoder: verdicts of the headers in a bit stream.

        Bits that cannot extend to any codeword consume one rejection
        and re-synchronise at the next bit, mirroring the FSM's
        fall-off-the-trie behaviour.
        """
        verdicts: List[bool] = []
        buffer = ""
        for bit in bits:
            buffer += bit
            if buffer in dict(self.verdicts):
                verdicts.append(self.verdict(buffer))
                buffer = ""
            elif not any(code.startswith(buffer) for code in self.codes):
                verdicts.append(False)
                buffer = ""
        return verdicts


def build_varlen_parser(book: Codebook) -> FSM:
    """The trie FSM of a prefix-free codebook.

    States are the strict prefixes of the codewords (the root is
    ``IDLE``); completing a codeword emits its verdict and returns to
    the root; falling off the trie emits ``rej`` and returns to the
    root (re-synchronisation).

    >>> book = Codebook.of("v1", {"0": True, "10": False, "11": True})
    >>> parser = build_varlen_parser(book)
    >>> parser.run(list("01011"))
    ['acc', '-', 'rej', '-', 'acc']
    """
    book.validate()
    code_set = dict(book.verdicts)
    prefixes = {""}
    for code in book.codes:
        for k in range(1, len(code)):
            prefixes.add(code[:k])

    def state_name(prefix: str) -> str:
        return "IDLE" if not prefix else f"B{prefix}"

    transitions: List[Transition] = []
    for prefix in sorted(prefixes, key=lambda p: (len(p), p)):
        for bit in "01":
            extended = prefix + bit
            if extended in code_set:
                verdict = ACCEPT if code_set[extended] else REJECT
                transitions.append(
                    Transition(bit, state_name(prefix), "IDLE", verdict)
                )
            elif extended in prefixes:
                transitions.append(
                    Transition(
                        bit, state_name(prefix), state_name(extended), SCAN
                    )
                )
            else:
                # fell off the trie: reject and re-synchronise
                transitions.append(
                    Transition(bit, state_name(prefix), "IDLE", REJECT)
                )
    states = [state_name(p) for p in sorted(prefixes, key=lambda p:
                                            (len(p), p))]
    return FSM(
        inputs=("0", "1"),
        outputs=(SCAN, ACCEPT, REJECT),
        states=states,
        reset_state="IDLE",
        transitions=transitions,
        name=f"varlen_{book.name}",
    )


def upgrade_deltas_varlen(old: Codebook, new: Codebook) -> List[Transition]:
    """Delta transitions of a codebook upgrade (may grow the trie)."""
    return delta_transitions(build_varlen_parser(old),
                             build_varlen_parser(new))
