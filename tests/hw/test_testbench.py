"""Unit tests for the VHDL testbench generator."""

from repro.hw.vhdl import generate_fsm_vhdl, generate_testbench_vhdl
from repro.workloads.library import fig6_m, ones_detector


class TestTestbench:
    def test_entity_and_architecture(self, detector):
        text = generate_testbench_vhdl(detector, list("110"))
        assert "entity ones_detector_tb is" in text
        assert "architecture sim of ones_detector_tb is" in text

    def test_instantiates_dut(self, detector):
        text = generate_testbench_vhdl(detector, list("110"))
        assert "dut: entity work.ones_detector" in text

    def test_one_assert_per_symbol(self, detector):
        word = list("110101")
        text = generate_testbench_vhdl(detector, word)
        assert text.count("assert dout =") == len(word)

    def test_expected_values_from_simulation(self, detector):
        word = list("11")
        expected = detector.run(word)  # ['0', '1']
        text = generate_testbench_vhdl(detector, word)
        assert 'assert dout = "0"' in text
        assert 'assert dout = "1"' in text
        assert expected == ["0", "1"]

    def test_clock_period_parameter(self, detector):
        text = generate_testbench_vhdl(detector, list("1"), clock_period_ns=8)
        assert "constant PERIOD : time := 8 ns;" in text

    def test_final_pass_report(self, detector):
        text = generate_testbench_vhdl(detector, list("1101"))
        assert "testbench passed: 4 cycles" in text

    def test_pairs_with_behavioural_dut(self, detector):
        dut = generate_fsm_vhdl(detector)
        tb = generate_testbench_vhdl(detector, list("10"))
        # port names line up between DUT and testbench
        for port in ("din", "clk", "rst", "dout"):
            assert port in dut and port in tb

    def test_multibit_symbols(self):
        machine = fig6_m()
        text = generate_testbench_vhdl(machine, list("111"))
        assert text.count("assert dout =") == 3
