"""Adaptive security parser: self-reconfiguration driven by traffic.

The paper defines *self*-reconfiguration as reconfiguration "initiated by
the FSM itself ... e.g. in dependence of a reached state or other
conditions".  This module builds a complete such system in the paper's
motivating domain: a packet classifier that locks itself down when it
observes an attack pattern.

Behaviour:

* in **normal** mode the parser classifies headers against the
  configured policy;
* a run of ``lockdown_threshold`` consecutive rejected packets (a crude
  scan/flood detector) triggers an autonomous migration into the
  **lockdown** policy, which accepts only the management code;
* a management packet observed while locked down triggers the migration
  back to normal.

Both migrations are precompiled reconfiguration programs replayed by the
on-chip Reconfigurator between packets — the parser never loses its
clock and never needs an external configuration event.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..core.ea import EAConfig, ea_program
from ..hw.reconfigurator import SelfReconfigurableHardware
from .packet import Packet, ProtocolRevision, revision
from .parser import ACCEPT, REJECT, build_parser


@dataclass
class AdaptiveEvent:
    """One mode change of the adaptive parser."""

    packet_index: int
    direction: str  # "lockdown" or "restore"
    reconfiguration_cycles: int


class AdaptiveParser:
    """A self-reconfiguring classifier with a lockdown reflex.

    Parameters
    ----------
    policy:
        The normal-mode revision.
    management_code:
        The type code that is always accepted and, during lockdown,
        restores normal operation.
    lockdown_threshold:
        Consecutive rejects that trigger the lockdown migration.
    """

    def __init__(
        self,
        policy: ProtocolRevision,
        management_code: int,
        lockdown_threshold: int = 3,
        ea_config: Optional[EAConfig] = None,
    ):
        if management_code not in policy.accepted:
            policy = revision(
                policy.name,
                policy.header_bits,
                set(policy.accepted) | {management_code},
            )
        self.policy = policy
        self.management_code = management_code
        self.lockdown_threshold = lockdown_threshold
        self.lockdown_policy = revision(
            "lockdown", policy.header_bits, {management_code}
        )

        normal_parser = build_parser(self.policy)
        lockdown_parser = build_parser(self.lockdown_policy)
        config = ea_config or EAConfig(
            population_size=24, generations=25, seed=0
        )
        self.hardware = SelfReconfigurableHardware.build(
            normal_parser,
            {
                "lockdown": ea_program(
                    normal_parser, lockdown_parser, config=config
                ),
                "restore": ea_program(
                    lockdown_parser, normal_parser, config=config
                ),
            },
        )
        self.locked_down = False
        self._consecutive_rejects = 0
        self.events: List[AdaptiveEvent] = []
        self._packet_index = 0

    # ------------------------------------------------------------------
    def _migrate(self, name: str, direction: str) -> None:
        self.hardware.request(name)
        cycles = 0
        while self.hardware.reconfiguring:
            self.hardware.clock("0")
            cycles += 1
        self.events.append(
            AdaptiveEvent(
                packet_index=self._packet_index,
                direction=direction,
                reconfiguration_cycles=cycles,
            )
        )
        self.locked_down = direction == "lockdown"

    def classify(self, packet: Packet) -> bool:
        """Classify one packet; may trigger autonomous mode changes."""
        outputs = [self.hardware.clock(bit)[0] for bit in packet.bits()]
        verdict = outputs[-1]
        if verdict not in (ACCEPT, REJECT):
            raise RuntimeError(f"no verdict for {packet} (got {verdict!r})")
        accepted = verdict == ACCEPT
        self._packet_index += 1

        if self.locked_down:
            if packet.type_code == self.management_code:
                self._migrate("restore", "restore")
                self._consecutive_rejects = 0
        else:
            if accepted:
                self._consecutive_rejects = 0
            else:
                self._consecutive_rejects += 1
                if self._consecutive_rejects >= self.lockdown_threshold:
                    self._migrate("lockdown", "lockdown")
                    self._consecutive_rejects = 0
        return accepted

    def run(self, packets: List[Packet]) -> List[Tuple[Packet, bool]]:
        """Classify a stream; returns per-packet verdicts."""
        return [(packet, self.classify(packet)) for packet in packets]

    @property
    def active_policy(self) -> ProtocolRevision:
        """The policy the hardware currently enforces."""
        return self.lockdown_policy if self.locked_down else self.policy

    def total_reconfiguration_cycles(self) -> int:
        """Clock cycles spent in all autonomous migrations so far."""
        return sum(e.reconfiguration_cycles for e in self.events)
