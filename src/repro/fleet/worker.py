"""One fleet shard: a datapath, a bounded FIFO queue, a worker thread.

A shard owns exactly one :class:`~repro.hw.machine.HardwareFSM` (sized
for the fleet's whole machine family, Def. 4.1 supersets) and is the
*only* thread that ever clocks it — the pool's concurrency story is
"share nothing", which is also what the single-driver guard on the
datapath enforces.  The worker loop interleaves three duties:

* **serving** — pop a batch, step its symbols, resolve its future;
* **migrating** — between batches (and in idle gaps) run whole safe
  chunks of the pending gradual migration, never exceeding the stall
  budget per gap, exactly the paper's one-entry-per-cycle rollout;
* **healing** — a batch that raises (e.g. an injected SRAM fault)
  quarantines the shard: the future gets the error, the datapath is
  re-seeded from the reset state of the committed machine, an active
  migration restarts from its first chunk, and the incident is counted.

Downtime is measured with the existing observability probes: the
reconf/reset cycle counters are snapshotted around the serving section,
so any reconfiguration cycle that delays a batch shows up in
``service_downtime_cycles``.  A feasible plan keeps that at zero.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.fsm import FSM, Input, Output
from ..core.incremental import Chunk, IncrementalMigrator
from ..hw.machine import HardwareFSM
from ..obs import instruments as _instruments
from ..obs.probes import ProbeReport, probe_hardware

#: Queue sentinel asking the worker thread to exit.
_STOP = object()


@dataclass
class ShardStats:
    """Monotonic per-shard counters (read from any thread)."""

    batches_ok: int = 0
    batches_failed: int = 0
    symbols_served: int = 0
    rejected: int = 0
    incidents: int = 0
    migrations_done: int = 0
    migration_cycles: int = 0
    service_downtime_cycles: int = 0
    last_error: Optional[str] = None


@dataclass
class _Batch:
    symbols: Tuple[Input, ...]
    future: Future


@dataclass
class _Fault:
    """Control item: apply a fault injector to the shard's datapath."""

    inject: Callable[[HardwareFSM], object]
    future: Future


@dataclass
class MigrationJob:
    """One shard's share of a rolling migration."""

    target: FSM
    chunks: List[Chunk]
    stall_budget: int
    done: threading.Event = field(default_factory=threading.Event)
    verified: Optional[bool] = None
    restarts: int = 0
    _migrator: Optional[IncrementalMigrator] = None


class ShardWorker(threading.Thread):
    """The serving thread of one shard (see module docstring)."""

    def __init__(
        self,
        index: int,
        machine: FSM,
        extra_inputs: Sequence[Input] = (),
        extra_outputs: Sequence = (),
        extra_states: Sequence = (),
        queue_depth: int = 64,
        poll_interval_s: float = 0.002,
        link_latency_s: float = 0.0,
        trace_max_entries: int = 256,
        fleet_name: str = "fleet",
    ):
        super().__init__(name=f"{fleet_name}-shard-{index}", daemon=True)
        self.index = index
        self.machine = machine
        self._extras = (
            tuple(extra_inputs), tuple(extra_outputs), tuple(extra_states)
        )
        self._trace_max = trace_max_entries
        self._fleet_name = fleet_name
        self.queue: "queue.Queue" = queue.Queue(maxsize=queue_depth)
        self.poll_interval_s = poll_interval_s
        self.link_latency_s = link_latency_s
        self.stats = ShardStats()
        self.serving_inputs = frozenset(machine.inputs)
        self.hardware = self._build_hardware(machine)
        self._job: Optional[MigrationJob] = None
        self._stopping = threading.Event()

    # ------------------------------------------------------------------
    def _build_hardware(self, machine: FSM) -> HardwareFSM:
        extra_i, extra_o, extra_s = self._extras
        return HardwareFSM(
            machine,
            extra_inputs=extra_i,
            extra_outputs=extra_o,
            extra_states=extra_s,
            name=f"{self._fleet_name}-shard{self.index}_{machine.name}",
            trace_max_entries=self._trace_max,
        )

    def _downtime(self) -> int:
        return probe_hardware(self.hardware).downtime_cycles

    def probe(self) -> ProbeReport:
        """Probe snapshot of the shard's datapath (racy but read-only)."""
        return probe_hardware(self.hardware)

    @property
    def label(self) -> str:
        return str(self.index)

    # -- migration -----------------------------------------------------
    def begin_migration(self, job: MigrationJob) -> MigrationJob:
        """Hand the shard its migration job (picked up between batches)."""
        if self._job is not None and not self._job.done.is_set():
            raise RuntimeError(
                f"shard {self.index} already has a migration in flight"
            )
        self._job = job
        return job

    def _migration_tick(self) -> None:
        job = self._job
        if job is None or job.done.is_set():
            return
        try:
            self._migration_step(job)
        except Exception as exc:
            # A fault mid-reconfiguration must not kill the worker: the
            # shard quarantines (re-seed + restart the migration) like a
            # serving fault would.  Deterministic failures (an unsound
            # chunk list) would retry forever, so restarts are capped and
            # the job is surfaced as unverified instead of hanging the
            # rollout.
            self._quarantine(exc)
            if job.restarts > 5 and not job.done.is_set():
                job.verified = False
                job.done.set()

    def _migration_step(self, job: MigrationJob) -> None:
        if job._migrator is None:
            # Restrict traffic to the inputs both machines understand:
            # rows for target-only inputs go live chunk by chunk, and old
            # clients keep old symbols during an upgrade anyway.
            self.serving_inputs = frozenset(
                i for i in self.machine.inputs if i in set(job.target.inputs)
            )
            job._migrator = IncrementalMigrator(
                self.hardware, self.machine, job.target, chunks=job.chunks
            )
        migrator = job._migrator
        if not migrator.done:
            used = migrator.stall(job.stall_budget)
            self.stats.migration_cycles += used
            _instruments.FLEET_MIGRATION_CYCLES.inc(used, shard=self.label)
        if migrator.done:
            verified = self.hardware.realises(job.target)
            job.verified = verified
            self.machine = job.target
            self.serving_inputs = frozenset(job.target.inputs)
            self.stats.migrations_done += 1
            _instruments.FLEET_SHARD_MIGRATIONS.inc(
                shard=self.label, verified=str(verified).lower()
            )
            job.done.set()

    # -- failure handling ----------------------------------------------
    def _quarantine(self, exc: BaseException) -> None:
        """Re-seed the shard from the reset state of its committed machine.

        The corrupted datapath is replaced wholesale (the simulation
        equivalent of a full re-download plus reset); a migration in
        flight restarts from its first chunk against the fresh source
        table, which is sound because chunks assume nothing beyond the
        blend invariant the fresh table trivially satisfies.
        """
        self.stats.incidents += 1
        self.stats.last_error = f"{type(exc).__name__}: {exc}"
        _instruments.FLEET_INCIDENTS.inc(
            shard=self.label, error=type(exc).__name__
        )
        self.hardware = self._build_hardware(self.machine)
        job = self._job
        if job is not None and not job.done.is_set():
            job._migrator = None
            job.restarts += 1

    # -- serving -------------------------------------------------------
    def _serve(self, batch: _Batch) -> None:
        started = time.perf_counter()
        downtime_before = self._downtime()
        try:
            outputs: List[Output] = [
                self.hardware.step(symbol) for symbol in batch.symbols
            ]
        except Exception as exc:
            self.stats.batches_failed += 1
            _instruments.FLEET_BATCHES.inc(
                outcome="error", shard=self.label
            )
            batch.future.set_exception(exc)
            self._quarantine(exc)
            return
        if self.link_latency_s:
            time.sleep(self.link_latency_s)
        self.stats.service_downtime_cycles += (
            self._downtime() - downtime_before
        )
        self.stats.batches_ok += 1
        self.stats.symbols_served += len(batch.symbols)
        _instruments.FLEET_BATCHES.inc(outcome="ok", shard=self.label)
        _instruments.FLEET_SYMBOLS.inc(len(batch.symbols), shard=self.label)
        _instruments.FLEET_BATCH_SECONDS.observe(
            time.perf_counter() - started, shard=self.label
        )
        batch.future.set_result(outputs)

    # -- main loop -----------------------------------------------------
    def stop(self) -> None:
        """Ask the worker to exit once its queue (and migration) drain."""
        self._stopping.set()

    def run(self) -> None:  # pragma: no cover - exercised via the pool
        while True:
            try:
                item = self.queue.get(timeout=self.poll_interval_s)
            except queue.Empty:
                self._migration_tick()
                job = self._job
                if self._stopping.is_set() and (
                    job is None or job.done.is_set()
                ):
                    return
                continue
            try:
                if item is _STOP:
                    self._stopping.set()
                    continue
                if isinstance(item, _Fault):
                    try:
                        item.future.set_result(item.inject(self.hardware))
                    except Exception as exc:
                        item.future.set_exception(exc)
                    continue
                self._migration_tick()
                self._serve(item)
            finally:
                self.queue.task_done()
