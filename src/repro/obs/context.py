"""Request-scoped trace propagation across execution contexts.

One client request to the fleet crosses at least three execution
contexts: the client thread that calls ``FSMFleet.submit()``, the shard
worker thread that serves the batch, and the dispatcher/engine machinery
the worker drives.  PR 1's tracer nests spans with a per-thread stack,
which is correct *within* a thread but blind across the hop — every
worker-side span used to start a fresh root tree.

This module carries the causal link explicitly:

* :class:`TraceContext` — an immutable ``(trace_id, span_id, baggage)``
  triple.  ``trace_id`` names the whole request tree; ``span_id`` is the
  index of the parent span inside the process-wide tracer (``None`` when
  there is no recorded parent, e.g. tracing disabled or a remote hop);
* a :mod:`contextvars` variable holding the *current* context.  The
  tracer activates a child context inside every span, so any code under
  a span — including journal events — sees the request it serves;
* :func:`capture` / :func:`attach` / :func:`detach` — the explicit seam
  crossed at ``FSMFleet.submit()``: the client thread captures, the
  worker thread re-activates before serving;
* a **carrier** codec (:func:`inject` / :func:`extract`) that writes the
  context into any ``str -> str`` mapping (HTTP headers, a message
  envelope, a ``multiprocessing`` pipe frame).  A context decoded from a
  carrier is marked ``remote``: its ``span_id`` indexes *another
  process's* span list, so the local tracer keeps the id for rendering
  but never uses it as a list index.  This is the injection seam the
  future multi-process fleet plugs into.

Everything here is stdlib-only and allocation-light; with tracing and
the journal both disabled no context is ever created, so the hot path
pays a single ``ContextVar.get`` at most.
"""

from __future__ import annotations

import contextvars
import os
from typing import Dict, Iterator, Mapping, MutableMapping, NamedTuple, Optional

__all__ = [
    "TraceContext",
    "activate",
    "attach",
    "capture",
    "current",
    "detach",
    "extract",
    "inject",
    "new_trace",
    "new_trace_id",
]

#: Carrier keys written by :func:`inject` (W3C-traceparent-flavoured but
#: deliberately namespaced: the format is ours, not an interop claim).
TRACE_ID_KEY = "repro-trace-id"
SPAN_ID_KEY = "repro-span-id"
BAGGAGE_PREFIX = "repro-baggage-"


class TraceContext(NamedTuple):
    """One request's identity as it crosses execution contexts.

    A ``NamedTuple`` rather than a frozen dataclass: the tracer creates
    one per span on the serving hot path, and tuple construction is
    several times cheaper than frozen-dataclass ``__init__``.  The
    shared ``{}`` baggage default is safe — baggage is copied on
    derivation, never mutated in place.

    ``trace_id``
        Hex string naming the whole request tree (16 hex chars from
        :func:`new_trace`; any non-empty string is accepted).
    ``span_id``
        Index of the parent span inside the process tracer's span list,
        or ``None`` when no recorded parent exists.
    ``baggage``
        Small string->string map that travels with the request
        (shard key, tenant, experiment arm ...).  Copied on derivation,
        never mutated in place.
    ``remote``
        True when this context was decoded from a carrier: ``span_id``
        belongs to another process and must not be used as a local
        parent index.
    """

    trace_id: str
    span_id: Optional[int] = None
    baggage: Mapping[str, str] = {}
    remote: bool = False

    def child(self, span_id: Optional[int]) -> "TraceContext":
        """The context one span deeper (same trace, new parent span)."""
        return TraceContext(
            trace_id=self.trace_id,
            span_id=span_id,
            baggage=self.baggage,
            remote=False,
        )

    def with_baggage(self, **items: str) -> "TraceContext":
        """A copy with extra baggage entries (existing keys replaced)."""
        merged = dict(self.baggage)
        merged.update({k: str(v) for k, v in items.items()})
        return TraceContext(
            trace_id=self.trace_id,
            span_id=self.span_id,
            baggage=merged,
            remote=self.remote,
        )


_CURRENT: "contextvars.ContextVar[Optional[TraceContext]]" = (
    contextvars.ContextVar("repro_trace_context", default=None)
)


def new_trace_id() -> str:
    """A random 16-hex-char trace id.

    ``os.urandom`` rather than ``uuid.uuid4`` — this runs once per root
    span on the serving hot path, and the UUID machinery costs several
    times the eight random bytes actually needed.
    """
    return os.urandom(8).hex()


def new_trace(**baggage: str) -> TraceContext:
    """A fresh root context with a random 16-hex-char trace id."""
    return TraceContext(
        trace_id=new_trace_id(),
        span_id=None,
        baggage={k: str(v) for k, v in baggage.items()},
    )


def current() -> Optional[TraceContext]:
    """The active context of this execution context (or ``None``)."""
    return _CURRENT.get()


def capture() -> Optional[TraceContext]:
    """Capture the active context for a hand-off to another thread.

    Alias of :func:`current`, named for the call sites that cross a
    thread boundary (``FSMFleet.submit()`` captures, the worker
    re-activates).
    """
    return _CURRENT.get()


def attach(ctx: Optional[TraceContext]) -> "contextvars.Token":
    """Activate ``ctx``; returns a token for :func:`detach`."""
    return _CURRENT.set(ctx)


def detach(token: "contextvars.Token") -> None:
    """Restore the context active before the matching :func:`attach`."""
    _CURRENT.reset(token)


class activate:
    """Context manager form of :func:`attach` / :func:`detach`.

    ``with activate(ctx): ...`` — activating ``None`` is allowed and
    simply masks any outer context for the duration.
    """

    __slots__ = ("ctx", "_token")

    def __init__(self, ctx: Optional[TraceContext]):
        self.ctx = ctx

    def __enter__(self) -> Optional[TraceContext]:
        self._token = _CURRENT.set(self.ctx)
        return self.ctx

    def __exit__(self, *exc_info) -> None:
        _CURRENT.reset(self._token)


def iter_baggage(carrier: Mapping[str, str]) -> Iterator[tuple]:
    """The baggage entries encoded in ``carrier`` (decoded keys)."""
    for key, value in carrier.items():
        if key.startswith(BAGGAGE_PREFIX):
            yield key[len(BAGGAGE_PREFIX):], value


def inject(
    carrier: MutableMapping[str, str],
    ctx: Optional[TraceContext] = None,
) -> MutableMapping[str, str]:
    """Encode ``ctx`` (default: the active context) into ``carrier``.

    Writes plain string keys/values only, so any transport that can
    move a ``dict`` of headers can move a trace.  A ``None`` context
    writes nothing (the carrier is returned unchanged).
    """
    if ctx is None:
        ctx = _CURRENT.get()
    if ctx is None:
        return carrier
    carrier[TRACE_ID_KEY] = ctx.trace_id
    if ctx.span_id is not None:
        carrier[SPAN_ID_KEY] = str(ctx.span_id)
    for key, value in ctx.baggage.items():
        carrier[BAGGAGE_PREFIX + key] = str(value)
    return carrier


def extract(carrier: Mapping[str, str]) -> Optional[TraceContext]:
    """Decode a context from ``carrier``; ``None`` when none encoded.

    The result is marked ``remote=True``: its ``span_id`` (if any)
    names a span in the *sending* process, kept for cross-process
    reassembly but never dereferenced locally.
    """
    trace_id = carrier.get(TRACE_ID_KEY)
    if not trace_id:
        return None
    span_id: Optional[int] = None
    raw = carrier.get(SPAN_ID_KEY)
    if raw is not None:
        try:
            span_id = int(raw)
        except ValueError:
            span_id = None
    baggage: Dict[str, str] = dict(iter_baggage(carrier))
    return TraceContext(
        trace_id=trace_id, span_id=span_id, baggage=baggage, remote=True
    )
