"""FPGA resource and reconfiguration-time model (paper Sec. 1 and Sec. 3).

The paper's implementation targets a Xilinx Virtex XCV300: the
Reconfigurator is built from logic blocks (CLBs/LUTs), F-RAM and G-RAM
from embedded Block RAM.  The introduction motivates gradual
reconfiguration against full-context swapping, whose "reconfiguration
times are in the order of milliseconds".  This module quantifies both
sides:

* :func:`estimate_resources` sizes an FSM implementation (Block-RAM bits,
  LUTs for the Reconfigurator, state-register flip-flops) against a
  device budget;
* :class:`ReconfigurationCostModel` compares the time of a gradual
  reconfiguration (``|Z|`` clock cycles) with a full or partial
  configuration-bitstream download, powering the context-swap benchmark.

Device constants are taken from the Virtex data sheet family; they set
realistic *scales* (the benchmark claims concern ratios, not absolute
nanoseconds).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.alphabet import bits_for
from ..core.fsm import FSM
from ..core.program import Program


@dataclass(frozen=True)
class FPGADevice:
    """A reconfigurable logic device's capacity and configuration port.

    ``bitstream_bits`` is the full configuration bitstream length;
    ``config_bus_bits`` × ``config_clock_hz`` gives the download
    bandwidth (SelectMAP-style byte-parallel port).  ``frames`` is the
    number of independently reloadable configuration columns, the
    granularity of *partial* context swapping.
    """

    name: str
    luts: int
    flip_flops: int
    block_rams: int
    block_ram_bits: int
    bitstream_bits: int
    config_bus_bits: int = 8
    config_clock_hz: float = 50e6
    frames: int = 1

    @property
    def total_bram_bits(self) -> int:
        """Total embedded memory capacity in bits."""
        return self.block_rams * self.block_ram_bits

    def full_swap_seconds(self) -> float:
        """Time to download the complete configuration bitstream."""
        return self.bitstream_bits / (self.config_bus_bits * self.config_clock_hz)

    def partial_swap_seconds(self, fraction: float) -> float:
        """Time to reload ``fraction`` of the bitstream, frame-quantised."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        frames_needed = max(1, math.ceil(fraction * self.frames))
        return (frames_needed / self.frames) * self.full_swap_seconds()


XCV300 = FPGADevice(
    name="Xilinx Virtex XCV300",
    luts=6144,
    flip_flops=6144,
    block_rams=16,
    block_ram_bits=4096,
    bitstream_bits=1_751_840,
    config_bus_bits=8,
    config_clock_hz=50e6,
    frames=1536,
)
"""The device the paper's implementation used (footnote, Sec. 3)."""


@dataclass(frozen=True)
class ResourceEstimate:
    """Resource footprint of one reconfigurable-FSM implementation."""

    f_ram_bits: int
    g_ram_bits: int
    block_rams: int
    reconfigurator_luts: int
    flip_flops: int

    @property
    def total_ram_bits(self) -> int:
        return self.f_ram_bits + self.g_ram_bits

    def fits(self, device: FPGADevice) -> bool:
        """True when the estimate fits the device budget."""
        return (
            self.block_rams <= device.block_rams
            and self.reconfigurator_luts <= device.luts
            and self.flip_flops <= device.flip_flops
        )


def estimate_resources(
    machine: FSM,
    rom_cycles: int = 0,
    extra_inputs: int = 0,
    extra_states: int = 0,
    extra_outputs: int = 0,
    device: FPGADevice = XCV300,
) -> ResourceEstimate:
    """Size the Fig. 5 implementation of ``machine`` on ``device``.

    ``rom_cycles`` is the total length of the reconfiguration sequences
    the Reconfigurator must store (its CLB cost grows with the ROM);
    the ``extra_*`` parameters add superset headroom (Def. 4.1) to the
    encodings before sizing.
    """
    i_bits = bits_for(len(machine.inputs) + extra_inputs)
    s_bits = bits_for(len(machine.states) + extra_states)
    o_bits = bits_for(len(machine.outputs) + extra_outputs)
    depth = 2 ** (i_bits + s_bits)

    f_bits = depth * s_bits
    g_bits = depth * o_bits
    brams = _brams_needed(f_bits, device) + _brams_needed(g_bits, device)

    # Reconfigurator: one microinstruction drives ir (i_bits), hf (s_bits),
    # hg (o_bits) plus write/reset; a LUT-based sequence ROM costs roughly
    # one 4-LUT per 16 stored bits plus a program counter and the muxes.
    micro_bits = i_bits + s_bits + o_bits + 2
    rom_luts = math.ceil(rom_cycles * micro_bits / 16)
    counter_bits = bits_for(max(2, rom_cycles + 1))
    mux_luts = i_bits + s_bits  # IN-MUX and RST-MUX, one LUT per bit
    reconfigurator_luts = rom_luts + counter_bits + mux_luts

    flip_flops = s_bits + counter_bits

    return ResourceEstimate(
        f_ram_bits=f_bits,
        g_ram_bits=g_bits,
        block_rams=brams,
        reconfigurator_luts=reconfigurator_luts,
        flip_flops=flip_flops,
    )


def _brams_needed(bits: int, device: FPGADevice) -> int:
    return max(1, math.ceil(bits / device.block_ram_bits))


@dataclass(frozen=True)
class LutEstimate:
    """Footprint of a conventional (non-reconfigurable) LUT implementation."""

    luts: int
    flip_flops: int

    def fits(self, device: FPGADevice) -> bool:
        return self.luts <= device.luts and self.flip_flops <= device.flip_flops


def estimate_lut_implementation(
    machine: FSM, lut_inputs: int = 4
) -> LutEstimate:
    """Size a conventional synthesised (LUT-network) FSM implementation.

    This is the alternative the paper's RAM-based architecture competes
    with: next-state and output logic as LUT trees over the
    ``i_bits + s_bits`` support.  The estimate uses the standard
    tree-decomposition bound — a ``k``-input function needs
    ``ceil((k - 1) / (lut_inputs - 1))`` LUTs per output bit — which is
    pessimistic for structured machines and exact for dense ones.

    The crucial *qualitative* difference: these LUTs encode ``F``/``G``
    in routed logic, so changing one transition means re-running
    synthesis/place/route and downloading a bitstream — exactly the
    dependency the paper's design avoids ("the reconfiguration function
    is independent of the placement and routing").
    """
    if lut_inputs < 2:
        raise ValueError("LUTs need at least two inputs")
    i_bits = bits_for(len(machine.inputs))
    s_bits = bits_for(len(machine.states))
    o_bits = bits_for(len(machine.outputs))
    support = i_bits + s_bits
    per_output = max(1, math.ceil((support - 1) / (lut_inputs - 1)))
    return LutEstimate(
        luts=per_output * (s_bits + o_bits),
        flip_flops=s_bits,
    )


@dataclass(frozen=True)
class ReconfigurationCostModel:
    """Compares gradual reconfiguration against context swapping.

    ``clock_hz`` is the FSM's operating clock.  Gradual reconfiguration
    spends ``|Z|`` machine cycles; a context swap stalls the machine for
    a (partial) bitstream download.  The paper's motivating observation
    is that the former is orders of magnitude faster for small deltas —
    and, crucially, technology-independent.
    """

    device: FPGADevice = XCV300
    clock_hz: float = 50e6

    def gradual_seconds(self, program: "Program | int") -> float:
        """Wall-clock time of a gradual reconfiguration of ``|Z|`` cycles."""
        cycles = program if isinstance(program, int) else len(program)
        return cycles / self.clock_hz

    def full_swap_seconds(self) -> float:
        """Wall-clock time of a full-bitstream context swap."""
        return self.device.full_swap_seconds()

    def partial_swap_seconds(self, machine: FSM) -> float:
        """Context swap reloading only the machine's own footprint.

        The reloaded fraction is approximated by the machine's share of
        the device's Block RAM plus a proportional share of logic — an
        optimistic lower bound for real partial reconfiguration, which
        is frame-quantised.
        """
        estimate = estimate_resources(machine, device=self.device)
        fraction = min(
            1.0,
            max(
                estimate.total_ram_bits / max(1, self.device.total_bram_bits),
                1 / self.device.frames,
            ),
        )
        return self.device.partial_swap_seconds(fraction)

    def speedup_vs_full_swap(self, program: "Program | int") -> float:
        """How many times faster gradual reconfiguration is."""
        return self.full_swap_seconds() / self.gradual_seconds(program)

    def speedup_vs_partial_swap(self, program: Program) -> float:
        """Speedup against an optimistic partial context swap."""
        return self.partial_swap_seconds(program.target) / self.gradual_seconds(
            program
        )

    def crossover_cycles_full(self) -> int:
        """Program length at which gradual loses to a full swap."""
        return math.ceil(self.full_swap_seconds() * self.clock_hz)

    def crossover_cycles_partial(self, machine: FSM) -> int:
        """Program length at which gradual loses to a partial swap."""
        return math.ceil(self.partial_swap_seconds(machine) * self.clock_hz)
