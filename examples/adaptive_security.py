#!/usr/bin/env python
"""Adaptive security: a parser that locks itself down under attack.

The purest form of the paper's *self*-reconfiguration: the machine
decides, from its own observations, to rewrite its own transition and
output functions.  A packet classifier watches its verdict stream; a
burst of rejects (a port-scan signature) triggers an autonomous
migration into a lockdown policy that accepts only the management code,
and a management packet migrates it back — all on-chip, all gradual,
the clock never stops.

Run: ``python examples/adaptive_security.py``
"""

from repro.analysis.tables import format_table
from repro.protocols.adaptive import AdaptiveParser
from repro.protocols.packet import Packet, revision


def main():
    MGMT = 0xF
    policy = revision("prod", 4, {0x8, 0x6, MGMT})
    parser = AdaptiveParser(policy, management_code=MGMT,
                            lockdown_threshold=3)
    print(f"normal policy accepts : "
          f"{sorted(hex(c) for c in parser.policy.accepted)}")
    print(f"lockdown policy accepts: "
          f"{sorted(hex(c) for c in parser.lockdown_policy.accepted)}")
    print(f"lockdown trigger: {parser.lockdown_threshold} consecutive rejects\n")

    # Normal traffic, then a scan burst, then legitimate traffic that is
    # (correctly) refused during lockdown, then a management restore.
    stream = [
        0x8, 0x6, 0x8,            # normal traffic
        0x1, 0x2, 0x3,            # scan burst -> lockdown
        0x8, 0x6,                 # legitimate traffic, refused in lockdown
        MGMT,                     # management packet -> restore
        0x8, 0x6,                 # service resumes
    ]
    rows = []
    for code in stream:
        packet = Packet(code, 4)
        mode_before = "LOCKDOWN" if parser.locked_down else "normal"
        accepted = parser.classify(packet)
        rows.append(
            {
                "packet": str(packet),
                "mode": mode_before,
                "verdict": "accept" if accepted else "reject",
            }
        )
    print(format_table(rows, title="traffic log"))

    print("\nautonomous reconfigurations:")
    for event in parser.events:
        print(
            f"  after packet {event.packet_index}: {event.direction} "
            f"({event.reconfiguration_cycles} clock cycles)"
        )
    total = parser.total_reconfiguration_cycles()
    print(
        f"\ntotal self-reconfiguration cost: {total} cycles "
        f"({total * 20} ns at 50 MHz); a bitstream swap would have cost "
        "milliseconds per mode change."
    )
    assert [e.direction for e in parser.events] == ["lockdown", "restore"]


if __name__ == "__main__":
    main()
