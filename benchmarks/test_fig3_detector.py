"""F3 — Fig. 3: the ones-detector state-transition graph and its hardware.

Paper artifact: Fig. 3 shows the state-transition diagram of the
Example 2.1 VHDL machine and a gate-level implementation.  We rebuild the
machine, check its transition structure against the diagram, generate the
paper-style VHDL listing, and benchmark normal-mode hardware execution
throughput (the datapath is the product being implemented).
"""

from repro.analysis.tables import format_table
from repro.hw.machine import HardwareFSM
from repro.hw.vhdl import generate_fsm_vhdl
from repro.workloads.library import ones_detector


def run_detector_on_hardware(word):
    hw = HardwareFSM(ones_detector())
    return hw.run(word)


def test_fig3_ones_detector(benchmark, record_table):
    machine = ones_detector()

    # The four edges of the Fig. 3 diagram.
    assert {str(t) for t in machine.transitions()} == {
        "(1, S0, S1, 0)",
        "(1, S1, S1, 1)",
        "(0, S0, S0, 0)",
        "(0, S1, S0, 0)",
    }
    # Specification: 1 after two or more successive ones, until a zero.
    assert machine.run(list("110111")) == list("010011")

    # VHDL in the style of the paper's listing.
    vhdl = generate_fsm_vhdl(machine, entity="rec")
    assert "type state_type is (S0, S1);" in vhdl
    assert "rising_edge(clk)" in vhdl

    # Hardware throughput benchmark on a long bitstream.
    word = (list("1101") * 250)[:1000]
    outputs = benchmark(run_detector_on_hardware, word)
    assert outputs == machine.run(word)

    rows = [
        {
            "edge": str(t),
            "from": t.source,
            "to": t.target,
            "label": f"{t.input}/{t.output}",
        }
        for t in machine.transitions()
    ]
    record_table(
        "fig3_detector",
        format_table(rows, title="Fig. 3 — ones-detector transitions")
        + "\n\nGenerated VHDL (paper-style listing):\n" + vhdl,
    )
