"""Unit tests for the configuration-bitstream model."""

import pytest

from repro.core.jsr import jsr_program
from repro.hw.bitstream import (
    Bitstream,
    DownloadPort,
    context_swap,
    frame_diff,
    snapshot,
    target_bitstream,
)
from repro.hw.machine import HardwareFSM
from repro.workloads.library import (
    fig6_m,
    fig6_m_prime,
    ones_detector,
    table1_target,
)


class TestSnapshot:
    def test_geometry(self, detector):
        hw = HardwareFSM(detector)
        image = snapshot(hw, frame_bytes=4)
        # F-RAM 4 words + G-RAM 4 words = 8 bytes = 2 frames of 4.
        assert len(image) == 2
        assert image.frame_bytes == 4
        assert image.total_bits == 2 * 4 * 8

    def test_deterministic(self, detector):
        hw = HardwareFSM(detector)
        assert snapshot(hw) == snapshot(hw)

    def test_padding(self, detector):
        hw = HardwareFSM(detector)
        image = snapshot(hw, frame_bytes=3)
        assert len(image) == 3  # ceil(8 / 3)

    def test_rejects_bad_frame_size(self, detector):
        with pytest.raises(ValueError):
            snapshot(HardwareFSM(detector), frame_bytes=0)

    def test_captures_table_changes(self, detector):
        hw = HardwareFSM(detector)
        before = snapshot(hw)
        hw.run_program(jsr_program(detector, table1_target()))
        after = snapshot(hw)
        assert before != after


class TestFrameDiff:
    def test_identical_images(self, detector):
        hw = HardwareFSM(detector)
        assert frame_diff(snapshot(hw), snapshot(hw)) == []

    def test_localised_changes(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        before = snapshot(hw, frame_bytes=2)
        after = target_bitstream(hw, mp, frame_bytes=2)
        changed = frame_diff(before, after)
        assert 0 < len(changed) <= len(after)

    def test_geometry_mismatch(self, detector):
        hw = HardwareFSM(detector)
        with pytest.raises(ValueError):
            frame_diff(snapshot(hw, frame_bytes=2), snapshot(hw, frame_bytes=4))


class TestDownloadPort:
    def test_cycles_scale_with_frames(self):
        port = DownloadPort(bus_bits=8, overhead_bytes=3)
        one = port.cycles_for_frames(1, 4)
        ten = port.cycles_for_frames(10, 4)
        assert ten == 10 * one

    def test_overhead_charged_per_frame(self):
        cheap = DownloadPort(overhead_bytes=0)
        costly = DownloadPort(overhead_bytes=8)
        assert costly.cycles_for_frames(5, 4) > cheap.cycles_for_frames(5, 4)

    def test_seconds(self):
        port = DownloadPort(bus_bits=8, clock_hz=1e6, overhead_bytes=0)
        assert port.seconds_for_frames(1, 1) == pytest.approx(1e-6)


class TestContextSwap:
    def test_swap_realises_target(self, fig6_pair):
        m, mp = fig6_pair
        hw = HardwareFSM.for_migration(m, mp)
        report = context_swap(hw, mp)
        assert hw.realises(mp)
        assert hw.state == mp.reset_state
        assert report.state_lost

    def test_partial_writes_fewer_frames(self, fig6_pair):
        m, mp = fig6_pair
        hw1 = HardwareFSM.for_migration(m, mp)
        partial = context_swap(hw1, mp, partial=True, frame_bytes=1)
        hw2 = HardwareFSM.for_migration(m, mp)
        full = context_swap(hw2, mp, partial=False, frame_bytes=1)
        assert partial.frames_written < full.frames_written
        assert partial.download_cycles < full.download_cycles

    def test_swap_vs_gradual_cycles(self, fig6_pair):
        """The mechanism-level version of the paper's Sec. 1 argument."""
        m, mp = fig6_pair
        program = jsr_program(m, mp)
        hw = HardwareFSM.for_migration(m, mp)
        report = context_swap(hw, mp, partial=False, frame_bytes=1)
        # Even on this tiny machine, a full-image download costs more
        # port cycles than the JSR program costs machine cycles.
        assert report.download_cycles > len(program)

    def test_swap_report_counts(self, detector):
        hw = HardwareFSM(detector)
        report = context_swap(hw, table1_target(), frame_bytes=1)
        assert report.frames_total == 8
        assert 0 < report.frames_written <= 8
