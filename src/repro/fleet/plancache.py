"""Thread-safe, fingerprint-keyed cache of migration plans.

Every shard of a fleet migrates between the *same* pair of machines, so
without sharing, a four-worker rollout would synthesise the same
reconfiguration program four times (and an EA run is the expensive part
of a migration by orders of magnitude).  :class:`PlanCache` layers on
:class:`repro.core.plan.SynthesisCache` — the same machinery
:class:`~repro.core.plan.MigrationGraph` uses — and adds a second cache
for the *incremental* form of a plan: the safe chunk list
(:func:`repro.core.incremental.incremental_chunks`) reordered so live
traffic never crosses an unconfigured row (see :func:`order_chunks`).

Keys are structural fingerprints (:func:`repro.core.plan.fsm_fingerprint`),
so renamed-but-identical machines share entries, and both caches
deduplicate concurrent misses: the first caller computes, later callers
block on the shared future.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.ea import EAConfig
from ..core.fsm import FSM, Input
from ..core.incremental import Chunk, incremental_chunks
from ..core.passes import OptLevel, normalise_level, optimise_chunks
from ..core.plan import SynthesisCache, fsm_fingerprint, make_synthesiser
from ..core.program import Program
from ..obs import instruments as _instruments


def order_chunks(chunks: Sequence[Chunk], source: FSM, target: FSM) -> List[Chunk]:
    """Reorder safe chunks so live traffic never strands mid-growth.

    Each chunk is position-independent (it starts with a reset and
    restores the blend invariant), so any permutation still migrates
    correctly.  Order *does* matter for traffic running between chunks:
    a delta edge from an old state into a brand-new state must not go
    live before the new state's own rows exist, or the next symbol reads
    an unconfigured word.  Phase 0 therefore writes every row *of* a
    target-only state; phase 1 writes the rest (including the edges
    *into* new states).  Within phase 0 the target reset state's rows
    come first — every chunk parks the machine there.
    """
    new_states = set(target.states) - set(source.states)
    s0 = target.reset_state

    def phase(chunk: Chunk) -> int:
        if chunk.delta is None or chunk.delta.source not in new_states:
            return 2
        return 0 if chunk.delta.source == s0 else 1

    return sorted(chunks, key=phase)


class PlanCache:
    """Shared migration-plan cache for a fleet of shard workers.

    Parameters
    ----------
    synthesiser:
        ``"ea"`` (default), ``"jsr"``, or a callable
        ``(source, target) -> Program`` — the same choices
        :class:`~repro.core.plan.MigrationGraph` accepts.
    ea_config:
        Tuning for the default EA synthesiser.
    opt_level:
        Pass-pipeline level applied to every plan the cache hands out:
        monolithic programs run through the standard
        :class:`~repro.core.passes.PassPipeline` and chunk plans through
        the traffic-safe :func:`~repro.core.passes.optimise_chunks`.
        Part of both cache keys, so mixed-level fleets never share a
        plan across levels.
    """

    def __init__(
        self,
        synthesiser: "str | Callable[[FSM, FSM], Program]" = "ea",
        ea_config: Optional[EAConfig] = None,
        opt_level: OptLevel = None,
    ):
        self.opt_level = normalise_level(opt_level)
        self._programs = SynthesisCache(
            make_synthesiser(synthesiser, ea_config), opt_level=opt_level
        )
        self._lock = threading.Lock()
        self._chunks: Dict[
            Tuple[str, str, Optional[str], str], "Future[List[Chunk]]"
        ] = {}
        self.chunk_hits = 0
        self.chunk_misses = 0

    # ------------------------------------------------------------------
    def program(self, source: FSM, target: FSM) -> Program:
        """The (cached) monolithic reconfiguration program for one pair."""
        before = self._programs.misses
        program = self._programs.program(source, target)
        result = "miss" if self._programs.misses > before else "hit"
        _instruments.PLAN_CACHE_REQUESTS.inc(kind="program", result=result)
        return program

    def chunks(
        self, source: FSM, target: FSM, i0: Optional[Input] = None
    ) -> List[Chunk]:
        """Safe, traffic-ordered chunks for a gradual (live) migration.

        Memoised per fingerprint pair (and home input ``i0``); chunk
        synthesis is pure table work — cheap next to an EA run, but a
        fleet re-plans the same pair once per shard, so sharing still
        pays, and it keeps every worker on the *identical* plan.
        """
        key = (
            fsm_fingerprint(source),
            fsm_fingerprint(target),
            None if i0 is None else repr(i0),
            self.opt_level,
        )
        with self._lock:
            future = self._chunks.get(key)
            owner = future is None
            if owner:
                future = Future()
                self._chunks[key] = future
                self.chunk_misses += 1
            else:
                self.chunk_hits += 1
        _instruments.PLAN_CACHE_REQUESTS.inc(
            kind="chunks", result="miss" if owner else "hit"
        )
        if not owner:
            return future.result()
        try:
            ordered = order_chunks(
                incremental_chunks(source, target, i0=i0), source, target
            )
            # Optimization runs *after* ordering: the chunk optimizer
            # threads the planned blend table through the chunks in
            # execution order, so the order it sees must be the order
            # the workers will run.
            ordered = optimise_chunks(
                ordered, source, target, i0=i0, level=self.opt_level
            )
        except BaseException as exc:
            with self._lock:
                self._chunks.pop(key, None)
            future.set_exception(exc)
            raise
        future.set_result(ordered)
        return ordered

    # ------------------------------------------------------------------
    def cache_info(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss/entry counts for both layers (programs and chunks)."""
        with self._lock:
            chunk_info = {
                "entries": len(self._chunks),
                "hits": self.chunk_hits,
                "misses": self.chunk_misses,
            }
        return {"programs": self._programs.cache_info(), "chunks": chunk_info}
