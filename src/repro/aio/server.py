"""The asyncio socket server: many connections, one loop, one fleet.

:class:`IngestServer` is the ingestion front door: it accepts frame-
protocol connections (:mod:`repro.aio.frames`), turns every ``submit``
frame into one :func:`repro.aio.bridge.submit_async` call, and writes
the reply when the fleet resolves — the connection count is bounded by
the loop, not by threads, which is the whole point of the plane.

Request handling is FIFO per connection (a reply is written before the
next frame is read) and concurrent across connections.  Saturation
therefore behaves per client: a submitter on a full shard awaits
admission without stalling anyone else's connection.

Frame vocabulary (all JSON objects; ``id`` is echoed when present):

``{"op": "submit", "key": K, "symbols": [...], "session": S?}``
    → ``{"ok": true, "outputs": [...]}`` or
    ``{"ok": false, "error": TYPE, "message": MSG}``.  Fleet-level
    failures (overload in ``reject`` mode, alphabet errors) come back
    in-band; the connection survives.
``{"op": "health"}``
    → ``{"ok": true, "health": <healthz payload>}``.
``{"op": "ping"}``
    → ``{"ok": true, "pong": true}``.

An optional :class:`~repro.aio.obs.AsyncObsServer` rides the same loop
when ``obs_port`` is given, so ``/metrics`` and ``/healthz`` stay
responsive exactly while ingestion does.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from ..obs import health as _health
from ..obs import instruments as _instruments
from .bridge import submit_async
from .frames import FrameError, read_frame, write_frame
from .obs import AsyncObsServer

__all__ = ["IngestServer"]


class IngestServer:
    """Frame-protocol ingestion in front of one fleet (see module doc)."""

    def __init__(
        self,
        fleet,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        ingest: str = "wait",
        obs_port: Optional[int] = None,
    ):
        self.fleet = fleet
        self.ingest = ingest
        self._host = host
        self._port = port
        self._obs_port = obs_port
        self._server: Optional[asyncio.base_events.Server] = None
        self.obs: Optional[AsyncObsServer] = None

    # -- lifecycle ------------------------------------------------------
    async def start(self) -> "IngestServer":
        """Bind the ingestion socket (and the obs endpoint when asked).

        Bind failures propagate as ``OSError`` — the CLI maps them to
        exit status 2.  A failed obs bind closes the already-bound
        ingestion socket before re-raising, so a partially started
        server never leaks.
        """
        self._server = await asyncio.start_server(
            self._handle, self._host, self._port
        )
        if self._obs_port is not None:
            try:
                self.obs = await AsyncObsServer(
                    fleet=self.fleet, host=self._host, port=self._obs_port
                ).start()
            except BaseException:
                self._server.close()
                await self._server.wait_closed()
                self._server = None
                raise
        return self

    @property
    def port(self) -> int:
        assert self._server is not None, "start() first"
        return self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> "tuple[str, int]":
        return (self._host, self.port)

    async def serve_forever(self) -> None:
        assert self._server is not None, "start() first"
        await self._server.serve_forever()

    async def close(self) -> None:
        if self.obs is not None:
            await self.obs.close()
            self.obs = None
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "IngestServer":
        return await self.start()

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- connection handling --------------------------------------------
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        _instruments.AIO_CONNECTIONS.inc()
        try:
            while True:
                try:
                    frame = await read_frame(reader)
                except (FrameError, asyncio.IncompleteReadError):
                    break  # protocol violation or dropped peer
                if frame is None:
                    break
                reply = await self._dispatch(frame)
                if isinstance(frame, dict) and "id" in frame:
                    reply["id"] = frame["id"]
                try:
                    await write_frame(writer, reply)
                except (ConnectionError, FrameError):
                    break
        except asyncio.CancelledError:
            # Loop shutdown cancelled this connection mid-read: the
            # peer is gone as far as serving is concerned, and letting
            # the cancellation escape only feeds the asyncio streams
            # done-callback a CancelledError it logs as an error.
            pass
        finally:
            writer.close()

    async def _dispatch(self, frame: Any) -> Dict[str, Any]:
        if not isinstance(frame, dict):
            return {
                "ok": False,
                "error": "FrameError",
                "message": "frame must be a JSON object",
            }
        op = frame.get("op")
        _instruments.AIO_FRAMES.inc(op=str(op))
        if op == "submit":
            return await self._submit(frame)
        if op == "ping":
            return {"ok": True, "pong": True}
        if op == "health":
            report = _health.check(fleet=self.fleet)
            return {"ok": True, "health": report.to_dict()}
        return {
            "ok": False,
            "error": "FrameError",
            "message": f"unknown op {op!r}",
        }

    async def _submit(self, frame: Dict[str, Any]) -> Dict[str, Any]:
        key = frame.get("key")
        symbols = frame.get("symbols")
        if key is None or not isinstance(symbols, list) or not symbols:
            return {
                "ok": False,
                "error": "FrameError",
                "message": "submit needs 'key' and a non-empty 'symbols'",
            }
        try:
            outputs = await submit_async(
                self.fleet,
                key,
                tuple(symbols),
                session=frame.get("session"),
                ingest=frame.get("ingest", self.ingest),
                admission_timeout_s=frame.get("admission_timeout_s"),
            )
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            # In-band failure: overload (reject mode), admission
            # timeout, alphabet errors, a closed fleet — the connection
            # keeps serving.  Saturation errors carry the shard id so
            # the client can back off or re-key without parsing the
            # message text.
            payload = {
                "ok": False,
                "error": type(exc).__name__,
                "message": str(exc),
            }
            shard = getattr(exc, "shard", None)
            if shard is not None:
                payload["shard"] = shard
            return payload
        return {"ok": True, "outputs": list(outputs)}
