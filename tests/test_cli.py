"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io.kiss import dump, loads
from repro.workloads.library import fig6_m, fig6_m_prime, ones_detector


@pytest.fixture
def kiss_files(tmp_path):
    src = str(tmp_path / "m.kiss")
    tgt = str(tmp_path / "mp.kiss")
    dump(fig6_m(), src)
    dump(fig6_m_prime(), tgt)
    return src, tgt


class TestInfo:
    def test_prints_stats(self, kiss_files, capsys):
        src, _tgt = kiss_files
        assert main(["info", src]) == 0
        out = capsys.readouterr().out
        assert "states" in out and "3" in out
        assert "strongly connected" in out

    def test_moore_flag(self, tmp_path, capsys):
        path = str(tmp_path / "d.kiss")
        dump(ones_detector(), path)
        main(["info", path])
        assert "Moore-style" in capsys.readouterr().out


class TestDeltas:
    def test_lists_paper_deltas(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(["deltas", src, tgt]) == 0
        out = capsys.readouterr().out
        assert "|Td| = 4" in out
        assert "4 <= |Z| <= 15" in out

    def test_trivial_migration(self, kiss_files, capsys):
        src, _tgt = kiss_files
        main(["deltas", src, src])
        assert "trivial" in capsys.readouterr().out


class TestSynth:
    @pytest.mark.parametrize("method", ["jsr", "ea", "greedy", "tsp", "optimal"])
    def test_all_methods(self, kiss_files, capsys, method):
        src, tgt = kiss_files
        assert main(["synth", src, tgt, "--method", method]) == 0
        out = capsys.readouterr().out
        assert "reconfiguration program" in out

    def test_sequence_table(self, kiss_files, capsys):
        src, tgt = kiss_files
        main(["synth", src, tgt, "--method", "jsr", "--sequence"])
        out = capsys.readouterr().out
        assert "reconfiguration sequence" in out
        assert "Hi" in out and "Hf" in out and "Hg" in out

    def test_jsr_length(self, kiss_files, capsys):
        src, tgt = kiss_files
        main(["synth", src, tgt, "--method", "jsr"])
        assert "|Z| = 15" in capsys.readouterr().out


class TestMigrate:
    def test_verified_migration(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(["migrate", src, tgt, "--method", "ea"]) == 0
        assert "hardware-verified=True" in capsys.readouterr().out


class TestMinimize:
    def test_emits_kiss(self, tmp_path, capsys):
        # A machine with two redundant states.
        text = (
            ".i 1\n.o 1\n.r A\n"
            "0 A A 0\n1 A B 1\n"
            "0 B B 0\n1 B A 1\n"
        )
        path = str(tmp_path / "r.kiss")
        with open(path, "w") as handle:
            handle.write(text)
        assert main(["minimize", path]) == 0
        out = capsys.readouterr().out
        minimal = loads(out)
        assert len(minimal.states) == 1

    def test_reports_reduction(self, kiss_files, capsys):
        src, _ = kiss_files
        main(["minimize", src])
        assert "3 -> 3 states" in capsys.readouterr().err


class TestVhdlAndDot:
    def test_behavioural_vhdl(self, kiss_files, capsys):
        src, _ = kiss_files
        assert main(["vhdl", src]) == 0
        assert "architecture behavior" in capsys.readouterr().out

    def test_structural_vhdl(self, kiss_files, capsys):
        src, _ = kiss_files
        assert main(["vhdl", src, "--reconfigurable", "--extra-states", "1"]) == 0
        assert "architecture structure" in capsys.readouterr().out

    def test_dot_single_machine(self, kiss_files, capsys):
        src, _ = kiss_files
        assert main(["dot", src]) == 0
        assert "digraph" in capsys.readouterr().out

    def test_dot_migration_view(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(["dot", src, "--target", tgt]) == 0
        assert "style=bold" in capsys.readouterr().out


class TestSuiteCommand:
    def test_suite_with_jsr(self, capsys):
        assert main(["suite", "--method", "jsr"]) == 0
        out = capsys.readouterr().out
        assert "paper/fig6" in out
        assert "valid" in out
        assert "False" not in out


class TestReport:
    def test_markdown_report(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(["report", src, tgt]) == 0
        out = capsys.readouterr().out
        assert "# Migration report" in out
        assert "## Recommended program" in out
        assert "**PASS**" in out


class TestVerilog:
    def test_behavioural(self, kiss_files, capsys):
        src, _ = kiss_files
        assert main(["verilog", src]) == 0
        out = capsys.readouterr().out
        assert out.startswith("module")
        assert "endmodule" in out

    def test_structural(self, kiss_files, capsys):
        src, _ = kiss_files
        assert main(["verilog", src, "--reconfigurable"]) == 0
        assert "f_ram" in capsys.readouterr().out


class TestSimulate:
    def test_runs_word(self, tmp_path, capsys):
        path = str(tmp_path / "d.kiss")
        dump(ones_detector(), path)
        assert main(["simulate", path, "1101"]) == 0
        out = capsys.readouterr().out
        assert "outputs: 0 1 0 0" in out
        assert "final state: S1" in out

    def test_writes_vcd(self, tmp_path, capsys):
        path = str(tmp_path / "d.kiss")
        vcd_path = str(tmp_path / "run.vcd")
        dump(ones_detector(), path)
        assert main(["simulate", path, "11", "--vcd", vcd_path]) == 0
        with open(vcd_path) as handle:
            assert "$enddefinitions" in handle.read()


class TestVerify:
    def test_pass_on_good_migration(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(["verify", src, tgt, "--method", "jsr"]) == 0
        assert "PASS" in capsys.readouterr().out

    def test_self_migration_passes(self, kiss_files, capsys):
        src, _tgt = kiss_files
        assert main(["verify", src, src, "--method", "optimal"]) == 0


class TestFillOption:
    def test_incomplete_file_needs_fill(self, tmp_path, capsys):
        path = str(tmp_path / "inc.kiss")
        with open(path, "w") as handle:
            handle.write(".i 1\n.o 1\n1 A A 1\n")
        # Parse errors are reported as a one-line diagnostic + exit 2,
        # not a traceback.
        assert main(["info", path]) == 2
        assert "malformed KISS2" in capsys.readouterr().err
        assert main(["--fill", "0", "info", path]) == 0


class TestFleet:
    def test_demo_run(self, capsys):
        assert main([
            "fleet", "--workers", "2", "--requests", "24",
            "--batch", "8", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "rollout verified" in out
        assert "zero downtime" in out
        assert "steps/sec" in out

    def test_inject_fault_counts_incident(self, capsys):
        assert main([
            "fleet", "--workers", "2", "--requests", "40",
            "--batch", "8", "--seed", "1", "--inject-fault",
        ]) == 0
        assert "incidents" in capsys.readouterr().out

    def test_unknown_workload_lists_known(self, capsys):
        assert main(["fleet", "--workload", "nope"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err
        assert "ctrl/pattern-1011-to-0110" in err

    def test_infeasible_budget_fails(self, capsys):
        assert main([
            "fleet", "--workers", "1", "--requests", "8",
            "--batch", "4", "--stall-budget", "3",
        ]) == 2
        assert "rollout failed" in capsys.readouterr().err

    def test_metrics_snapshot_includes_fleet_families(self, capsys):
        assert main([
            "--metrics", "json", "fleet", "--workers", "2",
            "--requests", "16", "--batch", "4",
        ]) == 0
        err = capsys.readouterr().err
        assert "repro_fleet_batches_total" in err
        assert "repro_fleet_shard_migrations_total" in err

    def test_process_mode_serves_and_migrates(self, capsys):
        assert main([
            "fleet", "--mode", "process", "--workers", "2",
            "--requests", "24", "--batch", "8", "--seed", "1",
        ]) == 0
        out = capsys.readouterr().out
        assert "process" in out
        assert "table-shm" in out
        assert "rollout verified" in out
        assert "zero downtime" in out

    def test_process_mode_rejects_foreign_engine(self, capsys):
        assert main([
            "fleet", "--mode", "process", "--engine", "python",
            "--requests", "4",
        ]) == 2
        assert "table-shm" in capsys.readouterr().err

    def test_process_mode_with_shm_disabled_exits_2(
        self, capsys, monkeypatch
    ):
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        assert main([
            "fleet", "--mode", "process", "--requests", "4",
        ]) == 2
        assert "REPRO_DISABLE_SHM" in capsys.readouterr().err


class TestBackends:
    @pytest.fixture(autouse=True)
    def clean_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_DISABLE_NUMPY", raising=False)
        monkeypatch.delenv("REPRO_DISABLE_SHM", raising=False)

    def test_lists_registered_backends_with_flags(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("cycle", "table-py", "table-numpy", "table-shm"):
            assert name in out
        assert "serves-mid-migration" in out
        assert "dispatcher pick for 'auto':" in out

    def test_engine_off_picks_the_netlist(self, capsys):
        assert main(["backends", "--engine", "off"]) == 0
        assert "dispatcher pick for 'off': cycle" in capsys.readouterr().out

    def test_backend_pin_beats_engine_mode(self, capsys):
        assert main([
            "backends", "--engine", "off", "--backend", "table-py",
        ]) == 0
        out = capsys.readouterr().out
        assert "dispatcher pick for 'table-py': table-py" in out

    def test_env_steers_auto_and_is_reported(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "python")
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "dispatcher pick for 'auto': table-py" in out
        assert "REPRO_BACKEND=python" in out

    def test_disabled_numpy_reason_is_shown(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        assert "REPRO_DISABLE_NUMPY" in out
        assert "dispatcher pick for 'auto': table-py" in out

    def test_forced_unavailable_backend_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_NUMPY", "1")
        assert main(["backends", "--backend", "numpy"]) == 2
        err = capsys.readouterr().err
        assert "unavailable" in err

    def test_disabled_shm_reason_is_shown(self, capsys, monkeypatch):
        # The shm kill-switch mirrors the numpy leg: the listing names
        # the reason, and a forced pick exits 2.
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        assert main(["backends"]) == 0
        assert "REPRO_DISABLE_SHM" in capsys.readouterr().out

    def test_forced_unavailable_shm_exits_2(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_SHM", "1")
        assert main(["backends", "--backend", "table-shm"]) == 2
        err = capsys.readouterr().err
        assert "unavailable" in err
        assert "REPRO_DISABLE_SHM" in err

    def test_unknown_backend_exits_2(self, capsys):
        assert main(["backends", "--backend", "warp-core"]) == 2
        assert "unknown execution backend" in capsys.readouterr().err


class TestOptimize:
    def test_prints_pass_report(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(["optimize", src, tgt, "--method", "jsr"]) == 0
        out = capsys.readouterr().out
        assert "pass pipeline -O2" in out
        assert "collapse-resets" in out
        assert "dead-writes" in out

    def test_show_program(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(
            ["optimize", src, tgt, "--method", "jsr", "--show-program"]
        ) == 0
        out = capsys.readouterr().out
        assert "reconfiguration program" in out

    def test_o0_report(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(
            ["optimize", src, tgt, "--method", "jsr", "--opt-level", "O0"]
        ) == 0
        assert "-O0" in capsys.readouterr().out

    def test_bad_level_is_cli_error(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(
            ["optimize", src, tgt, "--opt-level", "O9"]
        ) == 2
        assert "unknown opt level" in capsys.readouterr().err


class TestOptLevelFlag:
    def test_migrate_o2_no_longer_than_o0(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(["migrate", src, tgt, "--method", "jsr"]) == 0
        plain = capsys.readouterr().out
        assert main(
            ["migrate", src, tgt, "--method", "jsr", "--opt-level", "O2"]
        ) == 0
        optimized = capsys.readouterr().out

        def length(text):
            return int(text.split("|Z|=")[1].split()[0])

        assert length(optimized) <= length(plain)
        assert "opt=O2" in optimized
        assert "hardware-verified=True" in optimized

    def test_synth_accepts_opt_level(self, kiss_files, capsys):
        src, tgt = kiss_files
        assert main(
            ["synth", src, tgt, "--method", "jsr", "--opt-level", "o1"]
        ) == 0
        assert "reconfiguration program" in capsys.readouterr().out

    def test_suite_with_opt_level(self, capsys):
        assert main(
            ["suite", "--method", "jsr", "--opt-level", "O1"]
        ) == 0
        out = capsys.readouterr().out
        assert "suite x jsr -O1" in out
