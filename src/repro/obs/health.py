"""Live health assessment: detectors over the fleet, journal and metrics.

A serving fleet fails in patterns, not in single counters: a *staleness
storm* (every shard suddenly refusing snapshot restores after a
migration bumped table versions), a *fallback spike* (the dispatcher
abandoning the preferred backend across the fleet), *queue saturation*
(backpressure rejecting work faster than shards drain it).  This module
turns those patterns into explicit :class:`Detector` verdicts with
thresholds, and folds them plus per-shard vitals into one
:class:`HealthReport` that ``/healthz`` and ``repro health`` serve.

Severity model: each detector reports ``ok`` / ``degraded`` /
``critical``; the report's overall status is the worst detector's.
``critical`` maps to HTTP 503 at the endpoint, so a load balancer can
act on it without parsing the body.

Detectors read the *journal* (recent typed events) rather than raw
counters where possible — a spike is a rate over a recent window, and
the ring buffer *is* the recent window.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from . import journal as _journal
from .journal import Journal
from .metrics import REGISTRY, MetricsRegistry

__all__ = [
    "Detector",
    "HealthReport",
    "ShardHealth",
    "Thresholds",
    "check",
    "render",
]

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_CRITICAL = "critical"

_SEVERITY = {STATUS_OK: 0, STATUS_DEGRADED: 1, STATUS_CRITICAL: 2}


@dataclass(frozen=True)
class Thresholds:
    """Tunable trip points for the detectors.

    ``*_window_s`` bounds how far back in the journal a detector looks;
    the ``degraded`` count trips the warning, the ``critical`` count the
    page.  Queue saturation is a ratio of depth to capacity.
    """

    stale_window_s: float = 30.0
    stale_degraded: int = 3
    stale_critical: int = 10
    fallback_window_s: float = 30.0
    fallback_degraded: int = 5
    fallback_critical: int = 20
    saturation_window_s: float = 30.0
    saturation_degraded: int = 1
    saturation_critical: int = 10
    queue_degraded_ratio: float = 0.5
    queue_critical_ratio: float = 0.9
    replica_lag_degraded: int = 16
    replica_lag_critical: int = 256


@dataclass
class Detector:
    """One named verdict with the evidence that produced it."""

    name: str
    status: str
    detail: str
    count: int = 0
    window_s: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "status": self.status,
            "detail": self.detail,
            "count": self.count,
            "window_s": self.window_s,
        }


@dataclass
class ShardHealth:
    """Per-shard vitals sampled from the live fleet."""

    shard: str
    queue_depth: int
    queue_capacity: int
    backend: Optional[str]
    batches_ok: int
    symbols_served: int
    rejected: int
    incidents: int
    migrating: bool

    def to_dict(self) -> Dict[str, Any]:
        return {
            "shard": self.shard,
            "queue_depth": self.queue_depth,
            "queue_capacity": self.queue_capacity,
            "backend": self.backend,
            "batches_ok": self.batches_ok,
            "symbols_served": self.symbols_served,
            "rejected": self.rejected,
            "incidents": self.incidents,
            "migrating": self.migrating,
        }


@dataclass
class HealthReport:
    """The whole assessment: overall status, detectors, shard vitals."""

    status: str = STATUS_OK
    detectors: List[Detector] = field(default_factory=list)
    shards: List[ShardHealth] = field(default_factory=list)
    journal_len: int = 0
    journal_dropped: int = 0
    generated_at: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "detectors": [d.to_dict() for d in self.detectors],
            "shards": [s.to_dict() for s in self.shards],
            "journal": {
                "events": self.journal_len,
                "dropped": self.journal_dropped,
            },
            "generated_at": self.generated_at,
        }

    @property
    def http_status(self) -> int:
        """503 when critical, 200 otherwise (degraded still serves)."""
        return 503 if self.status == STATUS_CRITICAL else 200


def _worst(statuses: List[str]) -> str:
    return max(statuses, key=_SEVERITY.__getitem__, default=STATUS_OK)


def _grade(count: int, degraded: int, critical: int) -> str:
    if count >= critical:
        return STATUS_CRITICAL
    if count >= degraded:
        return STATUS_DEGRADED
    return STATUS_OK


def _window_count(
    journal: Journal, event_type: str, window_s: float, now: float
) -> int:
    cutoff = now - window_s
    return sum(
        1 for e in journal.events(type=event_type) if e.ts >= cutoff
    )


def _windowed_detector(
    journal: Journal,
    name: str,
    event_type: str,
    window_s: float,
    degraded: int,
    critical: int,
    what: str,
    now: float,
) -> Detector:
    count = _window_count(journal, event_type, window_s, now)
    status = _grade(count, degraded, critical)
    return Detector(
        name=name,
        status=status,
        detail=f"{count} {what} in the last {window_s:.0f}s "
        f"(degraded>={degraded}, critical>={critical})",
        count=count,
        window_s=window_s,
    )


def _shard_vitals(fleet: Any) -> List[ShardHealth]:
    """Sample per-shard vitals; tolerant of partially built fleets."""
    vitals: List[ShardHealth] = []
    shards = getattr(fleet, "shards", None)
    if shards is None:
        return vitals
    for shard in shards:
        stats = getattr(shard, "stats", None)
        queue = getattr(shard, "queue", None)
        try:
            depth = queue.qsize() if queue is not None else 0
        except NotImplementedError:  # some platforms lack qsize
            depth = 0
        capacity = getattr(queue, "maxsize", 0) or 0
        dispatcher = getattr(shard, "dispatcher", None)
        decision = getattr(dispatcher, "last_decision", None)
        backend = getattr(
            getattr(decision, "backend", None), "name", None
        )
        migrating_fn = getattr(shard, "_migrating", None)
        vitals.append(
            ShardHealth(
                shard=str(getattr(shard, "label", len(vitals))),
                queue_depth=depth,
                queue_capacity=capacity,
                backend=backend,
                batches_ok=getattr(stats, "batches_ok", 0),
                symbols_served=getattr(stats, "symbols_served", 0),
                rejected=getattr(stats, "rejected", 0),
                incidents=getattr(stats, "incidents", 0),
                migrating=bool(migrating_fn()) if migrating_fn else False,
            )
        )
    return vitals


def _replica_detectors(fleet: Any, thresholds: Thresholds) -> List[Detector]:
    """Quorum-at-risk and replica-lag verdicts over the fleet's replica
    groups.  Status reads are queue-free, so this is safe from any
    thread; fleets without replication contribute no detectors."""
    replicas_fn = getattr(fleet, "replicas", None)
    if replicas_fn is None:
        return []
    try:
        statuses = replicas_fn()
    except Exception:  # noqa: BLE001 - health must not throw
        return []
    if not statuses:
        return []
    at_risk: List[str] = []
    lost: List[str] = []
    worst_lag = 0
    for status in statuses.values():
        if not status.quorum_ok:
            lost.append(status.shard)
        elif status.in_sync < status.n:
            at_risk.append(status.shard)
        worst_lag = max(worst_lag, status.lag)
    if lost:
        quorum_status, what = STATUS_CRITICAL, f"quorum lost on {lost}"
    elif at_risk:
        quorum_status = STATUS_DEGRADED
        what = f"out-of-sync replicas on {at_risk} (quorum still held)"
    else:
        quorum_status, what = STATUS_OK, "all replicas in sync"
    detectors = [
        Detector(
            name="replica-quorum",
            status=quorum_status,
            detail=f"{what} across {len(statuses)} replica groups",
            count=len(lost) + len(at_risk),
        ),
        Detector(
            name="replica-lag",
            status=_grade(
                worst_lag,
                thresholds.replica_lag_degraded,
                thresholds.replica_lag_critical,
            ),
            detail=(
                f"worst in-sync replica is {worst_lag} log entries behind "
                f"commit (degraded>={thresholds.replica_lag_degraded}, "
                f"critical>={thresholds.replica_lag_critical})"
            ),
            count=worst_lag,
        ),
    ]
    return detectors


def check(
    fleet: Any = None,
    journal: Optional[Journal] = None,
    registry: Optional[MetricsRegistry] = None,
    thresholds: Optional[Thresholds] = None,
) -> HealthReport:
    """Assess health from the journal plus (optionally) a live fleet.

    ``fleet`` may be ``None`` — the journal-driven detectors still run,
    so the endpoint is useful even before a fleet exists in-process.
    """
    journal = journal if journal is not None else _journal.JOURNAL
    registry = registry if registry is not None else REGISTRY
    thresholds = thresholds or Thresholds()
    now = time.time()

    detectors = [
        _windowed_detector(
            journal,
            "staleness-storm",
            _journal.EXEC_STALE_SNAPSHOT,
            thresholds.stale_window_s,
            thresholds.stale_degraded,
            thresholds.stale_critical,
            "stale-snapshot refusals",
            now,
        ),
        _windowed_detector(
            journal,
            "fallback-spike",
            _journal.EXEC_FALLBACK,
            thresholds.fallback_window_s,
            thresholds.fallback_degraded,
            thresholds.fallback_critical,
            "backend fallbacks",
            now,
        ),
        _windowed_detector(
            journal,
            "queue-saturation",
            _journal.FLEET_SATURATION,
            thresholds.saturation_window_s,
            thresholds.saturation_degraded,
            thresholds.saturation_critical,
            "backpressure rejections",
            now,
        ),
    ]

    if fleet is not None:
        detectors.extend(_replica_detectors(fleet, thresholds))

    shards = _shard_vitals(fleet) if fleet is not None else []
    if shards:
        worst_ratio = 0.0
        for vital in shards:
            if vital.queue_capacity:
                worst_ratio = max(
                    worst_ratio, vital.queue_depth / vital.queue_capacity
                )
        if worst_ratio >= thresholds.queue_critical_ratio:
            status = STATUS_CRITICAL
        elif worst_ratio >= thresholds.queue_degraded_ratio:
            status = STATUS_DEGRADED
        else:
            status = STATUS_OK
        detectors.append(
            Detector(
                name="queue-depth",
                status=status,
                detail=(
                    f"worst shard queue at {worst_ratio:.0%} of capacity "
                    f"(degraded>={thresholds.queue_degraded_ratio:.0%}, "
                    f"critical>={thresholds.queue_critical_ratio:.0%})"
                ),
                count=max(v.queue_depth for v in shards),
            )
        )

    report = HealthReport(
        status=_worst([d.status for d in detectors]),
        detectors=detectors,
        shards=shards,
        journal_len=len(journal),
        journal_dropped=journal.dropped,
        generated_at=now,
    )
    from . import instruments as _instruments

    _instruments.OBS_HEALTH_CHECKS.inc(status=report.status)
    return report


def render(report: HealthReport) -> str:
    """Readable multi-line rendering for the CLI."""
    lines = [f"status: {report.status}"]
    for det in report.detectors:
        lines.append(f"  [{det.status:>8}] {det.name}: {det.detail}")
    if report.shards:
        lines.append("shards:")
        for vital in report.shards:
            lines.append(
                f"  {vital.shard}: queue {vital.queue_depth}/"
                f"{vital.queue_capacity or '-'} backend={vital.backend} "
                f"batches={vital.batches_ok} symbols={vital.symbols_served} "
                f"rejected={vital.rejected} incidents={vital.incidents}"
                + (" migrating" if vital.migrating else "")
            )
    lines.append(
        f"journal: {report.journal_len} events buffered, "
        f"{report.journal_dropped} dropped"
    )
    return "\n".join(lines)
