"""Fleet serving through the batch engine: equivalence, order, fallback.

The pool's contract — outputs, per-shard FIFO future-completion order,
backpressure, fault/quarantine semantics, zero-downtime migration — must
be byte-identical with the engine on (coalesced compiled-table runs) and
off (cycle-accurate per-symbol serving).  These tests pin that, plus the
engine-specific behaviour: coalescing statistics, mid-migration
fallback, and transparent recompilation after faults.
"""

import threading

import pytest

from repro.engine import numpy_available
from repro.fleet import FleetOverloaded, FSMFleet, MigrationScheduler
from repro.workloads.library import ones_detector, sequence_detector
from repro.workloads.suite import traffic_words

ENGINE_MODES_HERE = [
    m for m in ("off", "python", "auto", "numpy")
    if m != "numpy" or numpy_available()
]


def pattern_pair():
    return sequence_detector("1011"), sequence_detector("0110")


@pytest.mark.parametrize("engine", ENGINE_MODES_HERE)
class TestEquivalenceAcrossModes:
    def test_outputs_match_reference_run(self, engine):
        machine = ones_detector()
        fleet = FSMFleet(machine, n_workers=2, engine=engine)
        try:
            served = {index: [] for index in range(fleet.n_workers)}
            for key, word in enumerate(traffic_words(machine, 16, 9, seed=3)):
                shard = fleet.shard_for(key)
                got = fleet.submit(key, word).result(timeout=10)
                served[shard].extend(word)
                assert got == machine.run(served[shard])[-len(word):]
        finally:
            fleet.close()

    def test_probe_counters_track_served_symbols(self, engine):
        machine = ones_detector()
        fleet = FSMFleet(machine, n_workers=1, engine=engine)
        try:
            words = traffic_words(machine, 6, 8, seed=1)
            for key, word in enumerate(words):
                fleet.submit(key, word).result(timeout=10)
            n_symbols = sum(len(w) for w in words)
            assert fleet.shards[0].hardware.cycles == n_symbols
            assert fleet.totals().symbols_served == n_symbols
        finally:
            fleet.close()

    def test_backpressure_identical(self, engine):
        fleet = FSMFleet(
            ones_detector(), n_workers=1, queue_depth=2, engine=engine
        )
        try:
            gate = threading.Event()
            entered = threading.Event()

            def blocker(_hw):
                entered.set()
                gate.wait(timeout=30)
                return None

            from concurrent.futures import Future

            from repro.fleet.worker import _Fault

            fleet.shards[0].queue.put(_Fault(inject=blocker, future=Future()))
            assert entered.wait(timeout=10)
            accepted = 0
            with pytest.raises(FleetOverloaded):
                for _ in range(10):
                    fleet.submit("k", ["1"])
                    accepted += 1
            assert accepted == 2  # exactly the queue bound, engine or not
            gate.set()
        finally:
            fleet.close()


class TestEngineStats:
    def test_engine_mode_serves_through_compiled_tables(self):
        machine = ones_detector()
        fleet = FSMFleet(machine, n_workers=1, engine="python")
        try:
            words = traffic_words(machine, 8, 6, seed=2)
            for key, word in enumerate(words):
                fleet.submit(key, word).result(timeout=10)
            totals = fleet.totals()
            assert totals.engine_batches > 0
            assert totals.engine_symbols == sum(len(w) for w in words)
            assert totals.batches_ok == len(words)
        finally:
            fleet.close()

    def test_engine_off_never_touches_the_engine(self):
        machine = ones_detector()
        fleet = FSMFleet(machine, n_workers=1, engine="off")
        try:
            for key, word in enumerate(traffic_words(machine, 4, 6, seed=2)):
                fleet.submit(key, word).result(timeout=10)
            totals = fleet.totals()
            assert totals.engine_batches == 0
            assert totals.engine_symbols == 0
            assert totals.engine_fallbacks == 0
        finally:
            fleet.close()

    def test_coalescing_merges_queued_batches(self):
        # Stall the worker, queue several batches, release: the engine
        # serves them as one coalesced run (fewer runs than batches)
        # while every future still resolves with its own outputs.
        machine = ones_detector()
        fleet = FSMFleet(
            machine, n_workers=1, queue_depth=64, engine="python"
        )
        try:
            gate = threading.Event()
            entered = threading.Event()

            def blocker(_hw):
                entered.set()
                gate.wait(timeout=30)
                return None

            from concurrent.futures import Future

            from repro.fleet.worker import _Fault

            fleet.shards[0].queue.put(_Fault(inject=blocker, future=Future()))
            assert entered.wait(timeout=10)
            words = traffic_words(machine, 10, 5, seed=4)
            futures = [
                fleet.submit("k", word) for word in words
            ]
            gate.set()
            stream = []
            for future, word in zip(futures, words):
                got = future.result(timeout=10)
                stream.extend(word)
                assert got == machine.run(stream)[-len(word):]
            stats = fleet.shards[0].stats
            assert stats.engine_batches == len(words)
            # all ten batches were already queued: one engine run took
            # them all (bounded only by _MAX_COALESCE)
            assert stats.engine_symbols == sum(len(w) for w in words)
        finally:
            fleet.close()


@pytest.mark.parametrize("engine", ["off", "python"])
class TestFaultSemantics:
    def test_erase_fault_quarantines_and_recovers(self, engine):
        fleet = FSMFleet(
            sequence_detector("1011"), n_workers=1, engine=engine
        )
        try:
            assert fleet.submit("k", list("1011")).result(timeout=10)
            upset = fleet.inject_fault(0, kind="erase", seed=1).result(10)
            assert upset.ram == "F"
            failed = 0
            for key in range(80):
                word = traffic_words(fleet.machine, 1, 8, seed=100 + key)[0]
                try:
                    fleet.submit("k", word).result(timeout=10)
                except Exception:
                    failed += 1
            assert failed >= 1  # the erased entry was eventually hit
            assert fleet.shards[0].stats.incidents >= 1
            # the re-seeded shard serves again (engine recompiled if on)
            word = list("1011")
            assert fleet.submit("k", word).result(timeout=10) is not None
        finally:
            fleet.close()


class TestMigrationUnderBatching:
    """Satellite regression: rolling migration with engine batching on.

    Interleaves submits during the rollout and asserts the pool contract
    end to end — per-shard FIFO future-completion order, zero downtime,
    hardware-verified rollout — exactly as with the engine off.
    """

    @pytest.mark.parametrize("engine", ENGINE_MODES_HERE)
    def test_fifo_order_and_zero_downtime_during_rollout(self, engine):
        source, target = pattern_pair()
        fleet = FSMFleet(
            source, n_workers=4, family=[target], queue_depth=256,
            engine=engine,
        )
        try:
            common = [i for i in source.inputs if i in set(target.inputs)]
            words = traffic_words(source, 80, 12, seed=5, inputs=common)
            holder = {}

            def rollout():
                holder["report"] = MigrationScheduler(
                    fleet, stall_budget=12
                ).rollout(target)

            thread = threading.Thread(target=rollout)
            completion_order = {s: [] for s in range(fleet.n_workers)}
            order_lock = threading.Lock()
            futures = []
            for index, word in enumerate(words):
                if index == 20:
                    thread.start()
                shard = fleet.shard_for(index)
                future = fleet.submit(index, word)

                def on_done(_f, shard=shard, index=index):
                    with order_lock:
                        completion_order[shard].append(index)

                future.add_done_callback(on_done)
                futures.append(future)
            thread.join(timeout=60)
            for future in futures:
                assert future.result(timeout=10) is not None

            # per-shard FIFO: futures completed in submission order even
            # though the worker coalesced runs and fell back mid-rollout
            for shard, seen in completion_order.items():
                assert seen == sorted(seen), (
                    f"shard {shard} completed futures out of order"
                )

            report = holder["report"]
            assert report.verified
            assert report.zero_downtime
            assert report.service_downtime_cycles == 0
            assert fleet.machine == target
            for shard in fleet.shards:
                assert shard.hardware.realises(target)
        finally:
            fleet.close()

    def test_migration_forces_cycle_accurate_fallback(self):
        # While a shard's migration job is in flight the engine must not
        # serve from (stale) compiled tables; fallbacks are counted.
        source, target = pattern_pair()
        fleet = FSMFleet(
            source, n_workers=1, family=[target], queue_depth=256,
            engine="python",
        )
        try:
            common = [i for i in source.inputs if i in set(target.inputs)]
            holder = {}

            def rollout():
                # the smallest feasible budget: one chunk per serving
                # gap, so the job stays in flight across many batches
                holder["report"] = MigrationScheduler(
                    fleet, stall_budget=6
                ).rollout(target)

            words = traffic_words(source, 120, 6, seed=7, inputs=common)
            # preload the queue so batches are always waiting while the
            # migration job is in flight
            futures = [
                fleet.submit(key, word)
                for key, word in enumerate(words[:60])
            ]
            thread = threading.Thread(target=rollout)
            thread.start()
            for key, word in enumerate(words[60:], start=60):
                futures.append(fleet.submit(key, word))
            for future in futures:
                assert future.result(timeout=10) is not None
            thread.join(timeout=60)
            assert holder["report"].verified
            assert fleet.totals().engine_fallbacks > 0
        finally:
            fleet.close()

    def test_traffic_after_rollout_served_by_recompiled_tables(self):
        source, target = pattern_pair()
        fleet = FSMFleet(
            source, n_workers=2, family=[target], engine="python"
        )
        try:
            before = fleet.totals().engine_symbols
            report = MigrationScheduler(fleet, stall_budget=12).rollout(
                target
            )
            assert report.verified
            served = {index: [] for index in range(fleet.n_workers)}
            for key, word in enumerate(
                traffic_words(target, 12, 9, seed=8)
            ):
                shard = fleet.shard_for(key)
                got = fleet.submit(key, word).result(timeout=10)
                served[shard].extend(word)
                assert got == target.run(served[shard])[-len(word):]
            assert fleet.totals().engine_symbols > before
        finally:
            fleet.close()
