"""Unit tests for the TSP view of delta ordering."""

import pytest

from repro.analysis.tsp import (
    TSPSizeError,
    delta_distance_matrix,
    held_karp_path,
    tsp_order,
    tsp_program,
)
from repro.core.delta import delta_transitions
from repro.core.jsr import jsr_program
from repro.workloads.library import fig6_m, fig6_m_prime, ones_detector
from repro.workloads.mutate import workload_pair


class TestDistanceMatrix:
    def test_shape(self, fig6_pair):
        m, mp = fig6_pair
        deltas, matrix, start_costs = delta_distance_matrix(m, mp)
        assert len(matrix) == len(deltas) == 4
        assert all(len(row) == 4 for row in matrix)
        assert len(start_costs) == 4

    def test_costs_in_decoder_range(self, fig6_pair):
        m, mp = fig6_pair
        _deltas, matrix, start_costs = delta_distance_matrix(m, mp)
        values = [v for row in matrix for v in row] + list(start_costs)
        assert all(0 <= v <= 2 for v in values)

    def test_new_state_endpoints_cost_jump(self, fig6_pair):
        m, mp = fig6_pair
        deltas, matrix, _starts = delta_distance_matrix(m, mp)
        # Reaching a delta sourced at the new state S3 always costs 2
        # (reset + temporary) on the static source graph.
        for j, delta in enumerate(deltas):
            if delta.source == "S3":
                assert all(matrix[i][j] == 2 for i in range(len(deltas))
                           if deltas[i].target != "S3")


class TestHeldKarp:
    def test_two_cities(self):
        cost, order = held_karp_path([[0, 1], [5, 0]], [1, 5])
        assert (cost, order) == (2, [0, 1])

    def test_prefers_cheap_chain(self):
        # city 0 -> 1 -> 2 is free; any other order pays.
        matrix = [
            [0, 0, 9],
            [9, 0, 0],
            [9, 9, 0],
        ]
        cost, order = held_karp_path(matrix, [0, 9, 9])
        assert order == [0, 1, 2]
        assert cost == 0

    def test_empty(self):
        assert held_karp_path([], []) == (0, [])

    def test_single_city(self):
        assert held_karp_path([[0]], [7]) == (7, [0])

    def test_size_cap(self):
        n = 14
        matrix = [[1] * n for _ in range(n)]
        with pytest.raises(TSPSizeError):
            held_karp_path(matrix, [0] * n)

    def test_visits_every_city_once(self):
        matrix = [[abs(i - j) for j in range(6)] for i in range(6)]
        _cost, order = held_karp_path(matrix, [0] * 6)
        assert sorted(order) == list(range(6))


class TestTSPProgram:
    def test_order_is_permutation(self, fig6_pair):
        m, mp = fig6_pair
        order = tsp_order(m, mp)
        assert sorted(map(str, order)) == sorted(
            map(str, delta_transitions(m, mp))
        )

    def test_program_valid(self, fig6_pair):
        m, mp = fig6_pair
        program = tsp_program(m, mp)
        assert program.is_valid()
        assert program.method == "tsp"

    def test_trivial_migration(self, detector):
        assert tsp_order(detector, detector) == []
        assert tsp_program(detector, detector).is_valid()

    def test_competitive_with_jsr(self):
        for seed in range(5):
            src, tgt = workload_pair(9, 6, seed=200 + seed)
            assert len(tsp_program(src, tgt)) <= len(jsr_program(src, tgt))

    def test_respects_lower_bound(self):
        for seed in range(5):
            src, tgt = workload_pair(9, 6, seed=300 + seed)
            assert len(tsp_program(src, tgt)) >= 6
