"""Rolling policy upgrades: bounded per-packet stalls.

The live-upgrade scenario (:mod:`repro.protocols.scenario`) stalls
traffic once, for the whole reconfiguration program.  With shallow input
buffers the *maximum single stall* is what matters, not the total.  The
rolling upgrade executes the migration as safe chunks
(:mod:`repro.core.incremental`) in the gaps between packets: every
pause is bounded by one chunk, the parser's table is always a clean
old/new blend, and each packet gets a verdict that is exactly the old
policy's or exactly the new policy's (per-code atomic rollout).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.incremental import IncrementalMigrator
from ..hw.machine import HardwareFSM
from .packet import Packet, ProtocolRevision
from .parser import ACCEPT, REJECT, build_parser


@dataclass
class RollingReport:
    """Outcome of a rolling upgrade run."""

    packets_total: int
    misrouted: int
    stalls: List[int] = field(default_factory=list)
    upgrade_complete_after_packet: Optional[int] = None

    @property
    def max_single_stall(self) -> int:
        return max(self.stalls, default=0)

    @property
    def total_stall_cycles(self) -> int:
        return sum(self.stalls)

    @property
    def clean(self) -> bool:
        """Every packet got a verdict from one of the two policies."""
        return self.misrouted == 0


class RollingUpgradeScenario:
    """Upgrade a parser chunk-by-chunk between packets.

    ``stall_budget`` bounds the cycles stolen per packet gap; it must be
    at least the largest chunk (6 cycles) for progress.
    """

    def __init__(
        self,
        old: ProtocolRevision,
        new: ProtocolRevision,
        stall_budget: int = 6,
    ):
        self.old = old
        self.new = new
        self.old_parser = build_parser(old)
        self.new_parser = build_parser(new)
        self.stall_budget = stall_budget

    def run(self, packets: List[Packet], upgrade_after: int) -> RollingReport:
        """Stream packets; start the rolling upgrade after ``upgrade_after``."""
        if not 0 <= upgrade_after <= len(packets):
            raise ValueError("upgrade_after out of range")
        hardware = HardwareFSM.for_migration(self.old_parser, self.new_parser)
        migrator: Optional[IncrementalMigrator] = None

        stalls: List[int] = []
        misrouted = 0
        complete_after: Optional[int] = None

        for index, packet in enumerate(packets):
            if index >= upgrade_after and migrator is None:
                migrator = IncrementalMigrator(
                    hardware, self.old_parser, self.new_parser
                )
            if migrator is not None and not migrator.done:
                used = migrator.stall(self.stall_budget)
                if used:
                    stalls.append(used)
                if migrator.done and complete_after is None:
                    complete_after = index

            outputs = [hardware.step(bit) for bit in packet.bits()]
            verdict = outputs[-1]
            if verdict not in (ACCEPT, REJECT):
                misrouted += 1
                continue
            accepted = verdict == ACCEPT
            old_says = self.old.classify(packet)
            new_says = self.new.classify(packet)
            if accepted not in (old_says, new_says):
                misrouted += 1

        return RollingReport(
            packets_total=len(packets),
            misrouted=misrouted,
            stalls=stalls,
            upgrade_complete_after_packet=complete_after,
        )
