"""The FleetClient serving handle returned by ``api.serve``.

The redesign's contract: a curated surface (sync submit, async submit,
stream sessions, live migration, health) on equal footing, the raw
fleet reachable undeprecated via ``client.fleet``, and every *other*
old raw-fleet attribute still working behind a ``DeprecationWarning``.
"""

import asyncio
import warnings

import pytest

from repro import api
from repro.api import Options
from repro.fleet import FleetClient, FSMFleet, StreamSession
from repro.workloads.library import ones_detector, sequence_detector


@pytest.fixture
def client():
    with api.serve(ones_detector(), n_workers=2) as handle:
        yield handle


class TestServeReturnsTheHandle:
    def test_serve_returns_a_fleet_client(self, client):
        assert isinstance(client, FleetClient)
        assert isinstance(client.fleet, FSMFleet)

    def test_options_pick_the_fleet_mode(self):
        with api.serve(
            ones_detector(), n_workers=1,
            options=Options(fleet_mode="process"),
        ) as client:
            assert client.fleet_mode == "process"

    def test_explicit_kwarg_overrides_options(self):
        # fleet_mode passed through fleet_kwargs wins over the Options
        # default, preserving the old call sites.
        with api.serve(
            ones_detector(), n_workers=1, fleet_mode="thread",
        ) as client:
            assert client.fleet_mode == "thread"

    def test_bad_knobs_are_rejected_at_options(self):
        with pytest.raises(ValueError):
            Options(fleet_mode="fiber")
        with pytest.raises(ValueError):
            Options(ingest="hope")

    def test_ingest_option_reaches_the_client(self):
        with api.serve(
            ones_detector(), n_workers=1,
            options=Options(ingest="reject"),
        ) as client:
            assert client.ingest == "reject"


class TestServingSurface:
    def test_sync_submit_contract_unchanged(self, client):
        machine = ones_detector()
        word = list("0110")
        assert client.submit("k", word).result(timeout=10) == \
            machine.run(word)

    def test_submit_async_rides_the_bridge(self, client):
        machine = ones_detector()
        word = list("1011")

        async def run():
            return await client.submit_async("k", word)

        assert asyncio.run(run()) == machine.run(word)

    def test_client_ingest_policy_applies_to_async(self):
        from repro.fleet import FleetOverloaded
        from repro.fleet.worker import _Fault
        from concurrent.futures import Future
        import threading

        with api.serve(
            ones_detector(), n_workers=1, queue_depth=2,
            options=Options(ingest="reject"),
        ) as client:
            gate = threading.Event()
            entered = threading.Event()

            def blocker(_hw):
                entered.set()
                gate.wait(timeout=30)
                return None

            client.fleet.shards[0].queue.put(
                _Fault(inject=blocker, future=Future())
            )
            assert entered.wait(timeout=10)
            for _ in range(2):
                client.submit("k", ["1"])

            async def run():
                with pytest.raises(FleetOverloaded):
                    await client.submit_async("k", ["1"])

            asyncio.run(run())
            gate.set()

    def test_stream_session_binds_the_addressing(self, client):
        machine = ones_detector()
        lane = client.stream_session("conn-1", session="alpha")
        assert isinstance(lane, StreamSession)
        first, second = list("101"), list("110")
        a = lane.submit(first).result(timeout=10)
        b = lane.submit(second).result(timeout=10)
        # One state chain: the concatenation equals one reference run.
        assert a + b == machine.run(first + second)

    def test_stream_session_async(self, client):
        machine = ones_detector()
        lane = client.stream_session("conn-2", session="beta")

        async def run():
            return await lane.submit_async(list("0110"))

        assert asyncio.run(run()) == machine.run(list("0110"))

    def test_migrate_live_rolls_the_fleet_over(self):
        source = sequence_detector("1011")
        target = sequence_detector("0110")
        with api.serve(source, family=[target], n_workers=2) as client:
            report = client.migrate_live(target)
            assert report.verified
            assert client.machine == target  # first-class passthrough

    def test_health_reports(self, client):
        report = client.health()
        assert report.status in ("ok", "degraded", "critical")


class TestDeprecationShim:
    def test_first_class_attributes_do_not_warn(self, client):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            assert isinstance(client.engine, str)
            assert client.n_workers == 2
            assert client.fleet_mode == "thread"
            assert client.machine is not None
            assert client.name

    def test_raw_fleet_attributes_warn_but_work(self, client):
        with pytest.warns(DeprecationWarning, match="shard_for"):
            shard = client.shard_for("k")
        assert shard == client.fleet.shard_for("k")

    def test_escape_hatch_is_silent(self, client):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            client.fleet.shard_for("k")

    def test_curated_surface_is_silent(self, client):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            client.submit("k", ["1"]).result(timeout=10)
            client.totals()
            client.stats()
            client.health()

    def test_unknown_attribute_still_raises(self, client):
        with pytest.raises(AttributeError):
            client.definitely_not_an_attribute


class TestLifecycle:
    def test_context_manager_closes_the_fleet(self):
        from repro.fleet import FleetClosed

        with api.serve(ones_detector(), n_workers=1) as client:
            client.submit("k", ["1"]).result(timeout=10)
        with pytest.raises(FleetClosed):
            client.fleet.submit("k", ["1"])

    def test_drain_flushes_queued_batches(self, client):
        futures = [client.submit("k", ["1"]) for _ in range(8)]
        client.drain()
        assert all(f.done() for f in futures)
