"""Controlled target-machine derivation for migration workloads.

The delta-set size ``|T_d|`` is the independent variable of the paper's
Table 2.  :func:`mutate_target` derives a target machine from a source by
rewriting exactly the requested number of table entries (each rewrite is
guaranteed to actually change the entry, so ``|T_d|`` is exact);
:func:`grow_target` additionally introduces fresh states, reproducing the
Fig. 6 style of migration into a *larger* machine.
"""

from __future__ import annotations

import random
from typing import Optional

from ..core.delta import delta_count
from ..core.fsm import FSM, Transition


def mutate_target(
    source: FSM,
    n_deltas: int,
    seed: int = 0,
    outputs_only: bool = False,
    name: Optional[str] = None,
) -> FSM:
    """A target machine differing from ``source`` in exactly ``n_deltas`` entries.

    Each mutated entry gets a new next-state and/or output drawn at
    random but constrained to differ from the original pair, so the
    delta set of the migration ``source → target`` has size exactly
    ``n_deltas``.  With ``outputs_only`` only ``G`` changes, exercising
    pure output-function reconfiguration (the paper's ``H_g``-only case).

    >>> from repro.workloads.random_fsm import random_fsm
    >>> src = random_fsm(n_states=8, seed=1)
    >>> from repro.core.delta import delta_count
    >>> delta_count(src, mutate_target(src, 5, seed=2))
    5
    """
    capacity = len(source.inputs) * len(source.states)
    if not 0 <= n_deltas <= capacity:
        raise ValueError(
            f"n_deltas must be within [0, {capacity}] for this machine"
        )
    if outputs_only and len(source.outputs) < 2:
        raise ValueError("outputs_only mutation needs at least two output symbols")
    if not outputs_only and len(source.states) < 2 and len(source.outputs) < 2:
        raise ValueError("machine too degenerate to mutate")

    rng = random.Random(f"mutate/{seed}/{n_deltas}/{outputs_only}")
    entries = [(i, s) for i in source.inputs for s in source.states]
    chosen = rng.sample(entries, n_deltas)
    chosen_set = set(chosen)

    transitions = []
    for trans in source.transitions():
        if trans.entry not in chosen_set:
            transitions.append(trans)
            continue
        target_state, output = trans.target, trans.output
        while (target_state, output) == (trans.target, trans.output):
            if not outputs_only and len(source.states) > 1 and rng.random() < 0.6:
                target_state = rng.choice(source.states)
            if len(source.outputs) > 1 and (outputs_only or rng.random() < 0.6):
                output = rng.choice(source.outputs)
        transitions.append(Transition(trans.input, trans.source, target_state, output))

    return FSM(
        source.inputs,
        source.outputs,
        source.states,
        source.reset_state,
        transitions,
        name=name or f"{source.name}_mut{n_deltas}",
    )


def grow_target(
    source: FSM,
    n_new_states: int,
    seed: int = 0,
    name: Optional[str] = None,
) -> FSM:
    """A target machine with ``n_new_states`` additional states.

    Mirrors the Fig. 6 migration shape: fresh states are spliced into the
    machine by redirecting random existing entries into them and wiring
    their own rows back into the old state set.  Every entry that sources
    a new state is automatically a delta transition (Def. 4.2).
    """
    if n_new_states < 1:
        raise ValueError("need at least one new state")
    rng = random.Random(f"grow/{seed}/{n_new_states}")
    new_states = [f"n{k}" for k in range(n_new_states)]
    states = list(source.states) + new_states
    old_states = list(source.states)

    table = dict(source.table)
    # Redirect one existing entry into each new state so it is reachable.
    entries = [(i, s) for i in source.inputs for s in old_states]
    for new_state, entry in zip(new_states, rng.sample(entries, n_new_states)):
        _, output = table[entry]
        table[entry] = (new_state, rng.choice(source.outputs))
    # Give every new state a full row, wired back into the whole machine.
    for new_state in new_states:
        for i in source.inputs:
            table[(i, new_state)] = (
                rng.choice(states),
                rng.choice(source.outputs),
            )

    return FSM(
        source.inputs,
        source.outputs,
        states,
        source.reset_state,
        table,
        name=name or f"{source.name}_grow{n_new_states}",
    )


def workload_pair(
    n_states: int,
    n_deltas: int,
    seed: int = 0,
    n_inputs: int = 2,
    n_outputs: int = 2,
):
    """Convenience: a seeded (source, target) pair with exact ``|T_d|``.

    This is the Table 2 workload unit: one random machine plus a target
    differing in exactly ``n_deltas`` entries.
    """
    from .random_fsm import random_fsm

    source = random_fsm(
        n_states=n_states, n_inputs=n_inputs, n_outputs=n_outputs, seed=seed
    )
    target = mutate_target(source, n_deltas, seed=seed + 1)
    assert delta_count(source, target) == n_deltas
    return source, target
