"""Unit tests for the greedy (nearest-neighbour / 2-opt) baselines."""

import pytest

from repro.core.decode import decoded_length
from repro.core.delta import delta_transitions
from repro.core.greedy import (
    connection_cost,
    greedy_program,
    nearest_neighbour_order,
    two_opt_order,
)
from repro.core.jsr import jsr_program
from repro.workloads.library import fig6_m, fig6_m_prime
from repro.workloads.mutate import workload_pair


class TestConnectionCost:
    def test_short_distances_cost_themselves(self):
        assert connection_cost(0) == 0
        assert connection_cost(1) == 1

    def test_long_distances_cost_reset_plus_jump(self):
        assert connection_cost(2) == 2
        assert connection_cost(10) == 2

    def test_unreachable_costs_reset_plus_jump(self):
        assert connection_cost(None) == 2


class TestNearestNeighbour:
    def test_order_is_permutation(self, fig6_pair):
        m, mp = fig6_pair
        order = nearest_neighbour_order(m, mp)
        assert sorted(map(str, order)) == sorted(
            map(str, delta_transitions(m, mp))
        )

    def test_empty_delta_set(self, detector):
        assert nearest_neighbour_order(detector, detector) == []

    def test_deterministic(self, random_pair):
        src, tgt = random_pair
        assert nearest_neighbour_order(src, tgt) == nearest_neighbour_order(
            src, tgt
        )

    def test_prefers_nearby_delta_first(self, fig6_pair):
        m, mp = fig6_pair
        order = nearest_neighbour_order(m, mp)
        # From the reset state S0, the S1-sourced delta is one hop away,
        # while S2 is two and S3 unreachable in M.
        assert order[0].source == "S1"


class TestTwoOpt:
    def test_never_worse_than_initial(self):
        for seed in range(5):
            src, tgt = workload_pair(8, 6, seed=seed)
            initial = nearest_neighbour_order(src, tgt)
            improved = two_opt_order(src, tgt, initial)
            assert decoded_length(src, tgt, improved) <= decoded_length(
                src, tgt, initial
            )

    def test_short_orders_returned_unchanged(self, fig7_pair):
        m, mp = fig7_pair
        order = delta_transitions(m, mp)
        assert two_opt_order(m, mp, order) == order

    def test_result_is_permutation(self, random_pair):
        src, tgt = random_pair
        improved = two_opt_order(src, tgt)
        assert sorted(map(str, improved)) == sorted(
            map(str, delta_transitions(src, tgt))
        )


class TestGreedyProgram:
    def test_valid_on_paper_pair(self, fig6_pair):
        m, mp = fig6_pair
        program = greedy_program(m, mp)
        assert program.is_valid()
        assert program.method == "greedy+2opt"

    def test_unimproved_variant(self, fig6_pair):
        m, mp = fig6_pair
        program = greedy_program(m, mp, improve=False)
        assert program.is_valid()
        assert program.method == "greedy"

    def test_beats_or_ties_jsr_on_random_workloads(self):
        wins = 0
        for seed in range(6):
            src, tgt = workload_pair(8, 6, seed=seed)
            greedy_len = len(greedy_program(src, tgt))
            jsr_len = len(jsr_program(src, tgt))
            assert greedy_len <= jsr_len
            wins += greedy_len < jsr_len
        assert wins >= 4  # strictly shorter on most instances

    def test_respects_lower_bound(self):
        for seed in range(6):
            src, tgt = workload_pair(8, 6, seed=seed)
            deltas = delta_transitions(src, tgt)
            assert len(greedy_program(src, tgt)) >= len(deltas)
