"""``repro.fleet`` — concurrent FSM serving with zero-downtime migration.

The serving layer over the paper's datapath: a sharded pool of
cycle-accurate machines behind worker threads (:mod:`.pool`), a rolling
migration scheduler that reconfigures the fleet gradually under live
traffic (:mod:`.migration`), and a thread-safe plan cache so shards
never duplicate synthesis work (:mod:`.plancache`).
"""

from .migration import (
    InfeasiblePlanError,
    MigrationScheduler,
    PlanAnalysis,
    RolloutReport,
    ShardRollout,
)
from .plancache import PlanCache, order_chunks
from .pool import FleetClosed, FleetError, FleetOverloaded, FSMFleet
from .worker import MigrationJob, ShardStats, ShardWorker

__all__ = [
    "FSMFleet",
    "FleetClosed",
    "FleetError",
    "FleetOverloaded",
    "InfeasiblePlanError",
    "MigrationJob",
    "MigrationScheduler",
    "PlanAnalysis",
    "PlanCache",
    "RolloutReport",
    "ShardRollout",
    "ShardStats",
    "ShardWorker",
    "order_chunks",
]
