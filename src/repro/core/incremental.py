"""Incremental migration: bounded-stall reconfiguration under live traffic.

A monolithic reconfiguration program stalls the machine for its whole
length.  Short for one migration — but a system that must bound *every*
individual stall (a packet parser with shallow input buffers, a
controller with a deadline) needs the migration split into chunks it can
interleave with normal operation.

Arbitrary splitting is unsafe: the JSR/EA programs route through
*temporary transitions*, so between two arbitrary steps the table may
contain an entry that belongs to neither machine, and traffic crossing
it would be misrouted.  The **safe chunking** here guarantees a *blend
invariant*: between chunks, every table entry equals either the source
machine's value or the target machine's value.  Traffic between chunks
therefore always sees well-defined behaviour — each entry is atomically
either pre- or post-migration (an "eventually consistent" rollout, in
networking terms).

Each chunk handles one delta transition in six cycles::

    reset ; temporary-jump ; delta-write ; reset ; home-write ; reset

The home entry ``(i0, S0')`` is re-written to its *target* value at the
end of every chunk, which restores the invariant the temporary jump
broke.  The price of bounded stalls is therefore roughly ``6·|T_d|``
cycles total versus JSR's ``3·(|T_d|+1)`` — quantified by the
``benchmarks/test_incremental.py`` harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .builder import ProgramBuilder
from .delta import delta_transitions
from .fsm import FSM, Input, State, Transition
from .program import Program, Step


@dataclass(frozen=True)
class Chunk:
    """One bounded unit of an incremental migration."""

    steps: Tuple[Step, ...]
    delta: Optional[Transition]

    def __len__(self) -> int:
        return len(self.steps)


def incremental_chunks(
    source: FSM, target: FSM, i0: Optional[Input] = None
) -> List[Chunk]:
    """Safe chunks whose concatenation migrates ``source`` → ``target``.

    Every chunk starts with a reset (position independence: it can run
    no matter where traffic left the machine) and ends having restored
    the blend invariant.  The home entry ``(i0, S0')`` is written to its
    *target* value, so if it is itself a delta transition it is simply
    migrated early.
    """
    if i0 is None:
        i0 = target.inputs[0]
    elif i0 not in target.inputs:
        raise ValueError(f"i0 = {i0!r} is not an input symbol of the target")
    s0 = target.reset_state
    home = Transition(
        i0, s0, target.next_state(i0, s0), target.output(i0, s0)
    )

    # One shared builder emits the whole chunk sequence in order — every
    # step is physically validated at emission — and chunk boundaries are
    # cut out of the validated stream afterwards.
    builder = ProgramBuilder(source, target, method="incremental")
    chunks: List[Chunk] = []
    mark = 0

    def cut(delta: Optional[Transition]) -> None:
        nonlocal mark
        chunks.append(Chunk(steps=builder.steps[mark:], delta=delta))
        mark = len(builder)

    for delta in delta_transitions(source, target):
        if delta.entry == home.entry:
            # Migrating the home entry is a 3-cycle chunk of its own.
            builder.reset()
            builder.write_delta(home)
            builder.reset()
            cut(delta)
            continue
        jump = Transition(i0, s0, delta.source, target.output(i0, s0))
        builder.reset()
        builder.write_temporary(jump)
        builder.write_delta(delta)
        builder.reset()
        builder.write_repair(home)
        builder.reset()
        cut(delta)
    if not any(c.delta and c.delta.entry == home.entry for c in chunks):
        # The home entry was not a delta, but the repair writes may have
        # pre-dated any chunk; ensure at least one final chunk exists to
        # leave the entry at its (identical) target value.  When there
        # are no deltas at all the migration is a single trivial chunk.
        if not chunks:
            builder.reset()
            builder.write_repair(home)
            builder.reset()
            cut(None)
    return chunks


def chunks_to_program(
    chunks: List[Chunk], source: FSM, target: FSM
) -> Program:
    """Concatenate chunks into one replayable program (for validation)."""
    steps: List[Step] = []
    for chunk in chunks:
        steps.extend(chunk.steps)
    return Program(steps, source, target, method="incremental")


def is_blend(
    table: Dict[Tuple[Input, State], Optional[Tuple[State, object]]],
    source: FSM,
    target: FSM,
) -> bool:
    """The blend invariant: every entry is a source or a target value.

    Entries outside both machines' domains must be unconfigured.
    """
    src_table = source.table
    tgt_table = target.table
    for key, value in table.items():
        allowed = {src_table.get(key), tgt_table.get(key)}
        allowed.discard(None)
        if value is None:
            if allowed and key in tgt_table:
                # an unconfigured target-domain entry is fine only while
                # its row has not been migrated; both source and target
                # values are acceptable, absence is too (pre-write).
                continue
            continue
        if value not in allowed:
            return False
    return True


@dataclass
class MigrationProgress:
    """Progress of an incremental migration on live hardware."""

    chunks_total: int
    chunks_done: int = 0
    cycles_spent: int = 0
    max_single_stall: int = 0

    @property
    def done(self) -> bool:
        return self.chunks_done >= self.chunks_total


class IncrementalMigrator:
    """Drives an incremental migration on a live datapath.

    Call :meth:`stall` whenever the surrounding system can afford a
    bounded pause (an idle gap, a packet boundary); each call executes
    whole chunks until the budget would be exceeded, then returns
    control.  Between calls the datapath is fully operational under the
    blend invariant.
    """

    def __init__(self, hardware, source: FSM, target: FSM,
                 i0: Optional[Input] = None,
                 chunks: Optional[List[Chunk]] = None):
        self.hardware = hardware
        self.source = source
        self.target = target
        # Precomputed chunks (e.g. from a plan cache, possibly reordered
        # for traffic safety) are accepted but still validated below —
        # an unsound reordering or stale cache entry fails fast here.
        self.chunks = (
            list(chunks) if chunks is not None
            else incremental_chunks(source, target, i0=i0)
        )
        self.progress = MigrationProgress(chunks_total=len(self.chunks))
        self._validated = chunks_to_program(self.chunks, source, target)
        if not self._validated.is_valid():
            raise RuntimeError("chunk concatenation failed validation")
        self.hardware.retarget_reset(target.reset_state)

    @property
    def done(self) -> bool:
        return self.progress.done

    def next_chunk_cost(self) -> Optional[int]:
        """Cycles the next chunk needs, or None when finished."""
        if self.done:
            return None
        return len(self.chunks[self.progress.chunks_done])

    def stall(self, budget_cycles: int) -> int:
        """Execute whole chunks within ``budget_cycles``; returns cycles used.

        A chunk is never split; if the budget cannot fit even one chunk,
        nothing happens and 0 is returned (the caller should offer a
        larger window at least once).
        """
        used = 0
        while not self.done:
            cost = self.next_chunk_cost()
            if cost is None or used + cost > budget_cycles:
                break
            chunk = self.chunks[self.progress.chunks_done]
            sub = Program(
                chunk.steps, self.source, self.target, method="chunk"
            )
            for row in sub.to_sequence():
                self.hardware.apply_row(row)
            used += cost
            self.progress.chunks_done += 1
            self.progress.cycles_spent += cost
            self.progress.max_single_stall = max(
                self.progress.max_single_stall, cost
            )
        return used
