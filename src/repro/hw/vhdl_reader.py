"""Parse the library's generated behavioural VHDL back into an FSM.

Closing the HDL loop without a VHDL simulator: the behavioural backend
(:func:`repro.hw.vhdl.generate_fsm_vhdl`) emits a fixed, disciplined
subset of VHDL-93 (state enumeration, one clocked process, nested case
statements).  This module parses exactly that subset back into a
:class:`~repro.core.fsm.FSM`, so the test suite can assert

    parse(generate(machine)) ≡ machine

for arbitrary machines — a round-trip proof that the generator encodes
the transition/output functions faithfully.  It is *not* a general VHDL
front end; anything outside the generated subset raises
:class:`VhdlParseError`.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional

from ..core.fsm import FSM, Transition

_ENTITY = re.compile(r"entity\s+(\w+)\s+is", re.IGNORECASE)
_PORT = re.compile(
    r"(\w+)\s*:\s*(in|out)\s+std_logic_vector\((\d+)\s+downto\s+0\)",
    re.IGNORECASE,
)
_STATE_TYPE = re.compile(
    r"type\s+state_type\s+is\s+\(([^)]*)\)\s*;", re.IGNORECASE
)
_RESET_STATE = re.compile(
    r"signal\s+state\s*:\s*state_type\s*:=\s*(\w+)\s*;", re.IGNORECASE
)
_WHEN_STATE = re.compile(r"when\s+(\w+)\s*=>", re.IGNORECASE)
_WHEN_INPUT = re.compile(r'when\s+"([01]+)"\s*=>', re.IGNORECASE)
_ASSIGN_STATE = re.compile(r"state\s*<=\s*(\w+)\s*;", re.IGNORECASE)
_ASSIGN_OUT = re.compile(r'dout\s*<=\s*"([01]+)"\s*;', re.IGNORECASE)


class VhdlParseError(ValueError):
    """The text is outside the generated behavioural subset."""


def parse_fsm_vhdl(text: str) -> FSM:
    """Rebuild the FSM encoded by a generated behavioural architecture.

    Input/output symbols come back as the bit-string literals of the
    listing; state names are the enumeration literals.  The returned
    machine is behaviourally identical to the generator's input up to
    that renaming (exactly identical when the input already used
    bit-string symbols, as KISS-loaded machines do).

    >>> from repro.hw.vhdl import generate_fsm_vhdl
    >>> from repro.workloads.library import ones_detector
    >>> machine = parse_fsm_vhdl(generate_fsm_vhdl(ones_detector()))
    >>> machine.run(list("110")) == ones_detector().run(list("110"))
    True
    """
    entity = _ENTITY.search(text)
    if not entity:
        raise VhdlParseError("no entity declaration found")

    widths: Dict[str, int] = {}
    for name, _direction, msb in _PORT.findall(text):
        widths[name.lower()] = int(msb) + 1
    if "din" not in widths or "dout" not in widths:
        raise VhdlParseError("din/dout ports missing")

    state_match = _STATE_TYPE.search(text)
    if not state_match:
        raise VhdlParseError("state_type enumeration missing")
    states = [s.strip() for s in state_match.group(1).split(",") if s.strip()]
    if not states:
        raise VhdlParseError("empty state enumeration")

    reset_match = _RESET_STATE.search(text)
    if not reset_match:
        raise VhdlParseError("state signal with reset default missing")
    reset_state = reset_match.group(1)
    if reset_state not in states:
        raise VhdlParseError(f"reset state {reset_state!r} not enumerated")

    # Walk the nested case structure line by line.
    transitions: List[Transition] = []
    current_state: Optional[str] = None
    current_input: Optional[str] = None
    pending_target: Optional[str] = None
    inputs_seen: List[str] = []
    outputs_seen: List[str] = []
    in_reset_arm = False

    for raw in text.splitlines():
        line = raw.strip()
        if line.startswith("if rst"):
            in_reset_arm = True
            continue
        if line.startswith("else"):
            in_reset_arm = False
            continue
        state_arm = _WHEN_STATE.match(line)
        if state_arm and state_arm.group(1) in states:
            current_state = state_arm.group(1)
            current_input = None
            continue
        input_arm = _WHEN_INPUT.match(line)
        if input_arm:
            current_input = input_arm.group(1)
            if len(current_input) != widths["din"]:
                raise VhdlParseError(
                    f"input literal {current_input!r} width mismatch"
                )
            if current_input not in inputs_seen:
                inputs_seen.append(current_input)
            pending_target = None
            continue
        if line.lower().startswith("when others"):
            current_input = None
            continue
        if in_reset_arm or current_state is None or current_input is None:
            continue
        assign_state = _ASSIGN_STATE.match(line)
        if assign_state:
            pending_target = assign_state.group(1)
            if pending_target not in states:
                raise VhdlParseError(
                    f"assignment to unknown state {pending_target!r}"
                )
            continue
        assign_out = _ASSIGN_OUT.match(line)
        if assign_out:
            output = assign_out.group(1)
            if len(output) != widths["dout"]:
                raise VhdlParseError(f"output literal {output!r} width "
                                     "mismatch")
            if pending_target is None:
                raise VhdlParseError(
                    "dout assignment before state assignment"
                )
            if output not in outputs_seen:
                outputs_seen.append(output)
            transitions.append(
                Transition(current_input, current_state, pending_target,
                           output)
            )
            pending_target = None

    if not transitions:
        raise VhdlParseError("no transitions recovered from the case arms")

    # Stable symbol order: numeric order of the bit-string literals.
    inputs_seen.sort(key=lambda b: int(b, 2))
    outputs_seen.sort(key=lambda b: int(b, 2))
    return FSM(
        inputs_seen,
        outputs_seen,
        states,
        reset_state,
        transitions,
        name=entity.group(1),
    )
