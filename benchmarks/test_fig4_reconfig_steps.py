"""F4 — Fig. 4: the transitions taken *during* reconfiguration.

Paper artifact: Fig. 4 draws the four intermediate machines 1) → 4) the
Example 2.1 detector passes through while the Table 1 sequence executes —
one table entry changes per panel.  We replay the sequence cycle by cycle
and snapshot the live table after every cycle, verifying that

* exactly one entry changes per cycle (the gradual-reconfiguration
  physics), and
* the visited state sequence is the paper's S0 → S1 → S1 → S0 → S0 walk.
"""

from repro.analysis.tables import format_table
from repro.core.reconfigurable import ReconfigurableFSM, ReconfiguratorEntry
from repro.workloads.library import ones_detector, table1_target

ROWS = [
    ("r1", "1", "S1", "0"),
    ("r2", "1", "S1", "0"),
    ("r3", "0", "S0", "0"),
    ("r4", "0", "S0", "1"),
]


def replay_with_snapshots():
    machine = ReconfigurableFSM(
        ones_detector(),
        {n: ReconfiguratorEntry(hi=hi, hf=hf, hg=hg) for n, hi, hf, hg in ROWS},
    )
    panels = [dict(machine.table)]
    states = [machine.state]
    for name, *_ in ROWS:
        machine.step("0", name)
        panels.append(dict(machine.table))
        states.append(machine.state)
    return machine, panels, states


def test_fig4_gradual_panels(benchmark, record_table):
    machine, panels, states = benchmark(replay_with_snapshots)

    # Panel 1) is the given machine, panel 4) the reconfigured machine.
    assert panels[0] == ones_detector().table
    assert machine.realises(table1_target())

    # One entry (at most) differs between consecutive panels — gradual.
    changes = []
    for before, after in zip(panels, panels[1:]):
        diff = [key for key in after if after[key] != before[key]]
        assert len(diff) <= 1
        changes.append(diff[0] if diff else None)

    # The walk of Fig. 4 / Table 1.
    assert states == ["S0", "S1", "S1", "S0", "S0"]

    rows = []
    for idx, (name, *_row) in enumerate(ROWS):
        rows.append(
            {
                "panel": f"{idx + 1})",
                "cycle": name,
                "state": states[idx + 1],
                "entry rewritten": (
                    f"({changes[idx][0]}, {changes[idx][1]})"
                    if changes[idx]
                    else "(none: value unchanged)"
                ),
            }
        )
    record_table(
        "fig4_reconfig_steps",
        format_table(
            rows,
            title="Fig. 4 — transitions taken during reconfiguration "
                  "(one entry per cycle)",
        ),
    )
