"""Replication overhead and replica-replacement benchmark.

Measures the cost of the replica plane and appends a ``"replication"``
section to ``BENCH_fleet_throughput.json`` (read-modify-write: the
fleet benchmark's sections are preserved):

* **n=1 vs n=3 overhead** — the same thread-mode traffic served with
  no replication and with a 3-replica group per shard, at
  ``link_latency_s=0`` so the follower fast-forward cost is *not*
  hidden behind modelled device time.  Followers apply committed
  serves by state fast-forward, not re-execution, so the gate is
  tight: n=3 must stay within 30% of n=1 throughput.  The gate only
  asserts on hosts with enough CPUs — below that the measurement is
  recorded with the reason the gate was skipped.
* **replacement under load** — a process-mode fleet keeps serving
  while one replica of a loaded group is torn down and respawned
  (``replace_replica``); the benchmark records the wall-clock time to
  a fully in-sync group and asserts no future was lost.

Run with ``make bench-replica``.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time

from repro.fleet import FSMFleet
from repro.replica import ReplicaConfig
from repro.workloads.suite import suite_pair, traffic_words

WORKLOAD = "ctrl/pattern-1011-to-0110"
REQUESTS = 160
BATCH = 64
SEED = 0
#: n=3 may cost at most 30% of n=1 throughput at link_latency_s=0.
OVERHEAD_GATE = 1.30
#: CPUs the overhead gate needs before it may assert: on a saturated
#: single-core host scheduling noise swamps the ~µs follower cost.
GATE_CPUS = 4

REPLACE_REQUESTS = 48
REPLACE_BATCH = 256


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _run_traffic(replication) -> dict:
    source, target = suite_pair(WORKLOAD)
    words = traffic_words(source, REQUESTS, BATCH, seed=SEED)
    fleet = FSMFleet(
        source,
        n_workers=2,
        family=[target],
        queue_depth=max(16, REQUESTS),
        link_latency_s=0.0,
        name=f"bench-replica-n{replication.n if replication else 1}",
        replication=replication,
    )
    # Warm both shards (first serve compiles the plan).
    for index in range(4):
        fleet.submit(f"warm-{index}", words[0][:8]).result(timeout=60)
    started = time.perf_counter()
    futures = [
        fleet.submit(index, word) for index, word in enumerate(words)
    ]
    for future in futures:
        future.result(timeout=60)
    elapsed = time.perf_counter() - started
    totals = fleet.totals()
    groups = fleet.replicas()
    fleet.close()
    assert totals.incidents == 0
    assert all(g.quorum_ok for g in groups.values())
    return {
        "replicas": replication.n if replication else 1,
        "requests": REQUESTS,
        "batch": BATCH,
        "link_latency_s": 0.0,
        "elapsed_s": round(elapsed, 4),
        "steps_per_sec": round(totals.symbols_served / elapsed, 1),
    }


def _run_replacement() -> dict:
    source, target = suite_pair(WORKLOAD)
    words = traffic_words(source, REPLACE_REQUESTS, REPLACE_BATCH, seed=SEED)
    fleet = FSMFleet(
        source,
        n_workers=2,
        family=[target],
        queue_depth=max(16, REPLACE_REQUESTS),
        name="bench-replica-replace",
        fleet_mode="process",
        replication=ReplicaConfig(n=3),
    )
    for index in range(4):
        fleet.submit(f"warm-{index}", words[0][:8]).result(timeout=60)
    futures = [
        fleet.submit(index, word) for index, word in enumerate(words)
    ]
    started = time.perf_counter()
    status = fleet.replace_replica(0, "r1").result(timeout=60)
    replace_s = time.perf_counter() - started
    lost = sum(1 for f in futures if f.exception(timeout=120) is not None)
    totals = fleet.totals()
    fleet.close()
    assert lost == 0, f"{lost} futures lost during replacement"
    assert status.in_sync == status.n == 3
    return {
        "requests_in_flight": REPLACE_REQUESTS,
        "batch": REPLACE_BATCH,
        "replace_s": round(replace_s, 4),
        "group_in_sync_after": status.in_sync,
        "futures_lost": lost,
        "batches_ok": totals.batches_ok,
    }


def main() -> int:
    cpus = _cpus()
    baseline = _run_traffic(None)
    replicated = _run_traffic(ReplicaConfig(n=3))
    overhead = round(
        baseline["steps_per_sec"] / replicated["steps_per_sec"], 3
    )
    gated = cpus >= GATE_CPUS
    replacement = _run_replacement()

    section = {
        "note": (
            "thread-mode n=1 vs n=3 at link_latency_s=0: followers "
            "fast-forward committed serves instead of re-executing, "
            "so the group costs bookkeeping, not a 3x step bill"
        ),
        "workload": WORKLOAD,
        "rows": [baseline, replicated],
        "overhead_n3_vs_n1": overhead,
        "cpus": cpus,
        "gate": {
            "target": OVERHEAD_GATE,
            "asserted": gated,
            **(
                {}
                if gated
                else {
                    "skip_reason": (
                        f"host exposes {cpus} CPU(s); the overhead "
                        f"gate needs >= {GATE_CPUS} to measure the "
                        "follower cost instead of scheduler noise"
                    )
                }
            ),
        },
        "replacement_under_load": replacement,
    }

    out = pathlib.Path(__file__).resolve().parent.parent / (
        "BENCH_fleet_throughput.json"
    )
    result = json.loads(out.read_text()) if out.exists() else {}
    result["replication"] = section
    out.write_text(json.dumps(result, indent=2) + "\n")
    print(json.dumps(section, indent=2))

    ok = replacement["futures_lost"] == 0
    if gated:
        ok = ok and overhead <= OVERHEAD_GATE
        verdict = f"{overhead}x (target <= {OVERHEAD_GATE})"
    else:
        verdict = (
            f"{overhead}x (gate skipped: {cpus} CPU(s) < {GATE_CPUS})"
        )
    print(
        f"\nreplication overhead n=1 -> n=3: {verdict}; "
        f"replacement under load: {replacement['replace_s']}s, "
        f"{replacement['futures_lost']} futures lost: "
        f"{'OK' if ok else 'FAILED'}"
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
