"""One source of truth for the ``REPRO_DISABLE_*`` kill switches.

Four subsystems can be forced off via the environment without
uninstalling anything: numpy (the fast table kernels), shared memory
(the worker-process backend), the shm frame ring (sessions fall back
to pure pipe framing) and replication (replica groups collapse to the
single-replica shard).  Before this module each switch was a bare
``os.environ.get`` scattered at its point of use with its own reason
string; ``repro backends`` and the docs had to keep three spellings in
sync by hand.  Now every switch is one :class:`KillSwitch` registered
here, the availability reasons shown by ``repro backends`` come from
:meth:`KillSwitch.reason`, and the env-var table in ``docs/fleet.md``
enumerates :data:`SWITCHES`.

A switch is *set* when its variable holds any non-empty value — the
same truthiness every call site used before — and is re-read at every
call, so flipping the environment in a live process is honoured at the
next dispatch, exactly as ``REPRO_DISABLE_NUMPY`` always was.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "NUMPY",
    "REPLICATION",
    "RING",
    "SHM",
    "SWITCHES",
    "KillSwitch",
    "active",
]


@dataclass(frozen=True)
class KillSwitch:
    """One environment kill switch (variable + what it turns off)."""

    #: The environment variable (any non-empty value disables).
    env: str
    #: What gets turned off, phrased to fit "<subject> disabled via X".
    subject: str
    #: What the process does instead while the switch is set.
    fallback: str

    def disabled(self) -> bool:
        """Whether the switch is currently set (re-read every call)."""
        return bool(os.environ.get(self.env))

    def reason(self) -> Optional[str]:
        """The availability reason while set, ``None`` otherwise."""
        if self.disabled():
            return f"{self.subject} disabled via {self.env}"
        return None


NUMPY = KillSwitch(
    env="REPRO_DISABLE_NUMPY",
    subject="numpy",
    fallback="pure-Python table kernels",
)
SHM = KillSwitch(
    env="REPRO_DISABLE_SHM",
    subject="shared memory",
    fallback="in-process backends only (table-shm unavailable)",
)
RING = KillSwitch(
    env="REPRO_DISABLE_RING",
    subject="the shm frame ring",
    fallback="pipe+pickle framing for every worker frame",
)
REPLICATION = KillSwitch(
    env="REPRO_DISABLE_REPLICATION",
    subject="replication",
    fallback="one replica per shard regardless of ReplicaConfig",
)

#: Every registered switch, in documentation order.
SWITCHES: Tuple[KillSwitch, ...] = (NUMPY, SHM, RING, REPLICATION)


def active() -> Dict[str, str]:
    """The currently set switches: env var → reason string."""
    return {
        switch.env: reason
        for switch in SWITCHES
        if (reason := switch.reason()) is not None
    }
