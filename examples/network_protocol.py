#!/usr/bin/env python
"""Live protocol upgrade: the application domain the paper motivates.

"Real application domains that may profit from the concept of
(self-)reconfigurable FSMs are areas of time-varying control, e.g.,
network protocol applications that require packet-dependent processing."
(paper, Sec. 1)

This example runs a header-parser FSM in the cycle-accurate Fig. 5
hardware, classifying a packet stream against policy revision v1.  Mid
stream, revision v2 arrives (one more accepted packet class); the parser
is *gradually* reconfigured between two packets — a handful of clock
cycles instead of a milliseconds-long bitstream swap — and traffic
resumes with zero misclassification.

Run: ``python examples/network_protocol.py``
"""

from repro.analysis.tables import format_table
from repro.protocols import (
    LiveUpgradeScenario,
    build_parser,
    packet_stream,
    revision,
    upgrade_deltas,
)


def main():
    old = revision("v1", 4, accepted={0x8, 0x6})
    new = revision("v2", 4, accepted={0x8, 0x6, 0xD})
    print(f"revision v1 accepts: {sorted(hex(c) for c in old.accepted)}")
    print(f"revision v2 accepts: {sorted(hex(c) for c in new.accepted)}")

    parser = build_parser(old)
    print(f"\nparser FSM: {len(parser.states)} states "
          f"({old.header_bits}-bit headers, binary trie)")

    deltas = upgrade_deltas(old, new)
    print(f"policy upgrade needs {len(deltas)} delta transition(s):")
    for t in deltas:
        print(f"  {t}")

    scenario = LiveUpgradeScenario(old, new, optimiser="ea")
    print(f"\nreconfiguration program ({scenario.program.method}): "
          f"|Z| = {len(scenario.program)} cycles")

    packets = packet_stream(60, seed=7, hot_codes=[0x8, 0xD], hot_fraction=0.5)
    report = scenario.run(packets, upgrade_after=30)

    rows = [
        {"metric": "packets processed", "value": report.packets_total},
        {"metric": "  before upgrade", "value": report.packets_before_upgrade},
        {"metric": "  after upgrade", "value": report.packets_after_upgrade},
        {"metric": "misclassified", "value": report.misclassified},
        {"metric": "stall cycles (gradual)", "value": report.stall_cycles},
        {"metric": "gradual upgrade time", "value": f"{report.gradual_seconds * 1e9:.0f} ns"},
        {"metric": "full context swap", "value": f"{report.full_swap_seconds * 1e3:.2f} ms"},
        {"metric": "speedup vs swap", "value": f"{report.speedup_vs_full_swap:,.0f}x"},
    ]
    print("\n" + format_table(rows, title="live-upgrade report"))

    assert report.zero_misclassification
    print("\nevery packet got the verdict of its era's policy — "
          "zero-downtime upgrade.")

    sample = [(str(p), "accept" if acc else "reject")
              for p, acc in report.verdicts[28:34]]
    print("\nverdicts around the upgrade boundary (packets 28-33):")
    for name, verdict in sample:
        print(f"  {name}: {verdict}")


if __name__ == "__main__":
    main()
