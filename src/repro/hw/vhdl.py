"""VHDL code generation for plain and reconfigurable FSMs.

Example 2.1 of the paper specifies its machine as VHDL, and the automated
mapping from FSM specification into hardware is the subject of the
companion thesis [7].  This module generates two architectures:

* :func:`generate_fsm_vhdl` — the classic single-process, case-based
  style of the paper's Example 2.1 listing (state enumeration type, one
  clocked process);
* :func:`generate_reconfigurable_vhdl` — the Fig. 5 structure: binary
  state/input/output encodings, F-RAM and G-RAM as inferred RAM arrays
  with one synchronous write port, IN-MUX, RST-MUX and the reconfigurator
  port interface.

The output is self-contained synthesisable-style VHDL-93 text; the test
suite checks its structure (entities, processes, case coverage), not a
simulator run — no VHDL toolchain is assumed.
"""

from __future__ import annotations

import re
from typing import Dict, List

from ..core.alphabet import Alphabet, bits_for
from ..core.fsm import FSM

_IDENT = re.compile(r"[^A-Za-z0-9_]")


def vhdl_identifier(symbol: object, prefix: str = "s") -> str:
    """A legal VHDL identifier for an arbitrary symbol.

    Non-alphanumeric characters are replaced and a prefix is added when
    the symbol does not start with a letter (VHDL identifiers must).
    """
    text = _IDENT.sub("_", str(symbol))
    if not text or not text[0].isalpha():
        text = f"{prefix}_{text}" if text else prefix
    return text


def _unique_identifiers(symbols, prefix: str) -> Dict[object, str]:
    mapping: Dict[object, str] = {}
    used = set()
    for sym in symbols:
        base = vhdl_identifier(sym, prefix)
        candidate = base
        counter = 1
        while candidate.lower() in used:
            candidate = f"{base}_{counter}"
            counter += 1
        used.add(candidate.lower())
        mapping[sym] = candidate
    return mapping


def generate_fsm_vhdl(machine: FSM, entity: str = None) -> str:
    """Two-process VHDL in the style of the paper's Example 2.1 listing.

    The machine's inputs and outputs are encoded as ``std_logic_vector``
    ports; states become an enumeration type and the behaviour one
    clocked process with nested case statements.
    """
    entity = entity or vhdl_identifier(machine.name, "fsm")
    in_alpha = Alphabet(machine.inputs)
    out_alpha = Alphabet(machine.outputs)
    states = _unique_identifiers(machine.states, "st")

    lines: List[str] = []
    emit = lines.append
    emit("library ieee;")
    emit("use ieee.std_logic_1164.all;")
    emit("")
    emit(f"entity {entity} is")
    emit("  port (")
    emit(f"    din  : in  std_logic_vector({in_alpha.width - 1} downto 0);")
    emit("    clk  : in  std_logic;")
    emit("    rst  : in  std_logic;")
    emit(f"    dout : out std_logic_vector({out_alpha.width - 1} downto 0)")
    emit("  );")
    emit(f"end {entity};")
    emit("")
    emit(f"architecture behavior of {entity} is")
    emit(
        "  type state_type is ("
        + ", ".join(states[s] for s in machine.states)
        + ");"
    )
    emit(f"  signal state : state_type := {states[machine.reset_state]};")
    emit("begin")
    emit("  process (clk)")
    emit("  begin")
    emit("    if rising_edge(clk) then")
    emit("      if rst = '1' then")
    emit(f"        state <= {states[machine.reset_state]};")
    emit(f"        dout  <= (others => '0');")
    emit("      else")
    emit("        case state is")
    for s in machine.states:
        emit(f"          when {states[s]} =>")
        emit("            case din is")
        for i in machine.inputs:
            target, output = machine.entry(i, s)
            in_bits = "".join(str(b) for b in in_alpha.encode(i))
            out_bits = "".join(str(b) for b in out_alpha.encode(output))
            emit(f'              when "{in_bits}" =>')
            emit(f"                state <= {states[target]};")
            emit(f'                dout  <= "{out_bits}";')
        emit("              when others =>")
        emit(f"                state <= {states[machine.reset_state]};")
        emit("                dout  <= (others => '0');")
        emit("            end case;")
    emit("        end case;")
    emit("      end if;")
    emit("    end if;")
    emit("  end process;")
    emit("end behavior;")
    return "\n".join(lines) + "\n"


def generate_reconfigurable_vhdl(
    machine: FSM,
    entity: str = None,
    extra_inputs: int = 0,
    extra_states: int = 0,
    extra_outputs: int = 0,
) -> str:
    """The Fig. 5 reconfigurable architecture as VHDL.

    F-RAM and G-RAM are inferred RAM arrays initialised with the
    machine's table; the reconfigurator interface is exposed as ports
    (``mode``, ``ir``, ``hf``, ``hg``, ``we``) so any sequence source —
    external or an on-chip reconfigurator — can drive the migration.
    The ``extra_*`` parameters pre-size the encodings with superset
    headroom (Def. 4.1).
    """
    entity = entity or vhdl_identifier(f"{machine.name}_reconf", "fsm")
    i_bits = bits_for(len(machine.inputs) + extra_inputs)
    s_bits = bits_for(len(machine.states) + extra_states)
    o_bits = bits_for(len(machine.outputs) + extra_outputs)
    addr_bits = i_bits + s_bits
    depth = 2 ** addr_bits

    in_alpha = Alphabet(machine.inputs)
    out_alpha = Alphabet(machine.outputs)
    st_alpha = Alphabet(machine.states)

    f_init = ["(others => '0')"] * depth
    g_init = ["(others => '0')"] * depth
    for trans in machine.transitions():
        addr = (in_alpha.index(trans.input) << s_bits) | st_alpha.index(trans.source)
        f_init[addr] = '"' + format(st_alpha.index(trans.target), f"0{s_bits}b") + '"'
        g_init[addr] = '"' + format(out_alpha.index(trans.output), f"0{o_bits}b") + '"'

    reset_code = format(st_alpha.index(machine.reset_state), f"0{s_bits}b")

    lines: List[str] = []
    emit = lines.append
    emit("library ieee;")
    emit("use ieee.std_logic_1164.all;")
    emit("use ieee.numeric_std.all;")
    emit("")
    emit(f"entity {entity} is")
    emit("  port (")
    emit(f"    din  : in  std_logic_vector({i_bits - 1} downto 0);")
    emit("    clk  : in  std_logic;")
    emit("    rst  : in  std_logic;")
    emit("    mode : in  std_logic;  -- 0 = normal, 1 = reconfiguration")
    emit(f"    ir   : in  std_logic_vector({i_bits - 1} downto 0);")
    emit(f"    hf   : in  std_logic_vector({s_bits - 1} downto 0);")
    emit(f"    hg   : in  std_logic_vector({o_bits - 1} downto 0);")
    emit("    we   : in  std_logic;")
    emit(f"    dout : out std_logic_vector({o_bits - 1} downto 0)")
    emit("  );")
    emit(f"end {entity};")
    emit("")
    emit(f"architecture structure of {entity} is")
    emit(
        f"  type f_ram_type is array (0 to {depth - 1}) of "
        f"std_logic_vector({s_bits - 1} downto 0);"
    )
    emit(
        f"  type g_ram_type is array (0 to {depth - 1}) of "
        f"std_logic_vector({o_bits - 1} downto 0);"
    )
    emit("  signal f_ram : f_ram_type := (")
    emit("    " + ",\n    ".join(f_init))
    emit("  );")
    emit("  signal g_ram : g_ram_type := (")
    emit("    " + ",\n    ".join(g_init))
    emit("  );")
    emit(
        f"  signal state : std_logic_vector({s_bits - 1} downto 0) := "
        f'"{reset_code}";'
    )
    emit(f"  signal i_int : std_logic_vector({i_bits - 1} downto 0);")
    emit(f"  signal addr  : unsigned({addr_bits - 1} downto 0);")
    emit(f"  signal f_out : std_logic_vector({s_bits - 1} downto 0);")
    emit("begin")
    emit("  -- IN-MUX: external input in normal mode, ir while reconfiguring")
    emit("  i_int <= din when mode = '0' else ir;")
    emit("  addr  <= unsigned(i_int) & unsigned(state);")
    emit("")
    emit("  -- F-RAM / G-RAM: asynchronous read, one synchronous write port")
    emit("  f_out <= hf when (we = '1' and mode = '1') else")
    emit("           f_ram(to_integer(addr));")
    emit("  dout  <= hg when (we = '1' and mode = '1') else")
    emit("           g_ram(to_integer(addr));")
    emit("")
    emit("  process (clk)")
    emit("  begin")
    emit("    if rising_edge(clk) then")
    emit("      if we = '1' and mode = '1' then")
    emit("        f_ram(to_integer(addr)) <= hf;")
    emit("        g_ram(to_integer(addr)) <= hg;")
    emit("      end if;")
    emit("      -- RST-MUX: reset state wins over the F-RAM next state")
    emit("      if rst = '1' then")
    emit(f'        state <= "{reset_code}";')
    emit("      else")
    emit("        state <= f_out;")
    emit("      end if;")
    emit("    end if;")
    emit("  end process;")
    emit("end structure;")
    return "\n".join(lines) + "\n"


def generate_testbench_vhdl(
    machine: FSM,
    word,
    entity: str = None,
    dut_entity: str = None,
    clock_period_ns: int = 20,
) -> str:
    """A self-checking testbench for the behavioural architecture.

    Drives ``word`` through the DUT one symbol per clock and asserts the
    expected output after every rising edge; reports success at the end.
    The expected outputs come from the library's own simulation, so the
    testbench certifies HDL-vs-model agreement in any VHDL simulator.
    """
    entity = entity or vhdl_identifier(f"{machine.name}_tb", "tb")
    dut_entity = dut_entity or vhdl_identifier(machine.name, "fsm")
    in_alpha = Alphabet(machine.inputs)
    out_alpha = Alphabet(machine.outputs)
    word = list(word)
    expected = machine.run(word)

    lines: List[str] = []
    emit = lines.append
    emit("library ieee;")
    emit("use ieee.std_logic_1164.all;")
    emit("")
    emit(f"entity {entity} is")
    emit(f"end {entity};")
    emit("")
    emit(f"architecture sim of {entity} is")
    emit(f"  signal din  : std_logic_vector({in_alpha.width - 1} downto 0);")
    emit("  signal clk  : std_logic := '0';")
    emit("  signal rst  : std_logic := '0';")
    emit(f"  signal dout : std_logic_vector({out_alpha.width - 1} downto 0);")
    emit(f"  constant PERIOD : time := {clock_period_ns} ns;")
    emit("begin")
    emit(f"  dut: entity work.{dut_entity}")
    emit("    port map (din => din, clk => clk, rst => rst, dout => dout);")
    emit("")
    emit("  stimulus: process")
    emit("  begin")
    for symbol, out in zip(word, expected):
        in_bits = "".join(str(b) for b in in_alpha.encode(symbol))
        out_bits = "".join(str(b) for b in out_alpha.encode(out))
        emit(f'    din <= "{in_bits}";')
        emit("    clk <= '1'; wait for PERIOD / 2;")
        emit(f'    assert dout = "{out_bits}"')
        emit(
            f'      report "mismatch on input {symbol}: expected '
            f'{out_bits}" severity failure;'
        )
        emit("    clk <= '0'; wait for PERIOD / 2;")
    emit(f'    report "testbench passed: {len(word)} cycles" '
         "severity note;")
    emit("    wait;")
    emit("  end process;")
    emit("end sim;")
    return "\n".join(lines) + "\n"
